//! Line-oriented parser for the EACL concrete syntax.
//!
//! The syntax is deliberately simple (the paper calls EACL "a simple
//! language"): one construct per line, `#` comments, blank lines ignored.
//!
//! * `eacl_mode <mode>` — optional, at most once, before the first entry;
//! * `pos_access_right <authority> <value>` — opens a granting entry;
//! * `neg_access_right <authority> <value>` — opens a denying entry;
//! * `pre_cond|rr_cond|mid_cond|post_cond <type> <authority> <value…>` —
//!   appends a condition to the current entry; the value runs to end of line
//!   (so signature lists like `*phf* *test-cgi*` are one value).
//!
//! Every parse also records a [`Span`] per construct. [`parse_eacl`] and
//! [`parse_eacl_list`] discard the spans; the `_spanned` variants return
//! them alongside the AST for diagnostics (`gaa-analyze` lint locations).

use crate::ast::{AccessRight, CompositionMode, CondPhase, Condition, Eacl, EaclEntry, Polarity};
use crate::error::{ErrorKind, ParseEaclError};
use crate::span::{EaclSpans, EntrySpans, Span, SpannedEacl};

/// Parses a single EACL from `input`.
///
/// # Errors
///
/// Returns [`ParseEaclError`] (with a line number) if the input contains an
/// unknown keyword, a condition before any entry, a misplaced or repeated
/// `eacl_mode` line, or a truncated right/condition.
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::parse_eacl;
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let eacl = parse_eacl(
///     "neg_access_right apache *\n\
///      pre_cond regex gnu *phf* *test-cgi*\n\
///      rr_cond notify local on:failure/sysadmin/info:cgi_exploit\n\
///      pos_access_right apache *\n",
/// )?;
/// assert_eq!(eacl.entries.len(), 2);
/// assert_eq!(eacl.entries[0].pre[0].value, "*phf* *test-cgi*");
/// # Ok(())
/// # }
/// ```
pub fn parse_eacl(input: &str) -> Result<Eacl, ParseEaclError> {
    parse_eacl_spanned(input).map(|spanned| spanned.eacl)
}

/// Parses a single EACL, returning the AST together with per-construct
/// source spans.
///
/// # Errors
///
/// Exactly as [`parse_eacl`].
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::parse_eacl_spanned;
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let spanned = parse_eacl_spanned("pos_access_right apache *\npre_cond regex gnu *phf*\n")?;
/// assert_eq!(spanned.spans.entries[0].right.line, 1);
/// assert_eq!(spanned.spans.entries[0].pre[0].line, 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_eacl_spanned(input: &str) -> Result<SpannedEacl, ParseEaclError> {
    let mut parser = LineParser::new();
    for (lineno, line_start, raw_line) in lines_with_offsets(input) {
        parser.feed(lineno, line_start, raw_line)?;
    }
    Ok(parser.finish())
}

/// Parses a file holding *several* EACLs separated by `eacl_mode` headers.
///
/// The paper's `get_object_policy_info` builds "a list of EACLs"; operators
/// sometimes keep several system-wide EACLs in one file. Every `eacl_mode`
/// line starts a new EACL; content before the first header forms a headerless
/// EACL if non-empty.
///
/// # Errors
///
/// Propagates [`ParseEaclError`] from any constituent EACL, with line numbers
/// relative to the whole input.
pub fn parse_eacl_list(input: &str) -> Result<Vec<Eacl>, ParseEaclError> {
    Ok(parse_eacl_list_spanned(input)?
        .into_iter()
        .map(|spanned| spanned.eacl)
        .collect())
}

/// Parses a multi-EACL file, returning each EACL with its spans. Line
/// numbers and byte offsets are relative to the **whole** input, not the
/// individual EACL's segment.
///
/// # Errors
///
/// Exactly as [`parse_eacl_list`].
pub fn parse_eacl_list_spanned(input: &str) -> Result<Vec<SpannedEacl>, ParseEaclError> {
    let mut eacls = Vec::new();
    let mut parser = LineParser::new();
    for (lineno, line_start, raw_line) in lines_with_offsets(input) {
        let stripped = strip_comment(raw_line);
        if stripped.split_whitespace().next() == Some("eacl_mode") && parser.has_content() {
            push_nonempty(&mut eacls, std::mem::take(&mut parser).finish());
        }
        parser.feed(lineno, line_start, raw_line)?;
    }
    push_nonempty(&mut eacls, parser.finish());
    Ok(eacls)
}

fn push_nonempty(eacls: &mut Vec<SpannedEacl>, spanned: SpannedEacl) {
    if !spanned.eacl.entries.is_empty() || spanned.eacl.mode.is_some() {
        eacls.push(spanned);
    }
}

/// Incremental line-at-a-time parser state shared by the single- and
/// multi-EACL entry points. Feeding lines with global line numbers and byte
/// offsets makes both error locations and spans whole-file-relative for
/// free.
#[derive(Default)]
struct LineParser {
    eacl: Eacl,
    spans: EaclSpans,
    current: Option<(EaclEntry, EntrySpans)>,
    seen_mode: bool,
}

impl LineParser {
    fn new() -> Self {
        LineParser::default()
    }

    /// Has this parser consumed any policy construct yet?
    fn has_content(&self) -> bool {
        self.seen_mode || self.current.is_some() || !self.eacl.entries.is_empty()
    }

    fn feed(
        &mut self,
        lineno: usize,
        line_start: usize,
        raw_line: &str,
    ) -> Result<(), ParseEaclError> {
        let content = strip_comment(raw_line);
        let line = content.trim();
        if line.is_empty() {
            return Ok(());
        }
        let lead = content.len() - content.trim_start().len();
        let span = Span {
            line: lineno,
            start: line_start + lead,
            end: line_start + lead + line.len(),
        };

        let (keyword, rest) = split_first_token(line);
        match keyword {
            "eacl_mode" => {
                if self.has_content() {
                    return Err(ParseEaclError::new(lineno, ErrorKind::MisplacedMode));
                }
                self.seen_mode = true;
                let mode_str = rest.trim();
                let mode: CompositionMode = mode_str.parse().map_err(|_| {
                    ParseEaclError::new(lineno, ErrorKind::BadMode(mode_str.into()))
                })?;
                self.eacl.mode = Some(mode);
                self.spans.mode = Some(span);
            }
            "pos_access_right" | "neg_access_right" => {
                if let Some((entry, entry_spans)) = self.current.take() {
                    self.eacl.entries.push(entry);
                    self.spans.entries.push(entry_spans);
                }
                let polarity = if keyword == "pos_access_right" {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                };
                let (authority, value_rest) = split_first_token(rest.trim());
                let value = value_rest.trim();
                if authority.is_empty() || value.is_empty() || value.contains(char::is_whitespace) {
                    return Err(ParseEaclError::new(lineno, ErrorKind::IncompleteRight));
                }
                let entry = EaclEntry::new(AccessRight {
                    polarity,
                    authority: authority.to_string(),
                    value: value.to_string(),
                });
                self.current = Some((
                    entry,
                    EntrySpans {
                        right: span,
                        ..EntrySpans::default()
                    },
                ));
            }
            "pre_cond" | "rr_cond" | "mid_cond" | "post_cond" => {
                let phase = match keyword {
                    "pre_cond" => CondPhase::Pre,
                    "rr_cond" => CondPhase::RequestResult,
                    "mid_cond" => CondPhase::Mid,
                    _ => CondPhase::Post,
                };
                let (entry, entry_spans) = self
                    .current
                    .as_mut()
                    .ok_or_else(|| ParseEaclError::new(lineno, ErrorKind::ConditionBeforeEntry))?;
                let (cond_type, after_type) = split_first_token(rest.trim());
                let (authority, value) = split_first_token(after_type.trim());
                let value = value.trim();
                if cond_type.is_empty() || authority.is_empty() || value.is_empty() {
                    return Err(ParseEaclError::new(lineno, ErrorKind::IncompleteCondition));
                }
                // `post_cond` must map back through the phase keyword; blocks are
                // totally ordered within the entry, so plain push preserves order.
                entry.block_mut(phase).push(Condition {
                    cond_type: cond_type.to_string(),
                    authority: authority.to_string(),
                    value: value.to_string(),
                });
                entry_spans.block_mut(phase).push(span);
            }
            other => {
                return Err(ParseEaclError::new(
                    lineno,
                    ErrorKind::UnknownKeyword(other.to_string()),
                ))
            }
        }
        Ok(())
    }

    fn finish(mut self) -> SpannedEacl {
        if let Some((entry, entry_spans)) = self.current.take() {
            self.eacl.entries.push(entry);
            self.spans.entries.push(entry_spans);
        }
        SpannedEacl {
            eacl: self.eacl,
            spans: self.spans,
        }
    }
}

/// Iterates `(1-based line number, byte offset of line start, line content
/// without the terminator)`. CRLF terminators are tolerated: the trailing
/// `\r` stays in the yielded slice but is whitespace, so trimming removes
/// it before any span is computed.
fn lines_with_offsets(input: &str) -> impl Iterator<Item = (usize, usize, &str)> {
    let mut offset = 0usize;
    input.split('\n').enumerate().map(move |(idx, raw_line)| {
        let line_start = offset;
        offset += raw_line.len() + 1;
        (idx + 1, line_start, raw_line)
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn split_first_token(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(pos) => (&s[..pos], &s[pos..]),
        None => (s, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompositionMode;

    const SECTION_71_SYSTEM: &str = "\
eacl_mode 1   # composition mode narrow
# EACL entry 1
neg_access_right * *
pre_cond system_threat_level local =high
";

    const SECTION_71_LOCAL: &str = "\
# EACL entry 1
pos_access_right apache *
pre_cond system_threat_level local >low
pre_cond accessid USER apache*
";

    const SECTION_72_LOCAL: &str = "\
# EACL entry 1
neg_access_right apache *
pre_cond regex gnu *phf* *test-cgi*
rr_cond notify local on:failure/sysadmin/info:cgi_exploit
rr_cond update_log local on:failure/BadGuys/info:ip
# EACL entry 2
pos_access_right apache *
";

    #[test]
    fn parses_section_71_system_policy() {
        let eacl = parse_eacl(SECTION_71_SYSTEM).unwrap();
        assert_eq!(eacl.mode, Some(CompositionMode::Narrow));
        assert_eq!(eacl.entries.len(), 1);
        let entry = &eacl.entries[0];
        assert_eq!(entry.right.polarity, Polarity::Negative);
        assert_eq!(entry.right.authority, "*");
        assert_eq!(entry.pre.len(), 1);
        assert_eq!(entry.pre[0].cond_type, "system_threat_level");
        assert_eq!(entry.pre[0].value, "=high");
    }

    #[test]
    fn parses_section_71_local_policy() {
        let eacl = parse_eacl(SECTION_71_LOCAL).unwrap();
        assert_eq!(eacl.mode, None);
        assert_eq!(eacl.entries.len(), 1);
        assert_eq!(eacl.entries[0].pre.len(), 2);
        assert_eq!(eacl.entries[0].pre[1].authority, "USER");
    }

    #[test]
    fn parses_section_72_local_policy() {
        let eacl = parse_eacl(SECTION_72_LOCAL).unwrap();
        assert_eq!(eacl.entries.len(), 2);
        let deny = &eacl.entries[0];
        assert_eq!(deny.right.polarity, Polarity::Negative);
        assert_eq!(deny.pre[0].value, "*phf* *test-cgi*");
        assert_eq!(deny.rr.len(), 2);
        assert_eq!(deny.rr[1].cond_type, "update_log");
        let grant = &eacl.entries[1];
        assert!(grant.is_unconditional());
        assert_eq!(grant.right.polarity, Polarity::Positive);
    }

    #[test]
    fn value_runs_to_end_of_line() {
        let eacl = parse_eacl(
            "pos_access_right apache *\npre_cond regex gnu */////////////////*  extra tokens\n",
        )
        .unwrap();
        assert_eq!(
            eacl.entries[0].pre[0].value,
            "*/////////////////*  extra tokens"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let eacl = parse_eacl("\n\n# only comments\n   # indented\n").unwrap();
        assert!(eacl.entries.is_empty());
        assert_eq!(eacl.mode, None);
    }

    #[test]
    fn condition_before_entry_is_an_error() {
        let err = parse_eacl("pre_cond regex gnu *phf*\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("before any"));
    }

    #[test]
    fn mode_after_entry_is_an_error() {
        let err = parse_eacl("pos_access_right a b\neacl_mode 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn duplicate_mode_is_an_error() {
        let err = parse_eacl("eacl_mode 1\neacl_mode 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn bad_mode_is_an_error() {
        let err = parse_eacl("eacl_mode 7\n").unwrap_err();
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn unknown_keyword_is_an_error() {
        let err = parse_eacl("allow from all\n").unwrap_err();
        assert!(err.to_string().contains("allow"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn incomplete_right_is_an_error() {
        assert!(parse_eacl("pos_access_right apache\n").is_err());
        assert!(parse_eacl("pos_access_right\n").is_err());
    }

    #[test]
    fn incomplete_condition_is_an_error() {
        assert!(parse_eacl("pos_access_right a b\npre_cond regex\n").is_err());
        assert!(parse_eacl("pos_access_right a b\npre_cond regex gnu\n").is_err());
    }

    #[test]
    fn error_line_numbers_count_comments_and_blanks() {
        let err = parse_eacl("# header\n\npos_access_right a b\nbogus line here\n").unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn multi_eacl_file_splits_on_mode_headers() {
        let input = "\
eacl_mode 1
neg_access_right * *
pre_cond system_threat_level local =high
eacl_mode 0
pos_access_right apache *
";
        let eacls = parse_eacl_list(input).unwrap();
        assert_eq!(eacls.len(), 2);
        assert_eq!(eacls[0].mode, Some(CompositionMode::Narrow));
        assert_eq!(eacls[1].mode, Some(CompositionMode::Expand));
        assert_eq!(eacls[1].entries.len(), 1);
    }

    #[test]
    fn multi_eacl_file_with_headerless_prefix() {
        let input = "\
pos_access_right apache GET
eacl_mode 2
neg_access_right * *
";
        let eacls = parse_eacl_list(input).unwrap();
        assert_eq!(eacls.len(), 2);
        assert_eq!(eacls[0].mode, None);
        assert_eq!(eacls[1].mode, Some(CompositionMode::Stop));
    }

    #[test]
    fn multi_eacl_error_keeps_global_line_number() {
        let input = "\
eacl_mode 1
pos_access_right a b
eacl_mode 0
junk
";
        let err = parse_eacl_list(input).unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn empty_input_yields_no_eacls() {
        assert!(parse_eacl_list("").unwrap().is_empty());
        assert!(parse_eacl_list("# nothing\n").unwrap().is_empty());
    }

    #[test]
    fn spans_locate_every_construct() {
        let input = "\
eacl_mode narrow
# a comment line
  neg_access_right apache *   # indented, trailing comment
pre_cond regex gnu *phf*
rr_cond notify local on:failure/x/info:y
pos_access_right apache *
";
        let spanned = parse_eacl_spanned(input).unwrap();
        let spans = &spanned.spans;
        let mode = spans.mode.unwrap();
        assert_eq!(mode.line, 1);
        assert_eq!(&input[mode.start..mode.end], "eacl_mode narrow");
        let entry0 = &spans.entries[0];
        assert_eq!(entry0.right.line, 3);
        assert_eq!(
            &input[entry0.right.start..entry0.right.end],
            "neg_access_right apache *"
        );
        assert_eq!(entry0.pre[0].line, 4);
        assert_eq!(
            &input[entry0.pre[0].start..entry0.pre[0].end],
            "pre_cond regex gnu *phf*"
        );
        assert_eq!(entry0.rr[0].line, 5);
        assert_eq!(spans.entries[1].right.line, 6);
        assert_eq!(
            spanned.spans.entries[0].condition(CondPhase::Pre, 0),
            Some(entry0.pre[0])
        );
        assert_eq!(spanned.spans.entries[0].condition(CondPhase::Mid, 0), None);
    }

    #[test]
    fn list_spans_are_whole_file_relative() {
        let input = "\
eacl_mode 1
neg_access_right * *
eacl_mode 0
pos_access_right apache *
pre_cond accessid USER alice
";
        let spanned = parse_eacl_list_spanned(input).unwrap();
        assert_eq!(spanned.len(), 2);
        let second = &spanned[1];
        assert_eq!(second.spans.mode.unwrap().line, 3);
        assert_eq!(second.spans.entries[0].right.line, 4);
        assert_eq!(second.spans.entries[0].pre[0].line, 5);
        let pre = second.spans.entries[0].pre[0];
        assert_eq!(&input[pre.start..pre.end], "pre_cond accessid USER alice");
    }

    #[test]
    fn spanned_and_plain_parse_agree() {
        let eacl = parse_eacl(SECTION_72_LOCAL).unwrap();
        let spanned = parse_eacl_spanned(SECTION_72_LOCAL).unwrap();
        assert_eq!(eacl, spanned.eacl);
        assert_eq!(spanned.spans.entries.len(), eacl.entries.len());
        for (entry, spans) in eacl.entries.iter().zip(&spanned.spans.entries) {
            for phase in CondPhase::all() {
                assert_eq!(entry.block(phase).len(), spans.block(phase).len());
            }
        }
    }
}
