//! Line-oriented parser for the EACL concrete syntax.
//!
//! The syntax is deliberately simple (the paper calls EACL "a simple
//! language"): one construct per line, `#` comments, blank lines ignored.
//!
//! * `eacl_mode <mode>` — optional, at most once, before the first entry;
//! * `pos_access_right <authority> <value>` — opens a granting entry;
//! * `neg_access_right <authority> <value>` — opens a denying entry;
//! * `pre_cond|rr_cond|mid_cond|post_cond <type> <authority> <value…>` —
//!   appends a condition to the current entry; the value runs to end of line
//!   (so signature lists like `*phf* *test-cgi*` are one value).

use crate::ast::{AccessRight, CompositionMode, CondPhase, Condition, Eacl, EaclEntry, Polarity};
use crate::error::{ErrorKind, ParseEaclError};

/// Parses a single EACL from `input`.
///
/// # Errors
///
/// Returns [`ParseEaclError`] (with a line number) if the input contains an
/// unknown keyword, a condition before any entry, a misplaced or repeated
/// `eacl_mode` line, or a truncated right/condition.
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::parse_eacl;
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let eacl = parse_eacl(
///     "neg_access_right apache *\n\
///      pre_cond regex gnu *phf* *test-cgi*\n\
///      rr_cond notify local on:failure/sysadmin/info:cgi_exploit\n\
///      pos_access_right apache *\n",
/// )?;
/// assert_eq!(eacl.entries.len(), 2);
/// assert_eq!(eacl.entries[0].pre[0].value, "*phf* *test-cgi*");
/// # Ok(())
/// # }
/// ```
pub fn parse_eacl(input: &str) -> Result<Eacl, ParseEaclError> {
    let mut eacl = Eacl::new();
    let mut current: Option<EaclEntry> = None;
    let mut seen_mode = false;

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }

        let (keyword, rest) = split_first_token(line);
        match keyword {
            "eacl_mode" => {
                if seen_mode || current.is_some() || !eacl.entries.is_empty() {
                    return Err(ParseEaclError::new(lineno, ErrorKind::MisplacedMode));
                }
                seen_mode = true;
                let mode_str = rest.trim();
                let mode: CompositionMode = mode_str.parse().map_err(|_| {
                    ParseEaclError::new(lineno, ErrorKind::BadMode(mode_str.into()))
                })?;
                eacl.mode = Some(mode);
            }
            "pos_access_right" | "neg_access_right" => {
                if let Some(done) = current.take() {
                    eacl.entries.push(done);
                }
                let polarity = if keyword == "pos_access_right" {
                    Polarity::Positive
                } else {
                    Polarity::Negative
                };
                let (authority, value_rest) = split_first_token(rest.trim());
                let value = value_rest.trim();
                if authority.is_empty() || value.is_empty() || value.contains(char::is_whitespace) {
                    return Err(ParseEaclError::new(lineno, ErrorKind::IncompleteRight));
                }
                current = Some(EaclEntry::new(AccessRight {
                    polarity,
                    authority: authority.to_string(),
                    value: value.to_string(),
                }));
            }
            "pre_cond" | "rr_cond" | "mid_cond" | "post_cond" => {
                let phase = match keyword {
                    "pre_cond" => CondPhase::Pre,
                    "rr_cond" => CondPhase::RequestResult,
                    "mid_cond" => CondPhase::Mid,
                    _ => CondPhase::Post,
                };
                let entry = current
                    .as_mut()
                    .ok_or_else(|| ParseEaclError::new(lineno, ErrorKind::ConditionBeforeEntry))?;
                let (cond_type, after_type) = split_first_token(rest.trim());
                let (authority, value) = split_first_token(after_type.trim());
                let value = value.trim();
                if cond_type.is_empty() || authority.is_empty() || value.is_empty() {
                    return Err(ParseEaclError::new(lineno, ErrorKind::IncompleteCondition));
                }
                // `post_cond` must map back through the phase keyword; blocks are
                // totally ordered within the entry, so plain push preserves order.
                entry.block_mut(phase).push(Condition {
                    cond_type: cond_type.to_string(),
                    authority: authority.to_string(),
                    value: value.to_string(),
                });
            }
            other => {
                return Err(ParseEaclError::new(
                    lineno,
                    ErrorKind::UnknownKeyword(other.to_string()),
                ))
            }
        }
    }

    if let Some(done) = current.take() {
        eacl.entries.push(done);
    }
    Ok(eacl)
}

/// Parses a file holding *several* EACLs separated by `eacl_mode` headers.
///
/// The paper's `get_object_policy_info` builds "a list of EACLs"; operators
/// sometimes keep several system-wide EACLs in one file. Every `eacl_mode`
/// line starts a new EACL; content before the first header forms a headerless
/// EACL if non-empty.
///
/// # Errors
///
/// Propagates [`ParseEaclError`] from any constituent EACL, with line numbers
/// relative to the whole input.
pub fn parse_eacl_list(input: &str) -> Result<Vec<Eacl>, ParseEaclError> {
    // Split on eacl_mode boundaries while tracking original line offsets so
    // error line numbers stay global.
    let mut segments: Vec<(usize, String)> = Vec::new();
    let mut current = String::new();
    let mut current_start = 0usize;
    for (idx, raw_line) in input.lines().enumerate() {
        let stripped = strip_comment(raw_line);
        if stripped.split_whitespace().next() == Some("eacl_mode") {
            if !current.trim().is_empty() {
                segments.push((current_start, std::mem::take(&mut current)));
            }
            current_start = idx;
        }
        current.push_str(raw_line);
        current.push('\n');
    }
    if !current.trim().is_empty() {
        segments.push((current_start, current));
    }

    let mut eacls = Vec::with_capacity(segments.len());
    for (offset, segment) in segments {
        let eacl = parse_eacl(&segment).map_err(|e| {
            // Re-locate the error against the original (whole-file) input.
            let line = e.line();
            ParseEaclError::new(line + offset, e.into_kind())
        })?;
        if !eacl.entries.is_empty() || eacl.mode.is_some() {
            eacls.push(eacl);
        }
    }
    Ok(eacls)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn split_first_token(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(pos) => (&s[..pos], &s[pos..]),
        None => (s, ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompositionMode;

    const SECTION_71_SYSTEM: &str = "\
eacl_mode 1   # composition mode narrow
# EACL entry 1
neg_access_right * *
pre_cond system_threat_level local =high
";

    const SECTION_71_LOCAL: &str = "\
# EACL entry 1
pos_access_right apache *
pre_cond system_threat_level local >low
pre_cond accessid USER apache*
";

    const SECTION_72_LOCAL: &str = "\
# EACL entry 1
neg_access_right apache *
pre_cond regex gnu *phf* *test-cgi*
rr_cond notify local on:failure/sysadmin/info:cgi_exploit
rr_cond update_log local on:failure/BadGuys/info:ip
# EACL entry 2
pos_access_right apache *
";

    #[test]
    fn parses_section_71_system_policy() {
        let eacl = parse_eacl(SECTION_71_SYSTEM).unwrap();
        assert_eq!(eacl.mode, Some(CompositionMode::Narrow));
        assert_eq!(eacl.entries.len(), 1);
        let entry = &eacl.entries[0];
        assert_eq!(entry.right.polarity, Polarity::Negative);
        assert_eq!(entry.right.authority, "*");
        assert_eq!(entry.pre.len(), 1);
        assert_eq!(entry.pre[0].cond_type, "system_threat_level");
        assert_eq!(entry.pre[0].value, "=high");
    }

    #[test]
    fn parses_section_71_local_policy() {
        let eacl = parse_eacl(SECTION_71_LOCAL).unwrap();
        assert_eq!(eacl.mode, None);
        assert_eq!(eacl.entries.len(), 1);
        assert_eq!(eacl.entries[0].pre.len(), 2);
        assert_eq!(eacl.entries[0].pre[1].authority, "USER");
    }

    #[test]
    fn parses_section_72_local_policy() {
        let eacl = parse_eacl(SECTION_72_LOCAL).unwrap();
        assert_eq!(eacl.entries.len(), 2);
        let deny = &eacl.entries[0];
        assert_eq!(deny.right.polarity, Polarity::Negative);
        assert_eq!(deny.pre[0].value, "*phf* *test-cgi*");
        assert_eq!(deny.rr.len(), 2);
        assert_eq!(deny.rr[1].cond_type, "update_log");
        let grant = &eacl.entries[1];
        assert!(grant.is_unconditional());
        assert_eq!(grant.right.polarity, Polarity::Positive);
    }

    #[test]
    fn value_runs_to_end_of_line() {
        let eacl = parse_eacl(
            "pos_access_right apache *\npre_cond regex gnu */////////////////*  extra tokens\n",
        )
        .unwrap();
        assert_eq!(
            eacl.entries[0].pre[0].value,
            "*/////////////////*  extra tokens"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let eacl = parse_eacl("\n\n# only comments\n   # indented\n").unwrap();
        assert!(eacl.entries.is_empty());
        assert_eq!(eacl.mode, None);
    }

    #[test]
    fn condition_before_entry_is_an_error() {
        let err = parse_eacl("pre_cond regex gnu *phf*\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("before any"));
    }

    #[test]
    fn mode_after_entry_is_an_error() {
        let err = parse_eacl("pos_access_right a b\neacl_mode 1\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn duplicate_mode_is_an_error() {
        let err = parse_eacl("eacl_mode 1\neacl_mode 2\n").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn bad_mode_is_an_error() {
        let err = parse_eacl("eacl_mode 7\n").unwrap_err();
        assert!(err.to_string().contains('7'));
    }

    #[test]
    fn unknown_keyword_is_an_error() {
        let err = parse_eacl("allow from all\n").unwrap_err();
        assert!(err.to_string().contains("allow"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn incomplete_right_is_an_error() {
        assert!(parse_eacl("pos_access_right apache\n").is_err());
        assert!(parse_eacl("pos_access_right\n").is_err());
    }

    #[test]
    fn incomplete_condition_is_an_error() {
        assert!(parse_eacl("pos_access_right a b\npre_cond regex\n").is_err());
        assert!(parse_eacl("pos_access_right a b\npre_cond regex gnu\n").is_err());
    }

    #[test]
    fn error_line_numbers_count_comments_and_blanks() {
        let err = parse_eacl("# header\n\npos_access_right a b\nbogus line here\n").unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn multi_eacl_file_splits_on_mode_headers() {
        let input = "\
eacl_mode 1
neg_access_right * *
pre_cond system_threat_level local =high
eacl_mode 0
pos_access_right apache *
";
        let eacls = parse_eacl_list(input).unwrap();
        assert_eq!(eacls.len(), 2);
        assert_eq!(eacls[0].mode, Some(CompositionMode::Narrow));
        assert_eq!(eacls[1].mode, Some(CompositionMode::Expand));
        assert_eq!(eacls[1].entries.len(), 1);
    }

    #[test]
    fn multi_eacl_file_with_headerless_prefix() {
        let input = "\
pos_access_right apache GET
eacl_mode 2
neg_access_right * *
";
        let eacls = parse_eacl_list(input).unwrap();
        assert_eq!(eacls.len(), 2);
        assert_eq!(eacls[0].mode, None);
        assert_eq!(eacls[1].mode, Some(CompositionMode::Stop));
    }

    #[test]
    fn multi_eacl_error_keeps_global_line_number() {
        let input = "\
eacl_mode 1
pos_access_right a b
eacl_mode 0
junk
";
        let err = parse_eacl_list(input).unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn empty_input_yields_no_eacls() {
        assert!(parse_eacl_list("").unwrap().is_empty());
        assert!(parse_eacl_list("# nothing\n").unwrap().is_empty());
    }
}
