//! Pretty-printing of EACLs back to their concrete syntax.
//!
//! The printer is the exact inverse of the parser for every AST value whose
//! string fields are themselves lexically valid (no embedded newlines or `#`,
//! single-token authorities). This round-trip property is enforced by a
//! property test in `tests/roundtrip.rs`.

use crate::ast::{CondPhase, Eacl, EaclEntry};
use std::fmt;

impl fmt::Display for EaclEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.right)?;
        for phase in CondPhase::all() {
            for cond in self.block(phase) {
                writeln!(f, "{} {}", phase.keyword(), cond)?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Eacl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(mode) = self.mode {
            writeln!(f, "eacl_mode {}", mode.code())?;
        }
        for (idx, entry) in self.entries.iter().enumerate() {
            writeln!(f, "# EACL entry {}", idx + 1)?;
            write!(f, "{entry}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{AccessRight, CompositionMode, CondPhase, Condition, Eacl, EaclEntry};
    use crate::parser::parse_eacl;

    fn sample() -> Eacl {
        Eacl::with_mode(CompositionMode::Narrow)
            .with_entry(
                EaclEntry::new(AccessRight::negative("apache", "*"))
                    .with_condition(CondPhase::Pre, Condition::new("regex", "gnu", "*phf*"))
                    .with_condition(
                        CondPhase::RequestResult,
                        Condition::new("notify", "local", "on:failure/sysadmin/info:cgi"),
                    )
                    .with_condition(
                        CondPhase::Mid,
                        Condition::new("cpu_limit", "local", "<=250"),
                    )
                    .with_condition(
                        CondPhase::Post,
                        Condition::new("audit", "local", "on:success/info:op"),
                    ),
            )
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")))
    }

    #[test]
    fn printed_form_contains_all_lines() {
        let text = sample().to_string();
        assert!(text.contains("eacl_mode 1"));
        assert!(text.contains("neg_access_right apache *"));
        assert!(text.contains("pre_cond regex gnu *phf*"));
        assert!(text.contains("rr_cond notify local on:failure/sysadmin/info:cgi"));
        assert!(text.contains("mid_cond cpu_limit local <=250"));
        assert!(text.contains("post_cond audit local on:success/info:op"));
        assert!(text.contains("pos_access_right apache *"));
    }

    #[test]
    fn print_parse_round_trip() {
        let original = sample();
        let reparsed = parse_eacl(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn empty_eacl_prints_nothing_but_reparses() {
        let empty = Eacl::new();
        assert_eq!(empty.to_string(), "");
        assert_eq!(parse_eacl("").unwrap(), empty);
    }

    #[test]
    fn mode_only_eacl_round_trips() {
        let eacl = Eacl::with_mode(CompositionMode::Stop);
        let reparsed = parse_eacl(&eacl.to_string()).unwrap();
        assert_eq!(eacl, reparsed);
    }
}
