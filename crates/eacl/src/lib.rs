//! # gaa-eacl — the Extended Access Control List policy language
//!
//! This crate implements the **EACL** language from *"Integrated Access Control
//! and Intrusion Detection for Web Servers"* (Ryutov, Neuman, Kim, Zhou —
//! ICDCS 2003), §2 and the Appendix.
//!
//! An EACL is an **ordered** list of entries. Each entry carries a positive or
//! negative access right and four optional, totally ordered condition blocks:
//!
//! * **pre-conditions** — decide whether the entry applies (grant/deny guard);
//! * **request-result conditions** — response actions fired on grant and/or
//!   deny (audit, notify, blacklist update);
//! * **mid-conditions** — constraints that must hold *while* the authorized
//!   operation executes;
//! * **post-conditions** — actions fired after the operation completes.
//!
//! The crate provides:
//!
//! * the abstract syntax tree ([`Eacl`], [`EaclEntry`], [`Condition`], …);
//! * a line-oriented [`parser`](parse_eacl) for the concrete syntax given in
//!   the paper's Appendix (BNF) and used throughout its §7 deployment examples;
//! * a [pretty-printer](Eacl#impl-Display-for-Eacl) that round-trips with the
//!   parser;
//! * [static validation](validate::validate) (shadowed entries, unknown
//!   phases, empty policies);
//! * [policy composition](compose) — the `expand` / `narrow` / `stop` modes of
//!   §2.1 that relate system-wide and local policies.
//!
//! Policy *evaluation* (the tri-state YES/NO/MAYBE machinery) lives in
//! `gaa-core`; this crate is purely the language.
//!
//! ## Concrete syntax
//!
//! ```text
//! # composition mode: expand | narrow | stop (or 0 | 1 | 2)
//! eacl_mode narrow
//!
//! # EACL entry 1
//! neg_access_right apache *
//! pre_cond regex gnu *phf* *test-cgi*
//! rr_cond notify local on:failure/sysadmin/info:cgi_exploit
//! rr_cond update_log local on:failure/BadGuys/info:ip
//!
//! # EACL entry 2
//! pos_access_right apache *
//! ```
//!
//! Every non-comment line is either the optional `eacl_mode` header, an
//! access-right line opening a new entry, or a condition line attaching to the
//! current entry. A condition line is `<phase>_cond <type> <authority>
//! <value…>` where the value extends to the end of the line (signature lists
//! such as `*phf* *test-cgi*` are a single value).
//!
//! ## Example
//!
//! ```rust
//! use gaa_eacl::{parse_eacl, CompositionMode, Polarity};
//!
//! # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
//! let policy = parse_eacl(
//!     "eacl_mode narrow\n\
//!      neg_access_right * *\n\
//!      pre_cond system_threat_level local =high\n",
//! )?;
//! assert_eq!(policy.mode, Some(CompositionMode::Narrow));
//! assert_eq!(policy.entries.len(), 1);
//! assert_eq!(policy.entries[0].right.polarity, Polarity::Negative);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
mod ast;
pub mod compose;
mod display;
mod error;
mod parser;
mod span;
pub mod validate;

pub use ast::{
    AccessRight, CompositionMode, CondPhase, Condition, Eacl, EaclEntry, Polarity, RightPattern,
};
pub use compose::{ComposedPolicy, PolicyLayer};
pub use error::ParseEaclError;
pub use parser::{parse_eacl, parse_eacl_list, parse_eacl_list_spanned, parse_eacl_spanned};
pub use span::{EaclSpans, EntrySpans, Span, SpannedEacl};
