//! Abstract syntax tree for the EACL policy language.
//!
//! The shapes here mirror the BNF in the paper's Appendix:
//!
//! ```text
//! eacl       ::= (composition_mode) { entry }
//! entry      ::= pright conds | nright pre_cond_block rr_cond_block
//! pright     ::= "pos_access_right" def_auth value
//! nright     ::= "neg_access_right" def_auth value
//! conds      ::= pre_cond_block rr_cond_block mid_cond_block post_cond_block
//! condition  ::= cond_type def_auth value
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a system-wide policy composes with local policies (§2.1).
///
/// The numeric encodings (`0`, `1`, `2`) follow the Appendix BNF
/// (`composition mode ::= "0" | "1" | "2"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompositionMode {
    /// `0` — the system-wide policy *broadens* access: the request is allowed
    /// if either the system-wide or the local policy allows it (disjunction).
    Expand,
    /// `1` — the system-wide policy *narrows* access: mandatory (system) and
    /// discretionary (local) components must both be satisfied (conjunction).
    Narrow,
    /// `2` — the system-wide policy *overrides*: local policies are ignored
    /// entirely. Used to react quickly to an attack ("shut down component
    /// systems").
    Stop,
}

impl CompositionMode {
    /// The numeric code used in the Appendix BNF.
    pub fn code(self) -> u8 {
        match self {
            CompositionMode::Expand => 0,
            CompositionMode::Narrow => 1,
            CompositionMode::Stop => 2,
        }
    }

    /// Keyword form used by the pretty-printer.
    pub fn keyword(self) -> &'static str {
        match self {
            CompositionMode::Expand => "expand",
            CompositionMode::Narrow => "narrow",
            CompositionMode::Stop => "stop",
        }
    }
}

impl fmt::Display for CompositionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl FromStr for CompositionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "0" | "expand" => Ok(CompositionMode::Expand),
            "1" | "narrow" => Ok(CompositionMode::Narrow),
            "2" | "stop" => Ok(CompositionMode::Stop),
            other => Err(format!(
                "unknown composition mode `{other}` (expected 0/1/2 or expand/narrow/stop)"
            )),
        }
    }
}

/// Whether an entry grants (`pos_access_right`) or denies
/// (`neg_access_right`) its right when the entry's pre-conditions hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// The entry grants the right.
    Positive,
    /// The entry denies the right.
    Negative,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Positive => f.write_str("pos_access_right"),
            Polarity::Negative => f.write_str("neg_access_right"),
        }
    }
}

/// The four condition phases of an EACL entry (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CondPhase {
    /// Evaluated before the operation starts; decides whether the entry
    /// applies.
    Pre,
    /// Activated once the authorization decision is known (grant *or* deny).
    RequestResult,
    /// Must hold during the execution of the authorized operation.
    Mid,
    /// Activated after the operation completes (success *or* failure).
    Post,
}

impl CondPhase {
    /// The line keyword introducing a condition of this phase.
    pub fn keyword(self) -> &'static str {
        match self {
            CondPhase::Pre => "pre_cond",
            CondPhase::RequestResult => "rr_cond",
            CondPhase::Mid => "mid_cond",
            CondPhase::Post => "post_cond",
        }
    }

    /// All phases, in evaluation order.
    pub fn all() -> [CondPhase; 4] {
        [
            CondPhase::Pre,
            CondPhase::RequestResult,
            CondPhase::Mid,
            CondPhase::Post,
        ]
    }
}

impl fmt::Display for CondPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A single condition: `cond_type def_auth value`.
///
/// `cond_type` selects the evaluation routine (e.g. `regex`, `accessid`,
/// `system_threat_level`); `authority` scopes the namespace in which the
/// type is defined (`local`, `gnu`, a Kerberos realm, …); `value` is the
/// opaque argument interpreted by the routine (the remainder of the line).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// Condition type, e.g. `regex`, `accessid`, `time_window`.
    pub cond_type: String,
    /// Defining authority, e.g. `local`, `gnu`, `USER`, `GROUP`.
    pub authority: String,
    /// Opaque value string passed to the evaluation routine.
    pub value: String,
}

impl Condition {
    /// Convenience constructor.
    ///
    /// ```rust
    /// use gaa_eacl::Condition;
    /// let c = Condition::new("regex", "gnu", "*phf*");
    /// assert_eq!(c.cond_type, "regex");
    /// ```
    pub fn new(
        cond_type: impl Into<String>,
        authority: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        Condition {
            cond_type: cond_type.into(),
            authority: authority.into(),
            value: value.into(),
        }
    }

    /// The `(type, authority)` pair used to look up a registered evaluator.
    pub fn key(&self) -> (&str, &str) {
        (&self.cond_type, &self.authority)
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.cond_type, self.authority, self.value)
    }
}

/// An access right: polarity plus a `def_auth value` pattern.
///
/// Both `authority` and `value` may be the wildcard `*`, which matches
/// anything when an EACL is evaluated against a requested right.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessRight {
    /// Grant or deny.
    pub polarity: Polarity,
    /// Defining authority of the right (e.g. `apache`, `sshd`, `*`).
    pub authority: String,
    /// Right value (e.g. `GET`, `EXEC_CGI`, `*`).
    pub value: String,
}

impl AccessRight {
    /// Constructs a positive (granting) right.
    pub fn positive(authority: impl Into<String>, value: impl Into<String>) -> Self {
        AccessRight {
            polarity: Polarity::Positive,
            authority: authority.into(),
            value: value.into(),
        }
    }

    /// Constructs a negative (denying) right.
    pub fn negative(authority: impl Into<String>, value: impl Into<String>) -> Self {
        AccessRight {
            polarity: Polarity::Negative,
            authority: authority.into(),
            value: value.into(),
        }
    }

    /// Does this right's pattern cover the requested `(authority, value)`
    /// pair? `*` in either position matches anything.
    pub fn matches(&self, authority: &str, value: &str) -> bool {
        (self.authority == "*" || self.authority == authority)
            && (self.value == "*" || self.value == value)
    }
}

impl fmt::Display for AccessRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.polarity, self.authority, self.value)
    }
}

/// A requested right, built by the application from an incoming access
/// request (paper §6 step 2b). Matched against [`AccessRight`] patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RightPattern {
    /// Defining authority (e.g. `apache`).
    pub authority: String,
    /// Right value (e.g. `GET`).
    pub value: String,
}

impl RightPattern {
    /// Convenience constructor.
    pub fn new(authority: impl Into<String>, value: impl Into<String>) -> Self {
        RightPattern {
            authority: authority.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for RightPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.authority, self.value)
    }
}

/// One EACL entry: a right plus four ordered condition blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EaclEntry {
    /// The (positive or negative) access right this entry governs.
    pub right: AccessRight,
    /// Pre-conditions (ordered conjunction) deciding whether the entry
    /// applies.
    pub pre: Vec<Condition>,
    /// Request-result conditions fired once the decision is known.
    pub rr: Vec<Condition>,
    /// Mid-conditions enforced during operation execution.
    pub mid: Vec<Condition>,
    /// Post-conditions fired after the operation completes.
    pub post: Vec<Condition>,
}

impl Default for AccessRight {
    fn default() -> Self {
        AccessRight::positive("*", "*")
    }
}

impl EaclEntry {
    /// Creates an entry for `right` with empty condition blocks.
    pub fn new(right: AccessRight) -> Self {
        EaclEntry {
            right,
            pre: Vec::new(),
            rr: Vec::new(),
            mid: Vec::new(),
            post: Vec::new(),
        }
    }

    /// Appends a condition to the block for `phase`, returning `self` for
    /// chaining.
    pub fn with_condition(mut self, phase: CondPhase, cond: Condition) -> Self {
        self.block_mut(phase).push(cond);
        self
    }

    /// Shared view of the condition block for `phase`.
    pub fn block(&self, phase: CondPhase) -> &[Condition] {
        match phase {
            CondPhase::Pre => &self.pre,
            CondPhase::RequestResult => &self.rr,
            CondPhase::Mid => &self.mid,
            CondPhase::Post => &self.post,
        }
    }

    /// Mutable view of the condition block for `phase`.
    pub fn block_mut(&mut self, phase: CondPhase) -> &mut Vec<Condition> {
        match phase {
            CondPhase::Pre => &mut self.pre,
            CondPhase::RequestResult => &mut self.rr,
            CondPhase::Mid => &mut self.mid,
            CondPhase::Post => &mut self.post,
        }
    }

    /// Total number of conditions across all four blocks.
    pub fn condition_count(&self) -> usize {
        self.pre.len() + self.rr.len() + self.mid.len() + self.post.len()
    }

    /// True if the entry has no conditions at all (an unconditional grant or
    /// deny).
    pub fn is_unconditional(&self) -> bool {
        self.condition_count() == 0
    }
}

/// An ordered EACL: optional composition mode plus entries evaluated
/// first-to-last (earlier entries take precedence, §2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Eacl {
    /// Composition mode, meaningful on system-wide policies (§2.1).
    pub mode: Option<CompositionMode>,
    /// Ordered entries; evaluation proceeds first-to-last.
    pub entries: Vec<EaclEntry>,
}

impl Eacl {
    /// Creates an empty EACL with no composition mode.
    pub fn new() -> Self {
        Eacl::default()
    }

    /// Creates an empty EACL carrying a composition mode.
    pub fn with_mode(mode: CompositionMode) -> Self {
        Eacl {
            mode: Some(mode),
            entries: Vec::new(),
        }
    }

    /// Appends an entry, returning `self` for chaining.
    pub fn with_entry(mut self, entry: EaclEntry) -> Self {
        self.entries.push(entry);
        self
    }

    /// Iterator over entries whose right matches the requested
    /// `(authority, value)` pair, preserving EACL order.
    pub fn matching_entries<'a>(
        &'a self,
        authority: &'a str,
        value: &'a str,
    ) -> impl Iterator<Item = (usize, &'a EaclEntry)> + 'a {
        self.entries
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.right.matches(authority, value))
    }

    /// Total number of conditions in the whole EACL.
    pub fn condition_count(&self) -> usize {
        self.entries.iter().map(EaclEntry::condition_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_mode_codes_round_trip() {
        for mode in [
            CompositionMode::Expand,
            CompositionMode::Narrow,
            CompositionMode::Stop,
        ] {
            let from_code: CompositionMode = mode.code().to_string().parse().unwrap();
            assert_eq!(from_code, mode);
            let from_kw: CompositionMode = mode.keyword().parse().unwrap();
            assert_eq!(from_kw, mode);
        }
    }

    #[test]
    fn composition_mode_rejects_garbage() {
        assert!("3".parse::<CompositionMode>().is_err());
        assert!("".parse::<CompositionMode>().is_err());
        assert!("Narrow".parse::<CompositionMode>().is_err());
    }

    #[test]
    fn right_wildcard_matching() {
        let r = AccessRight::positive("*", "*");
        assert!(r.matches("apache", "GET"));
        assert!(r.matches("sshd", "login"));

        let r = AccessRight::positive("apache", "*");
        assert!(r.matches("apache", "GET"));
        assert!(!r.matches("sshd", "GET"));

        let r = AccessRight::negative("apache", "EXEC_CGI");
        assert!(r.matches("apache", "EXEC_CGI"));
        assert!(!r.matches("apache", "GET"));
    }

    #[test]
    fn wildcard_is_exact_token_not_substring() {
        let r = AccessRight::positive("apache*", "GET");
        assert!(!r.matches("apache", "GET"));
        assert!(r.matches("apache*", "GET"));
    }

    #[test]
    fn entry_blocks_addressable_by_phase() {
        let mut entry = EaclEntry::new(AccessRight::positive("apache", "*"));
        for phase in CondPhase::all() {
            entry
                .block_mut(phase)
                .push(Condition::new("t", "local", phase.keyword()));
        }
        for phase in CondPhase::all() {
            assert_eq!(entry.block(phase).len(), 1);
            assert_eq!(entry.block(phase)[0].value, phase.keyword());
        }
        assert_eq!(entry.condition_count(), 4);
        assert!(!entry.is_unconditional());
    }

    #[test]
    fn matching_entries_preserve_order() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::negative("apache", "*")))
            .with_entry(EaclEntry::new(AccessRight::positive("*", "*")))
            .with_entry(EaclEntry::new(AccessRight::positive("sshd", "login")));
        let hits: Vec<usize> = eacl
            .matching_entries("apache", "GET")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            AccessRight::negative("apache", "*").to_string(),
            "neg_access_right apache *"
        );
        assert_eq!(
            Condition::new("regex", "gnu", "*phf*").to_string(),
            "regex gnu *phf*"
        );
        assert_eq!(CondPhase::RequestResult.to_string(), "rr_cond");
    }
}
