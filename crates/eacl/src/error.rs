//! Located parse errors for the EACL language.

use std::error::Error;
use std::fmt;

/// An error produced while parsing an EACL policy file.
///
/// Carries the 1-based line number at which the problem was found so policy
/// officers can locate mistakes in their policy files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEaclError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ErrorKind {
    /// A condition line appeared before any access-right line.
    ConditionBeforeEntry,
    /// An `eacl_mode` line appeared after entries had already started, or
    /// appeared twice.
    MisplacedMode,
    /// The composition mode value was not recognised.
    BadMode(String),
    /// A line did not start with a recognised keyword.
    UnknownKeyword(String),
    /// An access-right line was missing its authority or value token.
    IncompleteRight,
    /// A condition line was missing its type, authority or value token.
    IncompleteCondition,
}

impl ParseEaclError {
    pub(crate) fn new(line: usize, kind: ErrorKind) -> Self {
        ParseEaclError { line, kind }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseEaclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ErrorKind::ConditionBeforeEntry => {
                f.write_str("condition line before any pos_access_right/neg_access_right entry")
            }
            ErrorKind::MisplacedMode => {
                f.write_str("eacl_mode must appear once, before the first entry")
            }
            ErrorKind::BadMode(m) => write!(
                f,
                "unknown composition mode `{m}` (expected 0/1/2 or expand/narrow/stop)"
            ),
            ErrorKind::UnknownKeyword(k) => write!(
                f,
                "unknown keyword `{k}` (expected eacl_mode, pos_access_right, \
                 neg_access_right, pre_cond, rr_cond, mid_cond or post_cond)"
            ),
            ErrorKind::IncompleteRight => {
                f.write_str("access right requires an authority and a value token")
            }
            ErrorKind::IncompleteCondition => {
                f.write_str("condition requires a type, an authority and a value")
            }
        }
    }
}

impl Error for ParseEaclError {}
