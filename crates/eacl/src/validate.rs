//! Static validation of EACL policies.
//!
//! The paper (§2) notes that "the function of defining the order of EACL
//! entries and conditions within an entry can be best served by an automated
//! tool to ensure policy correctness and consistency" and leaves that tool to
//! future work. This module implements that tool: a linter that detects the
//! ordering mistakes the paper warns about.

use crate::ast::{Eacl, Polarity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Questionable but legal policy; evaluation proceeds.
    Warning,
    /// The policy is self-defeating; deployment should be blocked.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A single finding produced by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// Index of the entry the finding refers to, if any.
    pub entry: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.entry {
            Some(idx) => write!(f, "{}: entry {}: {}", self.severity, idx + 1, self.message),
            None => write!(f, "{}: {}", self.severity, self.message),
        }
    }
}

/// Lints `eacl` and returns all findings, most severe first.
///
/// Checks performed:
///
/// * **empty policy** (warning) — an EACL with no entries denies everything
///   under the default-deny evaluation rule;
/// * **unreachable entries** (error) — entries after an *unconditional* entry
///   whose right pattern subsumes theirs can never be consulted, because
///   evaluation is first-match (§2: "entries which already have been examined
///   take precedence");
/// * **duplicate entries** (warning) — textually identical entries;
/// * **unconditional deny-all first** (warning) — a leading
///   `neg_access_right * *` with no pre-conditions makes the whole policy a
///   constant deny;
/// * **response conditions on unreachable entries** (folded into the
///   unreachable error message) — notify/audit actions that can never fire.
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::{parse_eacl, validate::validate};
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let eacl = parse_eacl(
///     "pos_access_right * *\n\
///      neg_access_right apache *\n\
///      pre_cond regex gnu *phf*\n",
/// )?;
/// let findings = validate(&eacl);
/// assert!(findings.iter().any(|f| f.message.contains("unreachable")));
/// # Ok(())
/// # }
/// ```
pub fn validate(eacl: &Eacl) -> Vec<Finding> {
    let mut findings = Vec::new();

    if eacl.entries.is_empty() {
        findings.push(Finding {
            severity: Severity::Warning,
            entry: None,
            message: "policy has no entries; default-deny applies to every request".into(),
        });
        return findings;
    }

    // Unreachability: an unconditional entry whose right pattern subsumes a
    // later entry's pattern shadows it completely.
    for (i, blocker) in eacl.entries.iter().enumerate() {
        if !blocker.pre.is_empty() {
            continue; // Conditional entries fall through when their guard fails.
        }
        for (j, shadowed) in eacl.entries.iter().enumerate().skip(i + 1) {
            if subsumes(&blocker.right.authority, &shadowed.right.authority)
                && subsumes(&blocker.right.value, &shadowed.right.value)
            {
                let mut message = format!(
                    "unreachable: unconditional entry {} already decides every right this \
                     entry matches",
                    i + 1
                );
                if !shadowed.rr.is_empty() || !shadowed.post.is_empty() {
                    message.push_str("; its notify/audit response conditions can never fire");
                }
                findings.push(Finding {
                    severity: Severity::Error,
                    entry: Some(j),
                    message,
                });
            }
        }
    }

    // Duplicates.
    for (i, a) in eacl.entries.iter().enumerate() {
        for (j, b) in eacl.entries.iter().enumerate().skip(i + 1) {
            if a == b {
                findings.push(Finding {
                    severity: Severity::Warning,
                    entry: Some(j),
                    message: format!("duplicate of entry {}", i + 1),
                });
            }
        }
    }

    // Constant deny.
    let first = &eacl.entries[0];
    if first.right.polarity == Polarity::Negative
        && first.right.authority == "*"
        && first.right.value == "*"
        && first.pre.is_empty()
    {
        findings.push(Finding {
            severity: Severity::Warning,
            entry: Some(0),
            message: "leading unconditional deny-all makes the entire policy a constant deny"
                .into(),
        });
    }

    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.entry.cmp(&b.entry)));
    findings
}

/// Pattern subsumption for right tokens: `*` subsumes everything; otherwise
/// only an identical token.
fn subsumes(pattern: &str, other: &str) -> bool {
    pattern == "*" || pattern == other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessRight, CondPhase, Condition, Eacl, EaclEntry};

    fn guarded(entry: EaclEntry) -> EaclEntry {
        entry.with_condition(CondPhase::Pre, Condition::new("t", "local", "v"))
    }

    #[test]
    fn empty_policy_warns() {
        let findings = validate(&Eacl::new());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warning);
    }

    #[test]
    fn unconditional_grant_shadows_later_entries() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("*", "*")))
            .with_entry(EaclEntry::new(AccessRight::negative("apache", "*")));
        let findings = validate(&eacl);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Error && f.entry == Some(1)));
    }

    #[test]
    fn conditional_entries_do_not_shadow() {
        let eacl = Eacl::new()
            .with_entry(guarded(EaclEntry::new(AccessRight::negative(
                "apache", "*",
            ))))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn narrower_pattern_does_not_shadow_wider() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "GET")))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn shadowed_response_actions_called_out() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("*", "*")))
            .with_entry(
                EaclEntry::new(AccessRight::negative("apache", "*")).with_condition(
                    CondPhase::RequestResult,
                    Condition::new("notify", "local", "on:failure/x/info:y"),
                ),
            );
        let findings = validate(&eacl);
        assert!(findings.iter().any(|f| f.message.contains("never fire")));
    }

    #[test]
    fn duplicates_warn() {
        let entry = guarded(EaclEntry::new(AccessRight::positive("apache", "*")));
        let eacl = Eacl::new().with_entry(entry.clone()).with_entry(entry);
        let findings = validate(&eacl);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Warning && f.message.contains("duplicate")));
    }

    #[test]
    fn leading_deny_all_warns() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::negative("*", "*")))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        let findings = validate(&eacl);
        assert!(findings.iter().any(|f| f.message.contains("constant deny")));
    }

    #[test]
    fn clean_policy_has_no_findings() {
        let eacl = Eacl::new()
            .with_entry(guarded(EaclEntry::new(AccessRight::negative(
                "apache", "*",
            ))))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn errors_sort_before_warnings() {
        let dup = EaclEntry::new(AccessRight::positive("*", "*"));
        let eacl = Eacl::new()
            .with_entry(dup.clone())
            .with_entry(dup)
            .with_entry(EaclEntry::new(AccessRight::negative("apache", "GET")));
        let findings = validate(&eacl);
        assert!(!findings.is_empty());
        for pair in findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }
}
