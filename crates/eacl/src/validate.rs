//! Static validation of EACL policies — the syntax tier of the lint stack.
//!
//! The paper (§2) notes that "the function of defining the order of EACL
//! entries and conditions within an entry can be best served by an automated
//! tool to ensure policy correctness and consistency" and leaves that tool to
//! future work. This module implements the per-EACL half of that tool: a
//! linter that detects the ordering mistakes the paper warns about. The
//! whole-deployment semantic passes (composition-aware shadowing,
//! MAYBE-surface, completeness, differential checking) live in the
//! `gaa-analyze` crate, which folds these findings in as its `GAA1xx` tier.

use crate::ast::{Eacl, Polarity};
use crate::span::{EaclSpans, Span, SpannedEacl};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Questionable but legal policy; evaluation proceeds.
    Warning,
    /// The policy is self-defeating; deployment should be blocked.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Machine-readable classification of a [`Finding`], with a stable lint
/// code (the `GAA1xx` syntax tier of the `gaa-analyze` catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FindingKind {
    /// `GAA101`: the policy has no entries at all.
    EmptyPolicy,
    /// `GAA102`: an entry is unreachable behind an unconditional subsuming
    /// entry.
    Unreachable,
    /// `GAA103`: an entry textually duplicates an earlier one.
    Duplicate,
    /// `GAA104`: a leading unconditional deny-all makes the policy constant.
    ConstantDeny,
}

impl FindingKind {
    /// The stable lint code, e.g. `"GAA102"`.
    pub fn code(self) -> &'static str {
        match self {
            FindingKind::EmptyPolicy => "GAA101",
            FindingKind::Unreachable => "GAA102",
            FindingKind::Duplicate => "GAA103",
            FindingKind::ConstantDeny => "GAA104",
        }
    }
}

/// A single finding produced by [`validate`] / [`validate_spanned`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// What class of defect this is (carries the stable lint code).
    pub kind: FindingKind,
    /// Severity of the finding.
    pub severity: Severity,
    /// Index of the entry the finding refers to, if any.
    pub entry: Option<usize>,
    /// Source location of the offending construct. Always present when the
    /// policy was parsed via [`parse_eacl_spanned`]; `None` for ASTs built
    /// programmatically (no source text to point into).
    ///
    /// [`parse_eacl_spanned`]: crate::parse_eacl_spanned
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.kind.code())?;
        if let Some(span) = self.span {
            write!(f, ": {span}")?;
        }
        match self.entry {
            Some(idx) => write!(f, ": entry {}: {}", idx + 1, self.message),
            None => write!(f, ": {}", self.message),
        }
    }
}

/// Lints `eacl` and returns all findings, most severe first.
///
/// Checks performed:
///
/// * **empty policy** (`GAA101`, warning) — an EACL with no entries denies
///   everything under the default-deny evaluation rule;
/// * **unreachable entries** (`GAA102`, error) — entries after an
///   *unconditional* entry whose right pattern subsumes theirs can never be
///   consulted, because evaluation is first-match (§2: "entries which
///   already have been examined take precedence");
/// * **duplicate entries** (`GAA103`, warning) — textually identical entries;
/// * **unconditional deny-all first** (`GAA104`, warning) — a leading
///   `neg_access_right * *` with no pre-conditions makes the whole policy a
///   constant deny;
/// * **response conditions on unreachable entries** (folded into the
///   unreachable error message) — notify/audit actions that can never fire.
///
/// Findings from this entry point carry no [`Span`] (there is no source
/// text); use [`validate_spanned`] to keep positions.
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::{parse_eacl, validate::validate};
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let eacl = parse_eacl(
///     "pos_access_right * *\n\
///      neg_access_right apache *\n\
///      pre_cond regex gnu *phf*\n",
/// )?;
/// let findings = validate(&eacl);
/// assert!(findings.iter().any(|f| f.message.contains("unreachable")));
/// # Ok(())
/// # }
/// ```
pub fn validate(eacl: &Eacl) -> Vec<Finding> {
    validate_impl(eacl, None)
}

/// Lints a parsed-with-spans EACL; every finding carries the byte/line
/// [`Span`] of the construct it refers to.
///
/// # Examples
///
/// ```rust
/// use gaa_eacl::{parse_eacl_spanned, validate::validate_spanned};
///
/// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
/// let spanned = parse_eacl_spanned(
///     "pos_access_right * *\n\
///      neg_access_right apache *\n",
/// )?;
/// let findings = validate_spanned(&spanned);
/// assert_eq!(findings[0].span.unwrap().line, 2);
/// # Ok(())
/// # }
/// ```
pub fn validate_spanned(spanned: &SpannedEacl) -> Vec<Finding> {
    validate_impl(&spanned.eacl, Some(&spanned.spans))
}

fn validate_impl(eacl: &Eacl, spans: Option<&EaclSpans>) -> Vec<Finding> {
    let mut findings = Vec::new();
    // With spans available, every finding gets a location: entry findings
    // point at the entry's access-right line; the whole-policy finding
    // points at the mode header or the start of the (empty) file.
    let entry_span = |entry: usize| spans.map(|s| s.entries[entry].right);

    if eacl.entries.is_empty() {
        findings.push(Finding {
            kind: FindingKind::EmptyPolicy,
            severity: Severity::Warning,
            entry: None,
            span: spans.map(|s| s.mode.unwrap_or_else(Span::file_start)),
            message: "policy has no entries; default-deny applies to every request".into(),
        });
        return findings;
    }

    // Unreachability: an unconditional entry whose right pattern subsumes a
    // later entry's pattern shadows it completely.
    for (i, blocker) in eacl.entries.iter().enumerate() {
        if !blocker.pre.is_empty() {
            continue; // Conditional entries fall through when their guard fails.
        }
        for (j, shadowed) in eacl.entries.iter().enumerate().skip(i + 1) {
            if subsumes(&blocker.right.authority, &shadowed.right.authority)
                && subsumes(&blocker.right.value, &shadowed.right.value)
            {
                let mut message = format!(
                    "unreachable: unconditional entry {} already decides every right this \
                     entry matches",
                    i + 1
                );
                // Anchor at the right line by default; when the complaint
                // is about dead response conditions, point at the first
                // offending condition line of the (multi-line) block.
                let mut span = entry_span(j);
                if !shadowed.rr.is_empty() || !shadowed.post.is_empty() {
                    message.push_str("; its notify/audit response conditions can never fire");
                    if let Some(s) = spans {
                        span = s.entries[j]
                            .rr
                            .first()
                            .or_else(|| s.entries[j].post.first())
                            .copied()
                            .or(span);
                    }
                }
                findings.push(Finding {
                    kind: FindingKind::Unreachable,
                    severity: Severity::Error,
                    entry: Some(j),
                    span,
                    message,
                });
            }
        }
    }

    // Duplicates.
    for (i, a) in eacl.entries.iter().enumerate() {
        for (j, b) in eacl.entries.iter().enumerate().skip(i + 1) {
            if a == b {
                findings.push(Finding {
                    kind: FindingKind::Duplicate,
                    severity: Severity::Warning,
                    entry: Some(j),
                    span: entry_span(j),
                    message: format!("duplicate of entry {}", i + 1),
                });
            }
        }
    }

    // Constant deny.
    let first = &eacl.entries[0];
    if first.right.polarity == Polarity::Negative
        && first.right.authority == "*"
        && first.right.value == "*"
        && first.pre.is_empty()
    {
        findings.push(Finding {
            kind: FindingKind::ConstantDeny,
            severity: Severity::Warning,
            entry: Some(0),
            span: entry_span(0),
            message: "leading unconditional deny-all makes the entire policy a constant deny"
                .into(),
        });
    }

    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.entry.cmp(&b.entry)));
    findings
}

/// Pattern subsumption for right tokens: `*` subsumes everything; otherwise
/// only an identical token.
fn subsumes(pattern: &str, other: &str) -> bool {
    pattern == "*" || pattern == other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessRight, CondPhase, Condition, Eacl, EaclEntry};
    use crate::parser::parse_eacl_spanned;

    fn guarded(entry: EaclEntry) -> EaclEntry {
        entry.with_condition(CondPhase::Pre, Condition::new("t", "local", "v"))
    }

    #[test]
    fn empty_policy_warns() {
        let findings = validate(&Eacl::new());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Warning);
        assert_eq!(findings[0].kind, FindingKind::EmptyPolicy);
        assert_eq!(findings[0].span, None);
    }

    #[test]
    fn unconditional_grant_shadows_later_entries() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("*", "*")))
            .with_entry(EaclEntry::new(AccessRight::negative("apache", "*")));
        let findings = validate(&eacl);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Error && f.entry == Some(1)));
    }

    #[test]
    fn conditional_entries_do_not_shadow() {
        let eacl = Eacl::new()
            .with_entry(guarded(EaclEntry::new(AccessRight::negative(
                "apache", "*",
            ))))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn narrower_pattern_does_not_shadow_wider() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "GET")))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn shadowed_response_actions_called_out() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("*", "*")))
            .with_entry(
                EaclEntry::new(AccessRight::negative("apache", "*")).with_condition(
                    CondPhase::RequestResult,
                    Condition::new("notify", "local", "on:failure/x/info:y"),
                ),
            );
        let findings = validate(&eacl);
        assert!(findings.iter().any(|f| f.message.contains("never fire")));
    }

    #[test]
    fn duplicates_warn() {
        let entry = guarded(EaclEntry::new(AccessRight::positive("apache", "*")));
        let eacl = Eacl::new().with_entry(entry.clone()).with_entry(entry);
        let findings = validate(&eacl);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Warning && f.message.contains("duplicate")));
    }

    #[test]
    fn leading_deny_all_warns() {
        let eacl = Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::negative("*", "*")))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        let findings = validate(&eacl);
        assert!(findings.iter().any(|f| f.message.contains("constant deny")));
    }

    #[test]
    fn clean_policy_has_no_findings() {
        let eacl = Eacl::new()
            .with_entry(guarded(EaclEntry::new(AccessRight::negative(
                "apache", "*",
            ))))
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")));
        assert!(validate(&eacl).is_empty());
    }

    #[test]
    fn errors_sort_before_warnings() {
        let dup = EaclEntry::new(AccessRight::positive("*", "*"));
        let eacl = Eacl::new()
            .with_entry(dup.clone())
            .with_entry(dup)
            .with_entry(EaclEntry::new(AccessRight::negative("apache", "GET")));
        let findings = validate(&eacl);
        assert!(!findings.is_empty());
        for pair in findings.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }

    #[test]
    fn spanned_findings_carry_locations() {
        let spanned = parse_eacl_spanned(
            "# comment\n\
             pos_access_right * *\n\
             neg_access_right apache *\n\
             rr_cond notify local on:failure/x/info:y\n\
             neg_access_right apache *\n\
             rr_cond notify local on:failure/x/info:y\n",
        )
        .unwrap();
        let findings = validate_spanned(&spanned);
        assert!(!findings.is_empty());
        for finding in &findings {
            let span = finding.span.expect("spanned validate keeps positions");
            assert!(span.line >= 2, "{finding}");
        }
        // The cross-entry unreachable finding points at the *shadowed*
        // entry; since the complaint here is about its dead rr_cond, the
        // span names the condition's own line, not the entry start.
        let unreachable: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.kind == FindingKind::Unreachable)
            .collect();
        // Entry 1 shadows entries 2 and 3; entry 2 (also unconditional)
        // shadows entry 3 again.
        assert_eq!(unreachable.len(), 3);
        assert_eq!(unreachable[0].span.unwrap().line, 4);
        assert_eq!(unreachable[1].span.unwrap().line, 6);
        assert_eq!(unreachable[2].span.unwrap().line, 6);
        // Display includes the code and the line.
        let text = unreachable[0].to_string();
        assert!(text.contains("GAA102"), "{text}");
        assert!(text.contains("line 4"), "{text}");
    }

    #[test]
    fn multi_line_condition_blocks_anchor_at_the_offending_line() {
        // The shadowed entry spreads its conditions over several lines;
        // the dead-response-conditions finding must point at the first
        // response condition (line 6), not the entry's right (line 3).
        let spanned = parse_eacl_spanned(
            "pos_access_right * *\n\
             # a deny nobody will ever reach\n\
             neg_access_right apache *\n\
             pre_cond accessid GROUP BadGuys\n\
             pre_cond time_window local 06:00-22:00\n\
             rr_cond notify local on:failure/x/info:y\n\
             rr_cond update_log local system_log\n\
             post_cond audit local on:success\n",
        )
        .unwrap();
        let findings = validate_spanned(&spanned);
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::Unreachable)
            .expect("shadowed entry is flagged");
        assert!(finding.message.contains("never fire"), "{finding}");
        assert_eq!(finding.span.unwrap().line, 6, "{finding}");

        // Without response conditions the anchor stays on the right line.
        let plain = parse_eacl_spanned(
            "pos_access_right * *\n\
             neg_access_right apache *\n\
             pre_cond accessid GROUP BadGuys\n\
             pre_cond time_window local 06:00-22:00\n",
        )
        .unwrap();
        let findings = validate_spanned(&plain);
        let finding = findings
            .iter()
            .find(|f| f.kind == FindingKind::Unreachable)
            .expect("shadowed entry is flagged");
        assert_eq!(finding.span.unwrap().line, 2, "{finding}");
    }

    #[test]
    fn spanned_empty_policy_points_at_header() {
        let spanned = parse_eacl_spanned("eacl_mode narrow\n# nothing else\n").unwrap();
        let findings = validate_spanned(&spanned);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::EmptyPolicy);
        assert_eq!(findings[0].span.unwrap().line, 1);
        // Entirely empty input: span degrades to the file start.
        let empty = parse_eacl_spanned("").unwrap();
        let findings = validate_spanned(&empty);
        assert_eq!(findings[0].span.unwrap(), Span::file_start());
    }

    #[test]
    fn kind_codes_are_stable() {
        assert_eq!(FindingKind::EmptyPolicy.code(), "GAA101");
        assert_eq!(FindingKind::Unreachable.code(), "GAA102");
        assert_eq!(FindingKind::Duplicate.code(), "GAA103");
        assert_eq!(FindingKind::ConstantDeny.code(), "GAA104");
    }
}
