//! Policy composition (§2.1): relating system-wide and local policies.
//!
//! Composition constructs a single [`ComposedPolicy`] by placing system-wide
//! EACLs *before* local EACLs ("system-wide policies implicitly have higher
//! priority") and recording the **composition mode** declared by the
//! system-wide policy:
//!
//! * [`Expand`](crate::CompositionMode::Expand) — access is allowed if
//!   *either* level allows it;
//! * [`Narrow`](crate::CompositionMode::Narrow) — the mandatory (system)
//!   component must hold *and* the discretionary (local) component must be
//!   satisfied;
//! * [`Stop`](crate::CompositionMode::Stop) — local policies are discarded
//!   entirely.
//!
//! Multiple policies at the same level always conjoin ("to evaluate several
//! separately specified local (or system-wide) policies, we take a
//! conjunction of the policies").
//!
//! Evaluation of the composed structure is performed by `gaa-core`; this
//! module only builds the structure and fixes the ordering.

use crate::ast::{CompositionMode, Eacl};
use serde::{Deserialize, Serialize};

/// Which level a constituent EACL came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyLayer {
    /// System-wide policy: applies to all applications, set by the domain
    /// administrator (mandatory component).
    System,
    /// Local policy: set by individual users or applications (discretionary
    /// component).
    Local,
}

/// The result of composing system-wide and local policy lists.
///
/// Iteration order is evaluation order: all system EACLs first, then (unless
/// the mode is [`Stop`](CompositionMode::Stop)) all local EACLs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComposedPolicy {
    mode: CompositionMode,
    system: Vec<Eacl>,
    local: Vec<Eacl>,
}

impl ComposedPolicy {
    /// Composes `system` and `local` policy lists.
    ///
    /// The mode is taken from the **first system-wide EACL that declares
    /// one**; if no system policy declares a mode, [`Narrow`]
    /// (conjunction — the safe default) is assumed. Under
    /// [`Stop`], local policies are dropped here and never consulted.
    ///
    /// [`Narrow`]: CompositionMode::Narrow
    /// [`Stop`]: CompositionMode::Stop
    ///
    /// # Examples
    ///
    /// ```rust
    /// use gaa_eacl::{parse_eacl, ComposedPolicy, CompositionMode};
    ///
    /// # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
    /// let system = parse_eacl("eacl_mode 2\nneg_access_right * *\n")?;
    /// let local = parse_eacl("pos_access_right apache *\n")?;
    /// let composed = ComposedPolicy::compose(vec![system], vec![local]);
    /// assert_eq!(composed.mode(), CompositionMode::Stop);
    /// assert!(composed.local().is_empty()); // stop discards local policies
    /// # Ok(())
    /// # }
    /// ```
    pub fn compose(system: Vec<Eacl>, local: Vec<Eacl>) -> Self {
        let mode = system
            .iter()
            .find_map(|e| e.mode)
            .unwrap_or(CompositionMode::Narrow);
        let local = match mode {
            CompositionMode::Stop => Vec::new(),
            _ => local,
        };
        ComposedPolicy {
            mode,
            system,
            local,
        }
    }

    /// Builds a composed policy from local policies only (no system-wide
    /// policy retrieved). The mode defaults to `Narrow`, which with an empty
    /// mandatory component reduces to "local policies decide".
    pub fn local_only(local: Vec<Eacl>) -> Self {
        ComposedPolicy {
            mode: CompositionMode::Narrow,
            system: Vec::new(),
            local,
        }
    }

    /// The effective composition mode.
    pub fn mode(&self) -> CompositionMode {
        self.mode
    }

    /// System-wide EACLs, in priority order.
    pub fn system(&self) -> &[Eacl] {
        &self.system
    }

    /// Local EACLs, in priority order (empty under `Stop`).
    pub fn local(&self) -> &[Eacl] {
        &self.local
    }

    /// All EACLs in evaluation order (system first, then local), each tagged
    /// with its layer.
    pub fn layers(&self) -> impl Iterator<Item = (PolicyLayer, &Eacl)> {
        self.system
            .iter()
            .map(|e| (PolicyLayer::System, e))
            .chain(self.local.iter().map(|e| (PolicyLayer::Local, e)))
    }

    /// Total number of EACLs that will be consulted.
    pub fn len(&self) -> usize {
        self.system.len() + self.local.len()
    }

    /// True when no EACL will be consulted at all.
    pub fn is_empty(&self) -> bool {
        self.system.is_empty() && self.local.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AccessRight, Eacl, EaclEntry};

    fn grant(authority: &str) -> Eacl {
        Eacl::new().with_entry(EaclEntry::new(AccessRight::positive(authority, "*")))
    }

    fn deny_all_with_mode(mode: CompositionMode) -> Eacl {
        Eacl::with_mode(mode).with_entry(EaclEntry::new(AccessRight::negative("*", "*")))
    }

    #[test]
    fn system_policies_precede_local() {
        let composed = ComposedPolicy::compose(
            vec![deny_all_with_mode(CompositionMode::Narrow)],
            vec![grant("apache")],
        );
        let layers: Vec<PolicyLayer> = composed.layers().map(|(l, _)| l).collect();
        assert_eq!(layers, vec![PolicyLayer::System, PolicyLayer::Local]);
    }

    #[test]
    fn mode_comes_from_first_declaring_system_eacl() {
        let undeclared = grant("a");
        let expand = Eacl::with_mode(CompositionMode::Expand);
        let narrow = Eacl::with_mode(CompositionMode::Narrow);
        let composed = ComposedPolicy::compose(vec![undeclared, expand, narrow], vec![grant("b")]);
        assert_eq!(composed.mode(), CompositionMode::Expand);
    }

    #[test]
    fn mode_defaults_to_narrow() {
        let composed = ComposedPolicy::compose(vec![grant("a")], vec![grant("b")]);
        assert_eq!(composed.mode(), CompositionMode::Narrow);
    }

    #[test]
    fn stop_discards_local_policies() {
        let composed = ComposedPolicy::compose(
            vec![deny_all_with_mode(CompositionMode::Stop)],
            vec![grant("apache"), grant("sshd")],
        );
        assert!(composed.local().is_empty());
        assert_eq!(composed.len(), 1);
    }

    #[test]
    fn expand_and_narrow_keep_local_policies() {
        for mode in [CompositionMode::Expand, CompositionMode::Narrow] {
            let composed =
                ComposedPolicy::compose(vec![deny_all_with_mode(mode)], vec![grant("apache")]);
            assert_eq!(composed.local().len(), 1, "mode {mode:?}");
        }
    }

    #[test]
    fn local_only_composition() {
        let composed = ComposedPolicy::local_only(vec![grant("apache")]);
        assert_eq!(composed.mode(), CompositionMode::Narrow);
        assert!(composed.system().is_empty());
        assert_eq!(composed.len(), 1);
        assert!(!composed.is_empty());
    }

    #[test]
    fn empty_composition() {
        let composed = ComposedPolicy::compose(Vec::new(), Vec::new());
        assert!(composed.is_empty());
        assert_eq!(composed.len(), 0);
        assert_eq!(composed.layers().count(), 0);
    }
}
