//! Source locations for parsed EACLs.
//!
//! Spans live in a **side table** ([`EaclSpans`]), not in the AST itself:
//! the AST's `PartialEq` drives the print→parse round-trip property tests,
//! and two policies that differ only in formatting must stay equal. The
//! spanned parser entry points ([`parse_eacl_spanned`],
//! [`parse_eacl_list_spanned`]) return the AST and its span table together
//! as a [`SpannedEacl`].
//!
//! [`parse_eacl_spanned`]: crate::parse_eacl_spanned
//! [`parse_eacl_list_spanned`]: crate::parse_eacl_list_spanned

use crate::ast::{CondPhase, Eacl};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Location of one construct (an `eacl_mode` header, an access-right line,
/// or a condition line) in the policy source text.
///
/// `line` is 1-based; `start`/`end` are byte offsets into the whole input
/// covering the construct's text with surrounding whitespace and trailing
/// comments stripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// 1-based line number within the source text.
    pub line: usize,
    /// Byte offset of the construct's first character.
    pub start: usize,
    /// Byte offset one past the construct's last character.
    pub end: usize,
}

impl Span {
    /// A span covering nothing at the very start of the input. Used when a
    /// finding concerns the policy as a whole (e.g. an empty policy).
    pub fn file_start() -> Span {
        Span {
            line: 1,
            start: 0,
            end: 0,
        }
    }

    /// Returns this span shifted by `line_delta` lines and `byte_delta`
    /// bytes (relocating a segment-relative span into whole-file terms).
    #[must_use]
    pub fn shifted(self, line_delta: usize, byte_delta: usize) -> Span {
        Span {
            line: self.line + line_delta,
            start: self.start + byte_delta,
            end: self.end + byte_delta,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Spans for one EACL entry: the access-right line plus one span per
/// condition in each phase block, in block order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EntrySpans {
    /// Span of the `pos_access_right` / `neg_access_right` line.
    pub right: Span,
    /// Spans of the `pre_cond` lines, in order.
    pub pre: Vec<Span>,
    /// Spans of the `rr_cond` lines, in order.
    pub rr: Vec<Span>,
    /// Spans of the `mid_cond` lines, in order.
    pub mid: Vec<Span>,
    /// Spans of the `post_cond` lines, in order.
    pub post: Vec<Span>,
}

impl EntrySpans {
    /// The span list for `phase`, parallel to
    /// [`EaclEntry::block`](crate::EaclEntry::block).
    pub fn block(&self, phase: CondPhase) -> &[Span] {
        match phase {
            CondPhase::Pre => &self.pre,
            CondPhase::RequestResult => &self.rr,
            CondPhase::Mid => &self.mid,
            CondPhase::Post => &self.post,
        }
    }

    /// Mutable span list for `phase` (parser internal).
    pub(crate) fn block_mut(&mut self, phase: CondPhase) -> &mut Vec<Span> {
        match phase {
            CondPhase::Pre => &mut self.pre,
            CondPhase::RequestResult => &mut self.rr,
            CondPhase::Mid => &mut self.mid,
            CondPhase::Post => &mut self.post,
        }
    }

    /// The span of the `index`-th condition of `phase`, if recorded.
    pub fn condition(&self, phase: CondPhase, index: usize) -> Option<Span> {
        self.block(phase).get(index).copied()
    }

    fn shift(&mut self, line_delta: usize, byte_delta: usize) {
        self.right = self.right.shifted(line_delta, byte_delta);
        for phase in CondPhase::all() {
            for span in self.block_mut(phase) {
                *span = span.shifted(line_delta, byte_delta);
            }
        }
    }
}

/// The span side table of one parsed EACL: structurally parallel to
/// [`Eacl`] (`entries[i]` locates `eacl.entries[i]`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EaclSpans {
    /// Span of the `eacl_mode` header line, when present.
    pub mode: Option<Span>,
    /// Per-entry spans, parallel to [`Eacl::entries`].
    pub entries: Vec<EntrySpans>,
}

impl EaclSpans {
    /// Shifts every recorded span by `line_delta` lines and `byte_delta`
    /// bytes (relocating segment-relative spans into whole-file terms).
    pub fn shift(&mut self, line_delta: usize, byte_delta: usize) {
        if let Some(mode) = &mut self.mode {
            *mode = mode.shifted(line_delta, byte_delta);
        }
        for entry in &mut self.entries {
            entry.shift(line_delta, byte_delta);
        }
    }
}

/// A parsed EACL together with its source-location side table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpannedEacl {
    /// The abstract syntax tree.
    pub eacl: Eacl,
    /// Source locations, parallel to `eacl`.
    pub spans: EaclSpans,
}
