//! Asserts the glob matchers are allocation-free on the hot path.
//!
//! `glob_match_ci` used to lowercase both pattern and text into fresh
//! `String`s on every call — two heap allocations per signature per request
//! on the hottest attacker-controlled path. The fix folds bytes inline
//! during the two-pointer scan; this test pins that property with a
//! counting global allocator so the regression cannot sneak back.

use gaa_ids::matcher::{glob_match, glob_match_ci, glob_match_ci_steps};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: Relaxed — the counter is only read after the measured
        // section on the same thread; no cross-thread ordering is needed.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    // ordering: Relaxed — single-threaded measurement, reads happen-after
    // the closure returns by program order.
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn glob_matchers_do_not_allocate() {
    // Warm up: pull the code paths in so lazy init (if any) is done.
    assert!(glob_match_ci("*PHF*", "/cgi-bin/phf"));
    assert!(glob_match("*phf*", "/cgi-bin/phf"));

    let pattern = "*TeSt-CgI*";
    let text = "GET /cgi-bin/test-cgi?x=long-ish-query-string HTTP/1.0";
    let adversarial = "a".repeat(2048);

    let n = allocations_during(|| {
        for _ in 0..64 {
            assert!(glob_match_ci(pattern, text));
            assert!(!glob_match_ci("*a*a*a*a*a*b*", &adversarial));
            assert!(!glob_match("*%*", text));
            let (ok, steps) = glob_match_ci_steps(pattern, text);
            assert!(ok && steps > 0);
        }
    });
    assert_eq!(n, 0, "glob matching allocated {n} times on the hot path");
}
