//! Profile building and anomaly-based intrusion detection.
//!
//! §9 future work, implemented: "We will investigate a possibility of
//! implementing a simple profile building module and anomaly detector … to
//! support anomaly-based intrusion detection in addition to the
//! signature-based." The input is §3 item 7: "Legitimate access request
//! patterns. This information can be used to derive profiles that describe
//! typical behavior of users working with different applications."
//!
//! The profile keeps, per principal, running statistics over request
//! features (query length, path depth) and an hour-of-day histogram; the
//! detector scores a new request by combining z-scores with an
//! unusual-hour penalty. Scores above a configurable threshold flag the
//! request as anomalous.

use gaa_audit::time::Timestamp;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Features extracted from one request for profiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestFeatures {
    /// Length of the query string in bytes.
    pub query_len: usize,
    /// Number of path segments in the URL.
    pub path_depth: usize,
    /// When the request was made (for the hour histogram).
    pub time: Timestamp,
}

impl RequestFeatures {
    /// Extracts features from a URL path+query and a timestamp.
    ///
    /// ```rust
    /// use gaa_audit::Timestamp;
    /// use gaa_ids::anomaly::RequestFeatures;
    ///
    /// let f = RequestFeatures::from_url("/a/b/c.html?x=1", Timestamp::from_millis(0));
    /// assert_eq!(f.path_depth, 3);
    /// assert_eq!(f.query_len, 3);
    /// ```
    pub fn from_url(url: &str, time: Timestamp) -> Self {
        let (path, query) = match url.split_once('?') {
            Some((p, q)) => (p, q),
            None => (url, ""),
        };
        RequestFeatures {
            query_len: query.len(),
            path_depth: path.split('/').filter(|s| !s.is_empty()).count(),
            time,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct FeatureStat {
    count: u64,
    mean: f64,
    m2: f64,
}

impl FeatureStat {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    fn zscore(&self, value: f64) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let stddev = (self.m2 / (self.count - 1) as f64).sqrt();
        if stddev < 1e-9 {
            // Flat baseline: any deviation is maximally surprising.
            if (value - self.mean).abs() < 1e-9 {
                0.0
            } else {
                10.0
            }
        } else {
            ((value - self.mean) / stddev).abs()
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Profile {
    query_len: FeatureStat,
    path_depth: FeatureStat,
    hour_counts: [u64; 24],
    total: u64,
}

/// Per-principal profile builder and anomaly scorer.
///
/// Cloning shares the profile store.
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    profiles: Arc<Mutex<HashMap<String, Profile>>>,
    /// Score at or above which a request is flagged.
    threshold: f64,
    /// Minimum observations before the detector will flag anything for a
    /// principal (cold-start guard against false positives).
    min_observations: u64,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        AnomalyDetector {
            profiles: Arc::new(Mutex::new(HashMap::new())),
            threshold: 3.0,
            min_observations: 20,
        }
    }
}

impl AnomalyDetector {
    /// Detector with threshold 3.0 and a 20-observation cold start.
    pub fn new() -> Self {
        AnomalyDetector::default()
    }

    /// Sets the anomaly-score threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the cold-start observation count.
    pub fn with_min_observations(mut self, n: u64) -> Self {
        self.min_observations = n;
        self
    }

    /// Learns one *legitimate* request into `principal`'s profile
    /// (§3 item 7 feed).
    pub fn learn(&self, principal: &str, features: &RequestFeatures) {
        let mut profiles = self.profiles.lock();
        let p = profiles.entry(principal.to_string()).or_default();
        p.query_len.observe(features.query_len as f64);
        p.path_depth.observe(features.path_depth as f64);
        p.hour_counts[features.time.hour_of_day() as usize] += 1;
        p.total += 1;
    }

    /// Anomaly score for a request: max feature z-score plus an
    /// unusual-hour penalty. Returns 0.0 during cold start.
    pub fn score(&self, principal: &str, features: &RequestFeatures) -> f64 {
        let profiles = self.profiles.lock();
        let Some(p) = profiles.get(principal) else {
            return 0.0;
        };
        if p.total < self.min_observations {
            return 0.0;
        }
        let z_query = p.query_len.zscore(features.query_len as f64);
        let z_depth = p.path_depth.zscore(features.path_depth as f64);
        let hour = features.time.hour_of_day() as usize;
        let hour_fraction = p.hour_counts[hour] as f64 / p.total as f64;
        // Never-seen hour adds a fixed penalty; rare hours a smaller one.
        let hour_penalty = if p.hour_counts[hour] == 0 {
            2.0
        } else if hour_fraction < 0.02 {
            1.0
        } else {
            0.0
        };
        z_query.max(z_depth) + hour_penalty
    }

    /// Is the request anomalous for this principal?
    pub fn is_anomalous(&self, principal: &str, features: &RequestFeatures) -> bool {
        self.score(principal, features) >= self.threshold
    }

    /// Number of learned observations for `principal`.
    pub fn observations(&self, principal: &str) -> u64 {
        self.profiles.lock().get(principal).map_or(0, |p| p.total)
    }

    /// Serializes every profile to a line-oriented text format, so learned
    /// behaviour survives server restarts (profiles take §3-item-7 traffic
    /// and time to build; losing them reopens the cold-start window).
    ///
    /// Format (one line per principal, `|`-separated fields):
    /// `name|total|q_count,q_mean,q_m2|d_count,d_mean,d_m2|h0,h1,…,h23`
    pub fn export_profiles(&self) -> String {
        let profiles = self.profiles.lock();
        let mut names: Vec<&String> = profiles.keys().collect();
        names.sort();
        let mut out = String::new();
        for name in names {
            let p = &profiles[name];
            let hours: Vec<String> = p.hour_counts.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{}|{}|{},{},{}|{},{},{}|{}\n",
                name,
                p.total,
                p.query_len.count,
                p.query_len.mean,
                p.query_len.m2,
                p.path_depth.count,
                p.path_depth.mean,
                p.path_depth.m2,
                hours.join(","),
            ));
        }
        out
    }

    /// Restores profiles exported by
    /// [`export_profiles`](AnomalyDetector::export_profiles), replacing any
    /// same-named principals. Returns how many profiles were loaded.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number of the first malformed line; no
    /// profiles before it are rolled back (load-then-verify if that
    /// matters).
    pub fn import_profiles(&self, text: &str) -> Result<usize, usize> {
        fn parse_stat(field: &str) -> Option<FeatureStat> {
            let mut parts = field.split(',');
            Some(FeatureStat {
                count: parts.next()?.parse().ok()?,
                mean: parts.next()?.parse().ok()?,
                m2: parts.next()?.parse().ok()?,
            })
        }
        let mut loaded = 0;
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parse = || -> Option<(String, Profile)> {
                let mut fields = line.split('|');
                let name = fields.next()?.to_string();
                let total: u64 = fields.next()?.parse().ok()?;
                let query_len = parse_stat(fields.next()?)?;
                let path_depth = parse_stat(fields.next()?)?;
                let mut hour_counts = [0u64; 24];
                let mut hours = fields.next()?.split(',');
                for slot in &mut hour_counts {
                    *slot = hours.next()?.parse().ok()?;
                }
                if hours.next().is_some() || fields.next().is_some() {
                    return None;
                }
                Some((
                    name,
                    Profile {
                        query_len,
                        path_depth,
                        hour_counts,
                        total,
                    },
                ))
            };
            match parse() {
                Some((name, profile)) => {
                    self.profiles.lock().insert(name, profile);
                    loaded += 1;
                }
                None => return Err(idx + 1),
            }
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10:00 on day 0, plus `i` minutes.
    fn daytime(i: u64) -> Timestamp {
        Timestamp::from_millis(10 * 3_600_000 + i * 60_000)
    }

    /// 03:00 on day 0 — outside the learned activity window.
    fn night() -> Timestamp {
        Timestamp::from_millis(3 * 3_600_000)
    }

    fn train(detector: &AnomalyDetector, user: &str, n: u64) {
        for i in 0..n {
            let url = format!("/docs/page{}.html?id={}", i % 7, i % 10);
            detector.learn(user, &RequestFeatures::from_url(&url, daytime(i)));
        }
    }

    #[test]
    fn cold_start_never_flags() {
        let d = AnomalyDetector::new();
        let weird = RequestFeatures::from_url(
            "/a/b/c/d/e/f/g/h?xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx",
            night(),
        );
        assert_eq!(d.score("nobody", &weird), 0.0);
        d.learn("alice", &RequestFeatures::from_url("/x", daytime(0)));
        assert!(!d.is_anomalous("alice", &weird));
    }

    #[test]
    fn normal_traffic_scores_low() {
        let d = AnomalyDetector::new();
        train(&d, "alice", 50);
        let typical = RequestFeatures::from_url("/docs/page3.html?id=4", daytime(30));
        assert!(d.score("alice", &typical) < 3.0);
        assert!(!d.is_anomalous("alice", &typical));
    }

    #[test]
    fn oversized_query_is_anomalous() {
        let d = AnomalyDetector::new();
        train(&d, "alice", 50);
        let huge = format!("/docs/page1.html?{}", "x".repeat(500));
        let features = RequestFeatures::from_url(&huge, daytime(100));
        assert!(
            d.is_anomalous("alice", &features),
            "score {}",
            d.score("alice", &features)
        );
    }

    #[test]
    fn unusual_hour_adds_penalty() {
        let d = AnomalyDetector::new().with_threshold(1.5);
        train(&d, "alice", 50);
        let typical_daytime = RequestFeatures::from_url("/docs/page3.html?id=4", daytime(30));
        let typical_night = RequestFeatures::from_url("/docs/page3.html?id=4", night());
        assert!(d.score("alice", &typical_night) > d.score("alice", &typical_daytime));
        assert!(d.is_anomalous("alice", &typical_night));
    }

    #[test]
    fn deep_paths_are_anomalous() {
        let d = AnomalyDetector::new();
        train(&d, "alice", 50);
        let deep = RequestFeatures::from_url("/a/b/c/d/e/f/g/h/i/j/k/l?id=1", daytime(100));
        assert!(d.is_anomalous("alice", &deep));
    }

    #[test]
    fn profiles_are_per_principal() {
        let d = AnomalyDetector::new();
        train(&d, "alice", 50);
        assert_eq!(d.observations("alice"), 50);
        assert_eq!(d.observations("bob"), 0);
        let huge = format!("/docs/x?{}", "q".repeat(500));
        let features = RequestFeatures::from_url(&huge, daytime(1));
        // Bob has no profile: not flagged. Alice: flagged.
        assert!(!d.is_anomalous("bob", &features));
        assert!(d.is_anomalous("alice", &features));
    }

    #[test]
    fn feature_extraction() {
        let f = RequestFeatures::from_url("/", Timestamp::from_millis(0));
        assert_eq!(f.path_depth, 0);
        assert_eq!(f.query_len, 0);
        let f = RequestFeatures::from_url("/a//b/?", Timestamp::from_millis(0));
        assert_eq!(f.path_depth, 2);
        assert_eq!(f.query_len, 0);
    }

    #[test]
    fn export_import_round_trip_preserves_scores() {
        let d = AnomalyDetector::new();
        train(&d, "alice", 50);
        train(&d, "bob", 30);
        let huge = format!("/docs/x?{}", "q".repeat(500));
        let weird = RequestFeatures::from_url(&huge, night());
        let typical = RequestFeatures::from_url("/docs/page3.html?id=4", daytime(30));
        let score_weird = d.score("alice", &weird);
        let score_typical = d.score("alice", &typical);

        let text = d.export_profiles();
        let restored = AnomalyDetector::new();
        assert_eq!(restored.import_profiles(&text), Ok(2));
        assert_eq!(restored.observations("alice"), 50);
        assert_eq!(restored.observations("bob"), 30);
        assert!((restored.score("alice", &weird) - score_weird).abs() < 1e-9);
        assert!((restored.score("alice", &typical) - score_typical).abs() < 1e-9);
    }

    #[test]
    fn import_rejects_malformed_lines_with_location() {
        let d = AnomalyDetector::new();
        assert_eq!(d.import_profiles(""), Ok(0));
        assert_eq!(d.import_profiles("garbage"), Err(1));
        let mut text = AnomalyDetector::new().export_profiles();
        text.push_str("alice|notanumber|1,2,3|1,2,3|0\n");
        assert_eq!(d.import_profiles(&text), Err(1));
    }

    #[test]
    fn import_replaces_existing_profiles() {
        let a = AnomalyDetector::new();
        train(&a, "alice", 50);
        let exported = a.export_profiles();
        let b = AnomalyDetector::new();
        train(&b, "alice", 5); // stale, smaller profile
        b.import_profiles(&exported).unwrap();
        assert_eq!(b.observations("alice"), 50);
    }
}
