//! Attack-signature database (§7.2).
//!
//! "New signatures can be specified using regular expressions and numeric
//! comparison." A signature pairs a glob pattern (or numeric length bound)
//! with threat metadata — attack class, severity, a confidence value and a
//! defensive recommendation (§3 item 5: reports "may include threat
//! characteristics, such as attack type and severity, confidence value and
//! defensive recommendations").

use crate::matcher::glob_match_ci;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classes of web-server attack the paper discusses (§1, §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackClass {
    /// Exploitation of vulnerable CGI scripts (phf, test-cgi, …).
    CgiExploit,
    /// Malformed URLs, e.g. NIMDA's `%`-encoded IIS traversal probes.
    MalformedUrl,
    /// Denial of service via pathological requests (slash floods, header
    /// floods).
    DenialOfService,
    /// Buffer-overflow attempts via oversized inputs (Code Red style).
    BufferOverflow,
    /// Path traversal / sensitive-file disclosure.
    Traversal,
    /// Password guessing against authentication.
    PasswordGuessing,
}

impl fmt::Display for AttackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackClass::CgiExploit => "cgi_exploit",
            AttackClass::MalformedUrl => "malformed_url",
            AttackClass::DenialOfService => "denial_of_service",
            AttackClass::BufferOverflow => "buffer_overflow",
            AttackClass::Traversal => "traversal",
            AttackClass::PasswordGuessing => "password_guessing",
        };
        f.write_str(s)
    }
}

/// How a signature inspects a request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Matcher {
    /// Case-insensitive glob over the request line (URI + query).
    UrlGlob(String),
    /// Total query/input length strictly greater than the bound
    /// (`pre_cond expr local >1000` in §7.2 detects Code-Red-style
    /// overflows).
    InputLongerThan(usize),
}

/// One attack signature with its threat metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackSignature {
    /// Stable identifier, e.g. `sig.phf`.
    pub id: String,
    /// Attack class this signature indicates.
    pub class: AttackClass,
    /// The matcher.
    pub matcher: Matcher,
    /// Severity 1 (low) – 10 (critical).
    pub severity: u8,
    /// Confidence 0.0–1.0 that a match is a true positive.
    pub confidence: f64,
    /// Defensive recommendation carried in reports (§3 item 5).
    pub recommendation: String,
}

impl AttackSignature {
    /// Does this signature match the given request line and input length?
    pub fn matches(&self, request_line: &str, input_len: usize) -> bool {
        match &self.matcher {
            Matcher::UrlGlob(glob) => glob_match_ci(glob, request_line),
            Matcher::InputLongerThan(bound) => input_len > *bound,
        }
    }
}

/// A match produced by [`SignatureDb::scan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureMatch {
    /// Identifier of the matching signature.
    pub id: String,
    /// Attack class.
    pub class: AttackClass,
    /// Severity of the matched signature.
    pub severity: u8,
    /// Confidence of the matched signature.
    pub confidence: f64,
    /// Defensive recommendation.
    pub recommendation: String,
}

/// An ordered collection of attack signatures.
///
/// # Examples
///
/// ```rust
/// use gaa_ids::SignatureDb;
///
/// let db = SignatureDb::with_defaults();
/// let hits = db.scan("GET /cgi-bin/phf?Qalias=x HTTP/1.0", 24);
/// assert!(hits.iter().any(|h| h.id == "sig.phf"));
/// assert!(db.scan("GET /index.html HTTP/1.0", 0).is_empty());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SignatureDb {
    signatures: Vec<AttackSignature>,
    /// Mutation counter: bumped on every [`SignatureDb::add`] / `remove` so
    /// compiled automata and cache stamps can key on it. Process-local: a
    /// freshly constructed database starts at 0 and counts its own
    /// mutations from there.
    version: u64,
}

// Equality compares contents only; `version` is a process-local mutation
// counter, so two databases holding the same signatures are equal even if
// they took different edit paths to get there.
impl PartialEq for SignatureDb {
    fn eq(&self, other: &Self) -> bool {
        self.signatures == other.signatures
    }
}

impl SignatureDb {
    /// An empty database.
    pub fn new() -> Self {
        SignatureDb::default()
    }

    /// The default database covering every signature the paper names:
    ///
    /// * `*phf*`, `*test-cgi*` — vulnerable CGI scripts (§7.2);
    /// * a long run of slashes — the Apache slowdown/log-filling DoS (§7.2);
    /// * `*%*` on the path — NIMDA-style malformed GET (§7.2);
    /// * input longer than 1000 chars — Code-Red-style buffer overflow
    ///   (§7.2);
    /// * `*../*` and `*/etc/passwd*` — traversal / sensitive-file probes
    ///   (§1's "critical file" discussion).
    pub fn with_defaults() -> Self {
        let mut db = SignatureDb::new();
        db.add(AttackSignature {
            id: "sig.phf".into(),
            class: AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*phf*".into()),
            severity: 8,
            confidence: 0.95,
            recommendation: "deny; blacklist source; notify admin".into(),
        });
        db.add(AttackSignature {
            id: "sig.test-cgi".into(),
            class: AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*test-cgi*".into()),
            severity: 7,
            confidence: 0.95,
            recommendation: "deny; blacklist source; notify admin".into(),
        });
        db.add(AttackSignature {
            id: "sig.slash-flood".into(),
            class: AttackClass::DenialOfService,
            matcher: Matcher::UrlGlob("*///////////////////*".into()),
            severity: 6,
            confidence: 0.9,
            recommendation: "deny; rate-limit source".into(),
        });
        db.add(AttackSignature {
            id: "sig.nimda-percent".into(),
            class: AttackClass::MalformedUrl,
            matcher: Matcher::UrlGlob("*%*".into()),
            severity: 5,
            confidence: 0.6,
            recommendation: "deny; corroborate with network IDS".into(),
        });
        db.add(AttackSignature {
            id: "sig.overflow-1000".into(),
            class: AttackClass::BufferOverflow,
            matcher: Matcher::InputLongerThan(1000),
            severity: 9,
            confidence: 0.85,
            recommendation: "deny; notify admin".into(),
        });
        db.add(AttackSignature {
            id: "sig.traversal".into(),
            class: AttackClass::Traversal,
            matcher: Matcher::UrlGlob("*../*".into()),
            severity: 7,
            confidence: 0.8,
            recommendation: "deny".into(),
        });
        db.add(AttackSignature {
            id: "sig.etc-passwd".into(),
            class: AttackClass::Traversal,
            matcher: Matcher::UrlGlob("*/etc/passwd*".into()),
            severity: 9,
            confidence: 0.9,
            recommendation: "deny; notify admin".into(),
        });
        db
    }

    /// Appends a signature (later signatures scan after earlier ones).
    /// Bumps [`SignatureDb::version`].
    pub fn add(&mut self, signature: AttackSignature) {
        self.signatures.push(signature);
        self.version += 1;
    }

    /// Removes a signature by id; returns whether one was removed. Bumps
    /// [`SignatureDb::version`] when it does.
    pub fn remove(&mut self, id: &str) -> bool {
        let before = self.signatures.len();
        self.signatures.retain(|s| s.id != id);
        let removed = self.signatures.len() != before;
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Monotonic mutation counter. Any `add`/successful `remove` bumps it, so
    /// a compiled combined automaton (or a decision-cache stamp) built
    /// against version N is provably stale the moment the set changes —
    /// before this existed, a runtime-added signature silently bypassed
    /// every caching layer keyed on the database.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True if the database holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// All signatures, in scan order.
    pub fn signatures(&self) -> &[AttackSignature] {
        &self.signatures
    }

    /// Scans a request line and input length against every signature,
    /// returning all matches in database order.
    pub fn scan(&self, request_line: &str, input_len: usize) -> Vec<SignatureMatch> {
        self.signatures
            .iter()
            .filter(|s| s.matches(request_line, input_len))
            .map(|s| SignatureMatch {
                id: s.id.clone(),
                class: s.class,
                severity: s.severity,
                confidence: s.confidence,
                recommendation: s.recommendation.clone(),
            })
            .collect()
    }

    /// The highest-severity match, if any. Useful when only one response
    /// action will be taken.
    pub fn worst_match(&self, request_line: &str, input_len: usize) -> Option<SignatureMatch> {
        self.scan(request_line, input_len)
            .into_iter()
            .max_by_key(|m| m.severity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_db_catches_paper_attacks() {
        let db = SignatureDb::with_defaults();

        let phf = db.scan(
            "GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0",
            40,
        );
        assert!(phf.iter().any(|m| m.id == "sig.phf"));

        let testcgi = db.scan("GET /cgi-bin/test-cgi?* HTTP/1.0", 10);
        assert!(testcgi.iter().any(|m| m.id == "sig.test-cgi"));

        let dos = db.scan("GET /a///////////////////////// HTTP/1.0", 0);
        assert!(dos.iter().any(|m| m.id == "sig.slash-flood"));

        let nimda = db.scan("GET /scripts/..%c0%af../winnt/system32/cmd.exe HTTP/1.0", 0);
        assert!(nimda.iter().any(|m| m.id == "sig.nimda-percent"));

        let overflow = db.scan("GET /index.html HTTP/1.0", 1001);
        assert!(overflow.iter().any(|m| m.id == "sig.overflow-1000"));
    }

    #[test]
    fn legit_requests_are_clean() {
        let db = SignatureDb::with_defaults();
        assert!(db.scan("GET /index.html HTTP/1.1", 0).is_empty());
        assert!(db
            .scan("GET /docs/manual.html?page=3 HTTP/1.1", 6)
            .is_empty());
        assert!(db.scan("POST /forms/contact HTTP/1.1", 500).is_empty());
    }

    #[test]
    fn overflow_boundary_is_strict() {
        let db = SignatureDb::with_defaults();
        assert!(db.scan("GET /x HTTP/1.0", 1000).is_empty());
        assert_eq!(db.scan("GET /x HTTP/1.0", 1001).len(), 1);
    }

    #[test]
    fn matching_is_case_insensitive() {
        let db = SignatureDb::with_defaults();
        let hits = db.scan("GET /CGI-BIN/PHF HTTP/1.0", 0);
        assert!(hits.iter().any(|m| m.id == "sig.phf"));
    }

    #[test]
    fn worst_match_picks_highest_severity() {
        let db = SignatureDb::with_defaults();
        // phf (8) + overlong (9) + percent (5): worst is overflow.
        let worst = db
            .worst_match("GET /cgi-bin/phf?x=%41 HTTP/1.0", 2000)
            .unwrap();
        assert_eq!(worst.id, "sig.overflow-1000");
    }

    #[test]
    fn add_and_remove() {
        let mut db = SignatureDb::new();
        assert!(db.is_empty());
        db.add(AttackSignature {
            id: "sig.custom".into(),
            class: AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*evil*".into()),
            severity: 5,
            confidence: 0.5,
            recommendation: "deny".into(),
        });
        assert_eq!(db.len(), 1);
        assert!(!db.scan("GET /evil HTTP/1.0", 0).is_empty());
        assert!(db.remove("sig.custom"));
        assert!(!db.remove("sig.custom"));
        assert!(db.is_empty());
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut db = SignatureDb::new();
        assert_eq!(db.version(), 0);
        db.add(AttackSignature {
            id: "sig.custom".into(),
            class: AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*evil*".into()),
            severity: 5,
            confidence: 0.5,
            recommendation: "deny".into(),
        });
        assert_eq!(db.version(), 1);
        assert!(db.remove("sig.custom"));
        assert_eq!(db.version(), 2);
        // Failed remove is not a mutation.
        assert!(!db.remove("sig.custom"));
        assert_eq!(db.version(), 2);
        // Scans never bump.
        let _ = db.scan("GET /evil HTTP/1.0", 0);
        assert_eq!(db.version(), 2);
        // Equality ignores the counter: same contents, different histories.
        let defaults_a = SignatureDb::with_defaults();
        let mut defaults_b = SignatureDb::with_defaults();
        defaults_b.add(AttackSignature {
            id: "sig.tmp".into(),
            class: AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*tmp*".into()),
            severity: 1,
            confidence: 0.1,
            recommendation: "deny".into(),
        });
        assert!(defaults_b.remove("sig.tmp"));
        assert_eq!(defaults_a, defaults_b);
        assert_ne!(defaults_a.version(), defaults_b.version());
    }

    #[test]
    fn scan_returns_all_matches_in_order() {
        let db = SignatureDb::with_defaults();
        let hits = db.scan("GET /cgi-bin/phf/../test-cgi HTTP/1.0", 0);
        let ids: Vec<&str> = hits.iter().map(|m| m.id.as_str()).collect();
        assert!(ids.contains(&"sig.phf"));
        assert!(ids.contains(&"sig.test-cgi"));
        assert!(ids.contains(&"sig.traversal"));
        // Database order preserved.
        let phf_pos = ids.iter().position(|&i| i == "sig.phf").unwrap();
        let cgi_pos = ids.iter().position(|&i| i == "sig.test-cgi").unwrap();
        assert!(phf_pos < cgi_pos);
    }
}
