//! # gaa-ids — intrusion detection substrate
//!
//! The paper's GAA-API does not do all detection alone: it *integrates* with
//! network- and host-based IDSs (§3). The current interaction in the paper is
//! "limited to determining the current system threat profile and adapting the
//! security policy"; closer interaction (structured reports in both
//! directions over subscription channels) is called out as the next task and
//! as future work (§9). This crate builds that substrate:
//!
//! * [`threat`] — the system threat level (low / medium / high) with
//!   escalation and decay, the value consumed by `pre_cond
//!   system_threat_level` policies (§7.1);
//! * [`bus`] — the subscription-based communication channel between the
//!   GAA-API and IDSs (§9 future work, implemented): the seven report kinds
//!   of §3 flow one way, IDS advisories (spoofing indications, adaptive
//!   threshold values) flow the other;
//! * [`signatures`] — the attack-signature database behind §7.2: CGI exploit
//!   names, NIMDA-style malformed URLs, slash-flood DoS, oversized inputs;
//! * [`network`] — a network-IDS simulator: connection-rate tracking, port
//!   scans, address-spoofing indications;
//! * [`host`] — a host-IDS simulator: baseline observation and adaptive
//!   threshold recommendation ("values may depend on many factors and can be
//!   determined by a host-based IDS and communicated to the GAA-API");
//! * [`anomaly`] — profile building and anomaly detection (§9 future work,
//!   implemented);
//! * [`correlate`] — correlation of application-level reports with
//!   network-level corroboration to cut the false-positive rate before
//!   proactive countermeasures fire (§3).

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod anomaly;
pub mod bus;
pub mod correlate;
pub mod host;
pub mod matcher;
pub mod network;
pub mod replica;
pub mod signatures;
pub mod threat;

pub use bus::{EventBus, GaaReport, IdsAdvisory, ReportKind, Subscription};
pub use correlate::{Correlator, CorroboratedAlert};
pub use replica::{BlacklistEntry, ReplicatedBlacklist};
pub use signatures::{AttackClass, AttackSignature, SignatureDb, SignatureMatch};
pub use threat::{ThreatLevel, ThreatMonitor};
