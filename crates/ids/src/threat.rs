//! System threat level: the value behind `pre_cond system_threat_level`.
//!
//! §7.1: "An IDS supplies a system threat level. For example, low threat
//! level means normal system operational state, medium threat level indicates
//! suspicious behavior and high threat level means that the system is under
//! attack."
//!
//! [`ThreatMonitor`] holds the current level, escalates it when suspicion is
//! reported, and decays it back towards `Low` after a quiet period — so a
//! lockdown policy (§7.1) relaxes automatically once an attack subsides.

use gaa_audit::time::{Clock, Timestamp};
// The monitor's one lock comes from the gaa-race shim so the model checker
// can schedule and log it (zero-cost passthrough in production builds).
use gaa_race::sync::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

/// The system-wide threat level, ordered `Low < Medium < High`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum ThreatLevel {
    /// Normal system operational state.
    #[default]
    Low,
    /// Suspicious behaviour observed.
    Medium,
    /// The system is under attack.
    High,
}

impl ThreatLevel {
    /// One step up, saturating at `High`.
    pub fn escalate(self) -> ThreatLevel {
        match self {
            ThreatLevel::Low => ThreatLevel::Medium,
            _ => ThreatLevel::High,
        }
    }

    /// One step down, saturating at `Low`.
    pub fn relax(self) -> ThreatLevel {
        match self {
            ThreatLevel::High => ThreatLevel::Medium,
            _ => ThreatLevel::Low,
        }
    }
}

impl fmt::Display for ThreatLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreatLevel::Low => "low",
            ThreatLevel::Medium => "medium",
            ThreatLevel::High => "high",
        };
        f.write_str(s)
    }
}

impl FromStr for ThreatLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "low" => Ok(ThreatLevel::Low),
            "medium" => Ok(ThreatLevel::Medium),
            "high" => Ok(ThreatLevel::High),
            other => Err(format!("unknown threat level `{other}`")),
        }
    }
}

#[derive(Debug)]
struct MonitorState {
    level: ThreatLevel,
    last_change: Timestamp,
    /// Consecutive suspicion reports at the current level (escalation needs
    /// `reports_to_escalate` of them, so one stray event does not lock the
    /// system down — the paper's own caution about attacker-staged DoS).
    pending_reports: u32,
    /// Bumped on every actual level transition; decision caches key on it
    /// so a transition invalidates every cached outcome instantly.
    ///
    /// Ordering audit: a plain `u64`, not an atomic, on purpose — every
    /// access happens under `state`'s mutex, and the mutex release/acquire
    /// pair is what makes a bump visible to the next `epoch()` reader
    /// *together with* the level change it describes. An atomic outside the
    /// lock would allow an epoch to be observed without its transition.
    epoch: u64,
    /// External threat floor (the fleet view pushed in by `gaa-swarm`).
    /// The *effective* level reported by [`ThreatMonitor::current`] is
    /// `max(level, floor)`: a remote view can hold or raise restrictions
    /// but never relax the local assessment, and local decay never drops
    /// the effective level below a still-standing fleet floor — the
    /// fail-safe direction for partition staleness.
    floor: ThreatLevel,
}

impl MonitorState {
    /// The level policy evaluation sees: local assessment clamped up by
    /// the external floor.
    fn effective(&self) -> ThreatLevel {
        self.level.max(self.floor)
    }
}

/// Shared, clock-driven threat-level provider.
///
/// * `report_suspicion()` counts suspicious events; after
///   `reports_to_escalate` events the level steps up and the counter resets.
/// * `current()` lazily applies decay: after `decay_after` without any change
///   or suspicion, the level steps down one notch (repeatedly, if several
///   quiet periods have passed).
/// * `set_level()` lets an operator or an external IDS force a level.
///
/// Cloning shares the monitor.
///
/// # Examples
///
/// ```rust
/// use gaa_audit::VirtualClock;
/// use gaa_ids::{ThreatLevel, ThreatMonitor};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let clock = VirtualClock::new();
/// let monitor = ThreatMonitor::new(Arc::new(clock.clone()))
///     .with_escalation_threshold(2)
///     .with_decay_after(Duration::from_secs(60));
///
/// monitor.report_suspicion();
/// assert_eq!(monitor.current(), ThreatLevel::Low); // one report is not enough
/// monitor.report_suspicion();
/// assert_eq!(monitor.current(), ThreatLevel::Medium);
///
/// clock.advance(Duration::from_secs(61));
/// assert_eq!(monitor.current(), ThreatLevel::Low); // decayed back
/// ```
#[derive(Debug, Clone)]
pub struct ThreatMonitor {
    state: Arc<Mutex<MonitorState>>,
    clock: Arc<dyn Clock>,
    reports_to_escalate: u32,
    decay_after: Duration,
}

impl ThreatMonitor {
    /// Creates a monitor at `Low` with a 3-report escalation threshold and
    /// 5-minute decay.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        let now = clock.now();
        ThreatMonitor {
            state: Arc::new(Mutex::named(
                "threat.state",
                MonitorState {
                    level: ThreatLevel::Low,
                    last_change: now,
                    pending_reports: 0,
                    epoch: 0,
                    floor: ThreatLevel::Low,
                },
            )),
            clock,
            reports_to_escalate: 3,
            decay_after: Duration::from_secs(300),
        }
    }

    /// Sets how many suspicion reports trigger one escalation step.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_escalation_threshold(mut self, n: u32) -> Self {
        assert!(n > 0, "escalation threshold must be non-zero");
        self.reports_to_escalate = n;
        self
    }

    /// Sets the quiet period after which the level decays one step.
    pub fn with_decay_after(mut self, d: Duration) -> Self {
        self.decay_after = d;
        self
    }

    /// The current *effective* level, after applying any pending decay:
    /// the local assessment clamped up by any external floor
    /// ([`set_external_floor`](ThreatMonitor::set_external_floor)).
    pub fn current(&self) -> ThreatLevel {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        state.effective()
    }

    /// The local assessment alone, ignoring any external floor — what this
    /// node would believe if it were the whole fleet.
    pub fn local_level(&self) -> ThreatLevel {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        state.level
    }

    /// A consistent `(effective level, epoch)` pair read under one lock
    /// acquisition — replication wants the level and the stamp it travels
    /// under to describe the same instant.
    pub fn snapshot(&self) -> (ThreatLevel, u64) {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        (state.effective(), state.epoch)
    }

    /// Sets the external threat floor (the fleet view maintained by
    /// `gaa-swarm`). The effective level becomes `max(local, floor)` — a
    /// remote view can hold or raise restrictions but never relax the
    /// local assessment. Bumps the epoch (invalidating decision caches)
    /// whenever the effective level actually changes; returns whether it
    /// did.
    pub fn set_external_floor(&self, floor: ThreatLevel) -> bool {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        let before = state.effective();
        state.floor = floor;
        let changed = state.effective() != before;
        if changed {
            state.epoch += 1;
        }
        changed
    }

    /// The current external floor.
    pub fn external_floor(&self) -> ThreatLevel {
        self.state.lock().floor
    }

    /// Forces the level (operator action or external IDS feed).
    pub fn set_level(&self, level: ThreatLevel) {
        let mut state = self.state.lock();
        if state.level != level {
            state.epoch += 1;
        }
        state.level = level;
        state.last_change = self.clock.now();
        state.pending_reports = 0;
    }

    /// A counter that advances on every actual level transition (including
    /// lazy decay steps). Two equal epochs mean no transition happened in
    /// between — the invalidation stamp for authorization-decision caches.
    pub fn epoch(&self) -> u64 {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        state.epoch
    }

    /// Registers one suspicious event; returns the level after any resulting
    /// escalation.
    pub fn report_suspicion(&self) -> ThreatLevel {
        let mut state = self.state.lock();
        self.apply_decay(&mut state);
        state.pending_reports += 1;
        if state.pending_reports >= self.reports_to_escalate {
            state.pending_reports = 0;
            let next = state.level.escalate();
            if next != state.level {
                state.level = next;
                state.epoch += 1;
                state.last_change = self.clock.now();
            } else {
                // Already at High: refresh the change stamp so decay restarts.
                state.last_change = self.clock.now();
            }
        }
        state.effective()
    }

    /// Registers a *confirmed attack*: jumps straight to `High`.
    pub fn report_attack(&self) {
        self.set_level(ThreatLevel::High);
    }

    fn apply_decay(&self, state: &mut MonitorState) {
        if self.decay_after.is_zero() {
            return;
        }
        let now = self.clock.now();
        while state.level != ThreatLevel::Low && now.since(state.last_change) > self.decay_after {
            state.level = state.level.relax();
            state.epoch += 1;
            state.last_change = state.last_change.plus(self.decay_after);
            state.pending_reports = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::VirtualClock;

    fn monitor(clock: &VirtualClock) -> ThreatMonitor {
        ThreatMonitor::new(Arc::new(clock.clone()))
            .with_escalation_threshold(2)
            .with_decay_after(Duration::from_secs(60))
    }

    #[test]
    fn ordering_matches_paper_semantics() {
        assert!(ThreatLevel::Low < ThreatLevel::Medium);
        assert!(ThreatLevel::Medium < ThreatLevel::High);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for level in [ThreatLevel::Low, ThreatLevel::Medium, ThreatLevel::High] {
            assert_eq!(level.to_string().parse::<ThreatLevel>().unwrap(), level);
        }
        assert!("severe".parse::<ThreatLevel>().is_err());
    }

    #[test]
    fn escalation_needs_threshold_reports() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        assert_eq!(m.report_suspicion(), ThreatLevel::Low);
        assert_eq!(m.report_suspicion(), ThreatLevel::Medium);
        assert_eq!(m.report_suspicion(), ThreatLevel::Medium);
        assert_eq!(m.report_suspicion(), ThreatLevel::High);
    }

    #[test]
    fn attack_jumps_to_high() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.report_attack();
        assert_eq!(m.current(), ThreatLevel::High);
    }

    #[test]
    fn decay_steps_down_per_quiet_period() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.set_level(ThreatLevel::High);
        clock.advance(Duration::from_secs(61));
        assert_eq!(m.current(), ThreatLevel::Medium);
        clock.advance(Duration::from_secs(61));
        assert_eq!(m.current(), ThreatLevel::Low);
    }

    #[test]
    fn multiple_quiet_periods_decay_in_one_read() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.set_level(ThreatLevel::High);
        clock.advance(Duration::from_secs(200));
        assert_eq!(m.current(), ThreatLevel::Low);
    }

    #[test]
    fn suspicion_resets_decay_window() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.set_level(ThreatLevel::High);
        clock.advance(Duration::from_secs(59));
        assert_eq!(m.current(), ThreatLevel::High);
    }

    #[test]
    fn zero_decay_disables_relaxation() {
        let clock = VirtualClock::new();
        let m = ThreatMonitor::new(Arc::new(clock.clone())).with_decay_after(Duration::ZERO);
        m.set_level(ThreatLevel::High);
        clock.advance(Duration::from_secs(100_000));
        assert_eq!(m.current(), ThreatLevel::High);
    }

    #[test]
    fn clones_share_state() {
        let clock = VirtualClock::new();
        let a = monitor(&clock);
        let b = a.clone();
        a.set_level(ThreatLevel::Medium);
        assert_eq!(b.current(), ThreatLevel::Medium);
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_escalation_threshold_panics() {
        let clock = VirtualClock::new();
        let _ = ThreatMonitor::new(Arc::new(clock)).with_escalation_threshold(0);
    }

    #[test]
    fn epoch_advances_only_on_actual_transitions() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        let start = m.epoch();
        m.set_level(ThreatLevel::Low); // no-op transition
        assert_eq!(m.epoch(), start);
        m.set_level(ThreatLevel::High);
        assert_eq!(m.epoch(), start + 1);
        // Two quiet periods: High → Medium → Low, two lazy decay steps.
        clock.advance(Duration::from_secs(200));
        assert_eq!(m.epoch(), start + 3);
        assert_eq!(m.current(), ThreatLevel::Low);
        // Escalation via suspicion reports also counts.
        m.report_suspicion();
        m.report_suspicion();
        assert_eq!(m.current(), ThreatLevel::Medium);
        assert_eq!(m.epoch(), start + 4);
    }

    #[test]
    fn escalate_relax_are_bounded() {
        assert_eq!(ThreatLevel::High.escalate(), ThreatLevel::High);
        assert_eq!(ThreatLevel::Low.relax(), ThreatLevel::Low);
    }

    #[test]
    fn external_floor_raises_but_never_relaxes() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        // Raising the floor raises the effective level and bumps the epoch.
        let e0 = m.epoch();
        assert!(m.set_external_floor(ThreatLevel::High));
        assert_eq!(m.current(), ThreatLevel::High);
        assert_eq!(m.local_level(), ThreatLevel::Low);
        assert_eq!(m.epoch(), e0 + 1);
        // Setting the same floor again is a no-op.
        assert!(!m.set_external_floor(ThreatLevel::High));
        assert_eq!(m.epoch(), e0 + 1);
        // A floor below the local level cannot relax the effective level.
        m.set_level(ThreatLevel::Medium);
        assert!(m.set_external_floor(ThreatLevel::Low)); // High → Medium eff.
        assert_eq!(m.current(), ThreatLevel::Medium);
        assert_eq!(m.local_level(), ThreatLevel::Medium);
    }

    #[test]
    fn local_decay_cannot_drop_below_the_floor() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.set_level(ThreatLevel::High);
        m.set_external_floor(ThreatLevel::High);
        clock.advance(Duration::from_secs(200)); // two quiet periods
        assert_eq!(m.local_level(), ThreatLevel::Low, "local decays freely");
        assert_eq!(m.current(), ThreatLevel::High, "floor holds restrictions");
        // Only a confirmed (fresh) fleet relaxation lowers it.
        m.set_external_floor(ThreatLevel::Low);
        assert_eq!(m.current(), ThreatLevel::Low);
    }

    #[test]
    fn snapshot_is_a_consistent_pair() {
        let clock = VirtualClock::new();
        let m = monitor(&clock);
        m.set_level(ThreatLevel::High);
        let (level, epoch) = m.snapshot();
        assert_eq!(level, ThreatLevel::High);
        assert_eq!(epoch, m.epoch());
    }
}
