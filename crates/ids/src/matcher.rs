//! Glob-style pattern matching for attack signatures.
//!
//! Signature patterns in the paper use shell-style globs: `*phf*`,
//! `*test-cgi*`, `*%*`, `*///////////////////*`. This module implements that
//! dialect: `*` matches any (possibly empty) substring, `?` matches exactly
//! one byte, everything else matches literally. Matching is linear-time via
//! the classic two-pointer backtracking algorithm (no exponential blowup on
//! adversarial patterns — important, since the patterns guard a DoS path).
//!
//! Two extras support the combined single-pass matcher and the `gaa-lint
//! patterns` static tier:
//!
//! * [`AhoCorasick`] — a case-folded multi-substring automaton. Every glob of
//!   the form `*literal*` (which is every signature the paper names) reduces
//!   to "does the request line contain `literal`", so the whole set collapses
//!   into one automaton walked once per request.
//! * [`glob_match_ci_steps`] — an instrumented variant counting matcher work,
//!   used by the GAA705 superlinear-cost lint to *confirm* a cost claim
//!   against the real algorithm instead of asserting it from pattern shape.
//!
//! The richer regular-expression dialect for `pre_cond regex` lives in
//! `gaa-conditions::regex`; this module is the minimal, allocation-free core
//! used by the signature database.

/// Shared two-pointer scan. `CI` selects ASCII case folding; folding happens
/// per byte inside the loop so the case-insensitive path allocates nothing.
/// Returns the verdict plus the number of loop iterations performed — the
/// step count is the honest cost measure for GAA705 (two-pointer globs are
/// O(n·m) worst case, not exponential, but m star-segments still multiply).
#[inline]
fn glob_match_core<const CI: bool>(pattern: &str, text: &str) -> (bool, u64) {
    #[inline(always)]
    fn fold<const CI: bool>(b: u8) -> u8 {
        if CI {
            b.to_ascii_lowercase()
        } else {
            b
        }
    }

    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Backtracking anchors: position of the last `*` in the pattern and the
    // text position we will retry from when a literal run fails.
    let (mut star_pi, mut star_ti) = (usize::MAX, 0usize);
    let mut steps: u64 = 0;

    while ti < t.len() {
        steps += 1;
        // `*` is checked before the literal branch: a `*` in the pattern is
        // always the wildcard, even when the text byte is itself `*`. (The
        // seed version tested the literal branch first, so `*%*` failed to
        // match `%*p` — the pattern's trailing `*` was consumed as a
        // literal match of the text's `*` and the wildcard was lost.)
        if pi < p.len() && p[pi] == b'*' {
            star_pi = pi;
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == b'?' || fold::<CI>(p[pi]) == fold::<CI>(t[ti])) {
            pi += 1;
            ti += 1;
        } else if star_pi != usize::MAX {
            // Let the last `*` absorb one more byte and retry.
            pi = star_pi + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return (false, steps);
        }
    }
    // Only trailing `*`s may remain.
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
        steps += 1;
    }
    (pi == p.len(), steps)
}

/// Does `pattern` (glob dialect: `*`, `?`, literals) match all of `text`?
///
/// # Examples
///
/// ```rust
/// use gaa_ids::matcher::glob_match;
///
/// assert!(glob_match("*phf*", "/cgi-bin/phf?Qalias=x"));
/// assert!(glob_match("*test-cgi*", "GET /cgi-bin/test-cgi HTTP/1.0"));
/// assert!(!glob_match("*phf*", "/index.html"));
/// assert!(glob_match("a?c", "abc"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    glob_match_core::<false>(pattern, text).0
}

/// Case-insensitive variant of [`glob_match`] (ASCII only — URLs and header
/// names are ASCII-folded by attackers, e.g. `PHF` vs `phf`). Folds bytes
/// inline during the scan; performs no allocation.
pub fn glob_match_ci(pattern: &str, text: &str) -> bool {
    glob_match_core::<true>(pattern, text).0
}

/// [`glob_match_ci`] plus the number of matcher steps taken. GAA705 replays
/// its superlinear-cost claims through this so a reported blowup is the real
/// algorithm's measured work, not a guess from pattern shape.
pub fn glob_match_ci_steps(pattern: &str, text: &str) -> (bool, u64) {
    glob_match_core::<true>(pattern, text)
}

/// Case-folded Aho-Corasick multi-substring automaton.
///
/// Built once from `(pattern_id, literal)` needles; [`AhoCorasick::scan`]
/// walks the text exactly once and invokes the callback for every needle
/// that occurs as a (ASCII-case-insensitive) substring. Needles share a
/// dense byte-transition table, so scan cost is O(text + matches) regardless
/// of how many signatures are loaded.
///
/// # Examples
///
/// ```rust
/// use gaa_ids::matcher::AhoCorasick;
///
/// let ac = AhoCorasick::new(&[(0, "phf".into()), (1, "test-cgi".into())]);
/// let mut hits = Vec::new();
/// ac.scan("GET /CGI-BIN/PHF?x HTTP/1.0", &mut |id| hits.push(id));
/// assert_eq!(hits, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition table: `delta[state][byte] -> state`.
    delta: Vec<[u32; 256]>,
    /// Pattern ids accepted on reaching each state (failure outputs merged).
    out: Vec<Vec<usize>>,
}

impl AhoCorasick {
    /// Builds the automaton over `(pattern_id, needle)` pairs. Needles are
    /// ASCII-case-folded at build time; empty needles match every text.
    pub fn new(needles: &[(usize, String)]) -> AhoCorasick {
        const NONE: u32 = u32::MAX;
        // Trie construction over folded needle bytes.
        let mut goto_: Vec<[u32; 256]> = vec![[NONE; 256]];
        let mut out: Vec<Vec<usize>> = vec![Vec::new()];
        for (id, needle) in needles {
            let mut state = 0usize;
            for &b in needle.as_bytes() {
                let b = b.to_ascii_lowercase() as usize;
                if goto_[state][b] == NONE {
                    goto_[state][b] = goto_.len() as u32;
                    goto_.push([NONE; 256]);
                    out.push(Vec::new());
                }
                state = goto_[state][b] as usize;
            }
            out[state].push(*id);
        }
        // BFS failure links; merge failure outputs so a single state visit
        // reports every needle ending there.
        let mut fail = vec![0u32; goto_.len()];
        let mut queue = std::collections::VecDeque::new();
        for s in goto_[0].iter().copied().filter(|&s| s != NONE) {
            fail[s as usize] = 0;
            queue.push_back(s as usize);
        }
        while let Some(s) = queue.pop_front() {
            let row = goto_[s];
            for (b, child) in row.iter().copied().enumerate() {
                if child == NONE {
                    continue;
                }
                let mut f = fail[s] as usize;
                while f != 0 && goto_[f][b] == NONE {
                    f = fail[f] as usize;
                }
                let fnext = if goto_[f][b] != NONE && goto_[f][b] != child {
                    goto_[f][b]
                } else {
                    0
                };
                fail[child as usize] = fnext;
                let merged: Vec<usize> = out[fnext as usize].clone();
                out[child as usize].extend(merged);
                queue.push_back(child as usize);
            }
        }
        // Flatten goto+failure into a total delta function.
        let mut delta = goto_.clone();
        for d in delta[0].iter_mut() {
            if *d == NONE {
                *d = 0;
            }
        }
        let mut bfs = std::collections::VecDeque::new();
        for s in goto_[0].iter().copied().filter(|&s| s != NONE) {
            bfs.push_back(s as usize);
        }
        let mut seen = vec![false; goto_.len()];
        seen[0] = true;
        while let Some(s) = bfs.pop_front() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            let frow = delta[fail[s] as usize];
            let row = &mut delta[s];
            let mut children = Vec::new();
            for (d, f) in row.iter_mut().zip(frow.iter().copied()) {
                if *d == NONE {
                    *d = f;
                } else {
                    children.push(*d as usize);
                }
            }
            bfs.extend(children);
        }
        AhoCorasick { delta, out }
    }

    /// Walks `text` once (case-folded), calling `mark(pattern_id)` for every
    /// needle occurrence. Ids may repeat if a needle occurs more than once.
    pub fn scan(&self, text: &str, mark: &mut dyn FnMut(usize)) {
        let mut state = 0usize;
        for &id in &self.out[0] {
            mark(id); // empty needles match before any byte is read
        }
        for &b in text.as_bytes() {
            state = self.delta[state][b.to_ascii_lowercase() as usize] as usize;
            for &id in &self.out[state] {
                mark(id);
            }
        }
    }

    /// Number of automaton states (diagnostics / lint budgets).
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matching() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abcd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("abc", "xbc"));
    }

    #[test]
    fn empty_cases() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
        assert!(glob_match("*", ""));
        assert!(glob_match("**", ""));
        assert!(!glob_match("?", ""));
    }

    #[test]
    fn star_absorbs_any_substring() {
        assert!(glob_match("*phf*", "phf"));
        assert!(glob_match("*phf*", "/cgi-bin/phf"));
        assert!(glob_match("*phf*", "phf?query"));
        assert!(glob_match("*phf*", "xxphfyy"));
        assert!(!glob_match("*phf*", "phx"));
    }

    #[test]
    fn paper_signatures() {
        // §7.2 signatures.
        assert!(glob_match("*test-cgi*", "/cgi-bin/test-cgi"));
        assert!(glob_match("*%*", "/scripts/..%c0%af../winnt"));
        assert!(!glob_match("*%*", "/index.html"));
        let dos = "*///////////////////*";
        assert!(glob_match(dos, "/a///////////////////////b"));
        assert!(!glob_match(dos, "/a////b"));
    }

    #[test]
    fn question_mark_matches_single_byte() {
        assert!(glob_match("a?c", "abc"));
        assert!(glob_match("a?c", "a.c"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("a?c", "abbc"));
    }

    #[test]
    fn mixed_star_and_literals() {
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(glob_match("a*b*c", "abc"));
        assert!(!glob_match("a*b*c", "acb"));
        assert!(glob_match("*a*a*a*", "aaa"));
        assert!(!glob_match("*a*a*a*", "aa"));
    }

    #[test]
    fn adversarial_star_runs_terminate_quickly() {
        // Degenerate pattern/text pair that kills naive exponential matchers.
        let pattern = "a*a*a*a*a*a*a*a*a*b";
        let text = "a".repeat(200);
        let start = std::time::Instant::now();
        assert!(!glob_match(pattern, &text));
        assert!(start.elapsed() < std::time::Duration::from_millis(250));
    }

    #[test]
    fn case_insensitive_variant() {
        assert!(glob_match_ci("*PHF*", "/cgi-bin/phf"));
        assert!(glob_match_ci("*phf*", "/CGI-BIN/PHF"));
        assert!(!glob_match("*PHF*", "/cgi-bin/phf"));
    }

    #[test]
    fn pattern_star_stays_a_wildcard_against_literal_star_bytes() {
        // Regression: the pattern's `*` must not be consumed as a literal
        // match of a `*` byte in the text.
        assert!(glob_match("*%*", "%*p"));
        assert!(glob_match("*%*", "ä%*p*ab"));
        assert!(glob_match("a*b", "a*b"));
        assert!(glob_match("a*b", "a**b"));
        assert!(glob_match("*x*", "*x"));
        assert!(!glob_match("*x*", "***"));
    }

    #[test]
    fn star_at_edges() {
        assert!(glob_match("*suffix", "the-suffix"));
        assert!(glob_match("prefix*", "prefix-and-more"));
        assert!(!glob_match("*suffix", "suffix-not"));
        assert!(!glob_match("prefix*", "not-prefix"));
    }

    #[test]
    fn step_counter_agrees_with_plain_matcher() {
        let cases = [
            ("*phf*", "/cgi-bin/phf"),
            ("a*b*c", "acb"),
            ("", ""),
            ("*%*", "/index.html"),
            ("a?c", "aXc"),
        ];
        for (p, t) in cases {
            let (ok, steps) = glob_match_ci_steps(p, t);
            assert_eq!(ok, glob_match_ci(p, t), "pattern={p} text={t}");
            assert!(steps <= ((p.len() as u64) + 1) * ((t.len() as u64) + 1) + 1);
        }
    }

    #[test]
    fn step_counter_shows_quadratic_backtracking() {
        // A long literal segment after a `*` is rescanned from every retry
        // position — O(n·segment) work on a non-matching tail. (Many short
        // segments stay near-linear: only the *last* star backtracks.)
        let pattern = format!("*{}b*", "a".repeat(32));
        let text = "a".repeat(512);
        let (ok, steps) = glob_match_ci_steps(&pattern, &text);
        assert!(!ok);
        // Far more work than one pass over the text.
        assert!(steps > 8 * text.len() as u64, "steps={steps}");
    }

    #[test]
    fn aho_corasick_finds_all_needles() {
        let ac = AhoCorasick::new(&[
            (0, "phf".into()),
            (1, "test-cgi".into()),
            (2, "../".into()),
            (3, "/etc/passwd".into()),
        ]);
        let mut hits = std::collections::BTreeSet::new();
        ac.scan("GET /cgi-bin/phf/../test-cgi HTTP/1.0", &mut |id| {
            hits.insert(id);
        });
        assert_eq!(hits.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn aho_corasick_is_case_insensitive() {
        let ac = AhoCorasick::new(&[(7, "phf".into())]);
        let mut hits = Vec::new();
        ac.scan("/CGI-BIN/PHF", &mut |id| hits.push(id));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn aho_corasick_overlapping_and_nested_needles() {
        // "he" ends inside "she"; "hers" extends past it — the classic
        // failure-link exercise.
        let ac = AhoCorasick::new(&[
            (0, "he".into()),
            (1, "she".into()),
            (2, "his".into()),
            (3, "hers".into()),
        ]);
        let mut hits = Vec::new();
        ac.scan("ushers", &mut |id| hits.push(id));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn aho_corasick_empty_needle_matches_everything() {
        let ac = AhoCorasick::new(&[(0, String::new()), (1, "x".into())]);
        let mut hits = Vec::new();
        ac.scan("", &mut |id| hits.push(id));
        assert_eq!(hits, vec![0]);
        let mut hits = std::collections::BTreeSet::new();
        ac.scan("xyz", &mut |id| {
            hits.insert(id);
        });
        assert_eq!(hits.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn aho_corasick_agrees_with_glob_on_signature_corpus() {
        let needles = ["phf", "test-cgi", "%", "../", "/etc/passwd"];
        let ac = AhoCorasick::new(
            &needles
                .iter()
                .enumerate()
                .map(|(i, n)| (i, n.to_string()))
                .collect::<Vec<_>>(),
        );
        let corpus = [
            "GET /index.html HTTP/1.1",
            "GET /cgi-bin/phf?Qalias=x HTTP/1.0",
            "GET /scripts/..%c0%af../winnt HTTP/1.0",
            "GET /../../etc/passwd HTTP/1.0",
            "",
            "GET /TEST-CGI HTTP/1.0",
        ];
        for text in corpus {
            let mut got = vec![false; needles.len()];
            ac.scan(text, &mut |id| got[id] = true);
            for (i, n) in needles.iter().enumerate() {
                let want = glob_match_ci(&format!("*{n}*"), text);
                assert_eq!(got[i], want, "needle={n} text={text}");
            }
        }
    }
}
