//! Glob-style pattern matching for attack signatures.
//!
//! Signature patterns in the paper use shell-style globs: `*phf*`,
//! `*test-cgi*`, `*%*`, `*///////////////////*`. This module implements that
//! dialect: `*` matches any (possibly empty) substring, `?` matches exactly
//! one byte, everything else matches literally. Matching is linear-time via
//! the classic two-pointer backtracking algorithm (no exponential blowup on
//! adversarial patterns — important, since the patterns guard a DoS path).
//!
//! The richer regular-expression dialect for `pre_cond regex` lives in
//! `gaa-conditions::regex`; this module is the minimal, allocation-free core
//! used by the signature database.

/// Does `pattern` (glob dialect: `*`, `?`, literals) match all of `text`?
///
/// # Examples
///
/// ```rust
/// use gaa_ids::matcher::glob_match;
///
/// assert!(glob_match("*phf*", "/cgi-bin/phf?Qalias=x"));
/// assert!(glob_match("*test-cgi*", "GET /cgi-bin/test-cgi HTTP/1.0"));
/// assert!(!glob_match("*phf*", "/index.html"));
/// assert!(glob_match("a?c", "abc"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Backtracking anchors: position of the last `*` in the pattern and the
    // text position we will retry from when a literal run fails.
    let (mut star_pi, mut star_ti) = (usize::MAX, 0usize);

    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star_pi = pi;
            star_ti = ti;
            pi += 1;
        } else if star_pi != usize::MAX {
            // Let the last `*` absorb one more byte and retry.
            pi = star_pi + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    // Only trailing `*`s may remain.
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// Case-insensitive variant of [`glob_match`] (ASCII only — URLs and header
/// names are ASCII-folded by attackers, e.g. `PHF` vs `phf`).
pub fn glob_match_ci(pattern: &str, text: &str) -> bool {
    glob_match(&pattern.to_ascii_lowercase(), &text.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_matching() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abcd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("abc", "xbc"));
    }

    #[test]
    fn empty_cases() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "a"));
        assert!(glob_match("*", ""));
        assert!(glob_match("**", ""));
        assert!(!glob_match("?", ""));
    }

    #[test]
    fn star_absorbs_any_substring() {
        assert!(glob_match("*phf*", "phf"));
        assert!(glob_match("*phf*", "/cgi-bin/phf"));
        assert!(glob_match("*phf*", "phf?query"));
        assert!(glob_match("*phf*", "xxphfyy"));
        assert!(!glob_match("*phf*", "phx"));
    }

    #[test]
    fn paper_signatures() {
        // §7.2 signatures.
        assert!(glob_match("*test-cgi*", "/cgi-bin/test-cgi"));
        assert!(glob_match("*%*", "/scripts/..%c0%af../winnt"));
        assert!(!glob_match("*%*", "/index.html"));
        let dos = "*///////////////////*";
        assert!(glob_match(dos, "/a///////////////////////b"));
        assert!(!glob_match(dos, "/a////b"));
    }

    #[test]
    fn question_mark_matches_single_byte() {
        assert!(glob_match("a?c", "abc"));
        assert!(glob_match("a?c", "a.c"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("a?c", "abbc"));
    }

    #[test]
    fn mixed_star_and_literals() {
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(glob_match("a*b*c", "abc"));
        assert!(!glob_match("a*b*c", "acb"));
        assert!(glob_match("*a*a*a*", "aaa"));
        assert!(!glob_match("*a*a*a*", "aa"));
    }

    #[test]
    fn adversarial_star_runs_terminate_quickly() {
        // Degenerate pattern/text pair that kills naive exponential matchers.
        let pattern = "a*a*a*a*a*a*a*a*a*b";
        let text = "a".repeat(200);
        let start = std::time::Instant::now();
        assert!(!glob_match(pattern, &text));
        assert!(start.elapsed() < std::time::Duration::from_millis(250));
    }

    #[test]
    fn case_insensitive_variant() {
        assert!(glob_match_ci("*PHF*", "/cgi-bin/phf"));
        assert!(glob_match_ci("*phf*", "/CGI-BIN/PHF"));
        assert!(!glob_match("*PHF*", "/cgi-bin/phf"));
    }

    #[test]
    fn star_at_edges() {
        assert!(glob_match("*suffix", "the-suffix"));
        assert!(glob_match("prefix*", "prefix-and-more"));
        assert!(!glob_match("*suffix", "suffix-not"));
        assert!(!glob_match("prefix*", "not-prefix"));
    }
}
