//! Host-IDS simulator: baseline observation and adaptive thresholds.
//!
//! §2: "A condition may either explicitly list the value of a constraint or
//! specify where the value can be obtained at run time. The latter allows for
//! adaptive constraint specification, since allowable times, locations and
//! thresholds can change in the event of possible security attacks. The value
//! of condition can be supplied by other services, e.g., an IDS."
//!
//! [`HostIds`] watches a stream of numeric observations per parameter (login
//! failures per minute, CPU per request, …), maintains a running baseline
//! (mean and deviation via Welford's algorithm) and recommends thresholds at
//! `mean + k·stddev`. Recommendations can be published as
//! [`IdsAdvisory::ThresholdUpdate`] so policies that reference a runtime
//! parameter tighten automatically under attack.

use crate::bus::{EventBus, IdsAdvisory};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Running statistics for one parameter (Welford's online algorithm).
#[derive(Debug, Clone, Default)]
struct Baseline {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Baseline {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
    }

    fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// A simulated host-based IDS.
///
/// Cloning shares state.
///
/// # Examples
///
/// ```rust
/// use gaa_ids::host::HostIds;
///
/// let host = HostIds::new();
/// for v in [2.0, 3.0, 2.0, 4.0, 3.0] {
///     host.observe("failed_logins_per_min", v);
/// }
/// let threshold = host.recommend_threshold("failed_logins_per_min", 3.0);
/// assert!(threshold > 4.0); // above everything seen so far
/// assert!(host.is_anomalous("failed_logins_per_min", 50.0, 3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HostIds {
    baselines: Arc<Mutex<HashMap<String, Baseline>>>,
    bus: Option<EventBus>,
}

impl HostIds {
    /// Creates a host IDS with no baselines.
    pub fn new() -> Self {
        HostIds::default()
    }

    /// Attaches an event bus for threshold advisories.
    pub fn with_bus(mut self, bus: EventBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Feeds one observation of `parameter`.
    pub fn observe(&self, parameter: &str, value: f64) {
        self.baselines
            .lock()
            .entry(parameter.to_string())
            .or_default()
            .observe(value);
    }

    /// Number of observations recorded for `parameter`.
    pub fn observation_count(&self, parameter: &str) -> u64 {
        self.baselines.lock().get(parameter).map_or(0, |b| b.count)
    }

    /// Baseline mean for `parameter` (0.0 if never observed).
    pub fn mean(&self, parameter: &str) -> f64 {
        self.baselines.lock().get(parameter).map_or(0.0, |b| b.mean)
    }

    /// Recommends a threshold of `mean + k·stddev` for `parameter`.
    ///
    /// With fewer than two observations the recommendation is `mean + k`
    /// (a conservative default spread of 1.0).
    pub fn recommend_threshold(&self, parameter: &str, k: f64) -> f64 {
        let baselines = self.baselines.lock();
        match baselines.get(parameter) {
            Some(b) if b.count >= 2 => b.mean + k * b.stddev().max(f64::EPSILON),
            Some(b) => b.mean + k,
            None => k,
        }
    }

    /// Publishes the current recommendation for `parameter` as a
    /// [`IdsAdvisory::ThresholdUpdate`]; returns the value sent (also when no
    /// bus is attached).
    pub fn publish_threshold(&self, parameter: &str, k: f64) -> f64 {
        let value = self.recommend_threshold(parameter, k);
        if let Some(bus) = &self.bus {
            bus.publish_advisory(IdsAdvisory::ThresholdUpdate {
                parameter: parameter.to_string(),
                value,
            });
        }
        value
    }

    /// Is `value` more than `k` standard deviations above the baseline mean?
    /// (Resource-consumption anomaly, §3 item 6.)
    pub fn is_anomalous(&self, parameter: &str, value: f64, k: f64) -> bool {
        let baselines = self.baselines.lock();
        match baselines.get(parameter) {
            Some(b) if b.count >= 2 => value > b.mean + k * b.stddev().max(f64::EPSILON),
            _ => false, // no baseline yet: cannot call anything anomalous
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_mean_and_stddev() {
        let host = HostIds::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            host.observe("p", v);
        }
        assert!((host.mean("p") - 5.0).abs() < 1e-9);
        assert_eq!(host.observation_count("p"), 8);
        // Sample stddev of that classic dataset is ~2.138.
        let thr = host.recommend_threshold("p", 1.0);
        assert!((thr - 7.138).abs() < 0.01, "threshold {thr}");
    }

    #[test]
    fn anomaly_detection_needs_baseline() {
        let host = HostIds::new();
        assert!(!host.is_anomalous("cpu", 1_000.0, 3.0));
        host.observe("cpu", 10.0);
        assert!(!host.is_anomalous("cpu", 1_000.0, 3.0)); // one sample: still no
        host.observe("cpu", 12.0);
        assert!(host.is_anomalous("cpu", 1_000.0, 3.0));
        assert!(!host.is_anomalous("cpu", 11.0, 3.0));
    }

    #[test]
    fn recommendation_without_observations_is_k() {
        let host = HostIds::new();
        assert_eq!(host.recommend_threshold("never_seen", 5.0), 5.0);
    }

    #[test]
    fn identical_observations_still_yield_usable_threshold() {
        let host = HostIds::new();
        for _ in 0..10 {
            host.observe("flat", 3.0);
        }
        // stddev 0 -> clamped to epsilon; threshold is essentially the mean.
        let thr = host.recommend_threshold("flat", 3.0);
        assert!((3.0..3.01).contains(&thr));
        assert!(host.is_anomalous("flat", 3.5, 3.0));
    }

    #[test]
    fn threshold_advisory_published_on_bus() {
        let bus = EventBus::new();
        let sub = bus.subscribe_advisories();
        let host = HostIds::new().with_bus(bus);
        host.observe("logins", 2.0);
        host.observe("logins", 4.0);
        let sent = host.publish_threshold("logins", 2.0);
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        match &got[0] {
            IdsAdvisory::ThresholdUpdate { parameter, value } => {
                assert_eq!(parameter, "logins");
                assert!((value - sent).abs() < 1e-12);
            }
            other => panic!("unexpected advisory {other:?}"),
        }
    }

    #[test]
    fn parameters_are_independent() {
        let host = HostIds::new();
        host.observe("a", 100.0);
        host.observe("b", 1.0);
        assert!((host.mean("a") - 100.0).abs() < 1e-9);
        assert!((host.mean("b") - 1.0).abs() < 1e-9);
    }
}
