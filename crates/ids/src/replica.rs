//! Replicable blacklist state for multi-node `BadGuys` propagation.
//!
//! §7.2's `update_log` response action appends attacker IPs to a mutable
//! group so later requests are denied "even when probing unknown
//! vulnerabilities". On one node that is [`GroupStore`]-shaped mutable
//! state; across a fleet it must become a *replica*: a set every node can
//! merge concurrent updates into and still converge.
//!
//! [`ReplicatedBlacklist`] is that replica: an add-wins map from
//! `(group, member)` to an expiry deadline. The merge rule is
//! `max(expiry)` — commutative, associative and idempotent, so datagram
//! duplication, reordering and repeated anti-entropy exchanges all leave
//! the same final state (the convergence argument in DESIGN.md §11 leans
//! on exactly this). Expiry makes blacklisting self-healing: the paper's
//! own caution that automated blocking can be staged into a DoS means
//! entries must age out rather than accumulate forever.
//!
//! The struct is deliberately *not* internally synchronized: `gaa-swarm`
//! owns one per node inside its state lock (a `gaa_race::sync` mutex, so
//! the model checker schedules it). `GroupStore` — the store EACL
//! evaluation actually reads — is mirrored from this replica by the swarm
//! node, keeping the hot evaluator path untouched.
//!
//! [`GroupStore`]: https://docs.rs/gaa-conditions (crate `gaa-conditions`, `identity::GroupStore`)

use gaa_audit::time::Timestamp;
use gaa_faults::rng::mix;
use std::collections::BTreeMap;

/// One replicated blacklist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlacklistEntry {
    /// Group the member is blacklisted in (e.g. `BadGuys`).
    pub group: String,
    /// The blacklisted member (IP address or user name).
    pub member: String,
    /// When the entry stops applying.
    pub expiry: Timestamp,
    /// Node that originated the entry (diagnostics / SIEM export).
    pub origin: String,
}

/// Add-wins, expiry-merged replicated blacklist.
///
/// # Examples
///
/// ```rust
/// use gaa_audit::Timestamp;
/// use gaa_ids::replica::ReplicatedBlacklist;
///
/// let mut a = ReplicatedBlacklist::new();
/// let mut b = ReplicatedBlacklist::new();
/// a.insert("BadGuys", "203.0.113.9", Timestamp::from_millis(500), "n0");
/// b.insert("BadGuys", "203.0.113.9", Timestamp::from_millis(900), "n1");
/// // Merge in either order: the longer ban wins and digests agree.
/// a.insert("BadGuys", "203.0.113.9", Timestamp::from_millis(900), "n1");
/// assert_eq!(a.digest(), b.digest());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicatedBlacklist {
    /// Keyed by `(group, member)`; `BTreeMap` so iteration (and therefore
    /// the digest and `FullState` wire order) is canonical on every node.
    entries: BTreeMap<(String, String), (Timestamp, String)>,
}

impl ReplicatedBlacklist {
    /// An empty replica.
    pub fn new() -> Self {
        ReplicatedBlacklist::default()
    }

    /// Merges one entry with add-wins/max-expiry semantics. Returns `true`
    /// when the replica changed (new member, or an extended expiry) — the
    /// signal that the update is worth broadcasting onward.
    pub fn insert(&mut self, group: &str, member: &str, expiry: Timestamp, origin: &str) -> bool {
        let key = (group.to_string(), member.to_string());
        match self.entries.get_mut(&key) {
            Some((current, owner)) => {
                if expiry > *current {
                    *current = expiry;
                    *owner = origin.to_string();
                    true
                } else {
                    false
                }
            }
            None => {
                self.entries.insert(key, (expiry, origin.to_string()));
                true
            }
        }
    }

    /// Removes an entry outright (operator reversal). Expiry-driven removal
    /// goes through [`sweep`](ReplicatedBlacklist::sweep) instead.
    pub fn remove(&mut self, group: &str, member: &str) -> bool {
        self.entries
            .remove(&(group.to_string(), member.to_string()))
            .is_some()
    }

    /// Is `member` currently blacklisted in `group` (unexpired) at `now`?
    pub fn contains(&self, group: &str, member: &str, now: Timestamp) -> bool {
        self.entries
            .get(&(group.to_string(), member.to_string()))
            .is_some_and(|(expiry, _)| *expiry > now)
    }

    /// Drops every entry whose expiry has passed, returning the removed
    /// `(group, member)` pairs so the caller can mirror the removals into
    /// its `GroupStore` and audit them.
    pub fn sweep(&mut self, now: Timestamp) -> Vec<(String, String)> {
        let dead: Vec<(String, String)> = self
            .entries
            .iter()
            .filter(|(_, (expiry, _))| *expiry <= now)
            .map(|(key, _)| key.clone())
            .collect();
        for key in &dead {
            self.entries.remove(key);
        }
        dead
    }

    /// Number of live entries (expired-but-unswept entries count; call
    /// [`sweep`](ReplicatedBlacklist::sweep) first for an exact live count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry in canonical `(group, member)` order — the payload of an
    /// anti-entropy `FullState` exchange.
    pub fn entries(&self) -> Vec<BlacklistEntry> {
        self.entries
            .iter()
            .map(|((group, member), (expiry, origin))| BlacklistEntry {
                group: group.clone(),
                member: member.clone(),
                expiry: *expiry,
                origin: origin.clone(),
            })
            .collect()
    }

    /// Merges a full remote state into this one; returns how many entries
    /// changed. Merge is element-wise [`insert`](ReplicatedBlacklist::insert),
    /// so it inherits commutativity and idempotence.
    pub fn merge(&mut self, remote: &[BlacklistEntry]) -> usize {
        remote
            .iter()
            .filter(|e| self.insert(&e.group, &e.member, e.expiry, &e.origin))
            .count()
    }

    /// Order-insensitive content digest over `(group, member, expiry)`.
    /// Two replicas with the same entries produce the same digest, which is
    /// what anti-entropy summaries compare to decide whether a full-state
    /// pull is needed. Origin is excluded: concurrent identical bans from
    /// different nodes must still converge to equal digests.
    pub fn digest(&self) -> u64 {
        let mut acc = 0xD1_6E57u64;
        for ((group, member), (expiry, _)) in &self.entries {
            let mut h = 0x9e37_79b9_7f4a_7c15u64;
            for byte in group.bytes().chain([0x1f]).chain(member.bytes()) {
                h = mix(h ^ u64::from(byte));
            }
            acc = acc.wrapping_add(mix(h ^ expiry.as_millis()));
        }
        mix(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn insert_merge_is_add_wins_max_expiry() {
        let mut replica = ReplicatedBlacklist::new();
        assert!(replica.insert("BadGuys", "203.0.113.9", ts(100), "n0"));
        // Shorter ban for the same member: no change, nothing to gossip.
        assert!(!replica.insert("BadGuys", "203.0.113.9", ts(50), "n1"));
        // Longer ban wins and reports a change.
        assert!(replica.insert("BadGuys", "203.0.113.9", ts(200), "n1"));
        assert!(replica.contains("BadGuys", "203.0.113.9", ts(150)));
        assert!(!replica.contains("BadGuys", "203.0.113.9", ts(200)));
    }

    #[test]
    fn sweep_removes_expired_and_reports_them() {
        let mut replica = ReplicatedBlacklist::new();
        replica.insert("BadGuys", "a", ts(10), "n0");
        replica.insert("BadGuys", "b", ts(100), "n0");
        let dead = replica.sweep(ts(50));
        assert_eq!(dead, vec![("BadGuys".to_string(), "a".to_string())]);
        assert_eq!(replica.len(), 1);
        assert!(replica.contains("BadGuys", "b", ts(50)));
    }

    #[test]
    fn merge_converges_regardless_of_order_and_duplication() {
        let updates = [
            ("BadGuys", "x", 100u64, "n0"),
            ("BadGuys", "y", 200, "n1"),
            ("Probers", "x", 50, "n2"),
            ("BadGuys", "x", 300, "n1"),
        ];
        let mut forward = ReplicatedBlacklist::new();
        for (g, m, e, o) in updates {
            forward.insert(g, m, ts(e), o);
        }
        let mut reversed = ReplicatedBlacklist::new();
        for (g, m, e, o) in updates.into_iter().rev() {
            reversed.insert(g, m, ts(e), o);
            reversed.insert(g, m, ts(e), o); // duplicated delivery
        }
        assert_eq!(forward.digest(), reversed.digest());
        // Full-state merge is idempotent.
        let snapshot = forward.entries();
        assert_eq!(forward.merge(&snapshot), 0);
    }

    #[test]
    fn digest_ignores_origin_but_not_content() {
        let mut a = ReplicatedBlacklist::new();
        let mut b = ReplicatedBlacklist::new();
        a.insert("G", "m", ts(100), "n0");
        b.insert("G", "m", ts(100), "n1");
        assert_eq!(a.digest(), b.digest());
        b.insert("G", "other", ts(100), "n1");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn remove_is_explicit_reversal() {
        let mut replica = ReplicatedBlacklist::new();
        replica.insert("BadGuys", "a", ts(100), "n0");
        assert!(replica.remove("BadGuys", "a"));
        assert!(!replica.remove("BadGuys", "a"));
        assert!(replica.is_empty());
    }

    #[test]
    fn entries_are_canonically_ordered() {
        let mut replica = ReplicatedBlacklist::new();
        replica.insert("Z", "b", ts(1), "n");
        replica.insert("A", "a", ts(1), "n");
        let entries = replica.entries();
        assert_eq!(entries[0].group, "A");
        assert_eq!(entries[1].group, "Z");
    }
}
