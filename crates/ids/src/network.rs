//! Network-IDS simulator.
//!
//! §3: "The GAA-API can request a network-based IDS to report, for example,
//! indications of address spoofing. This information can be used in addition
//! to the application level attack signatures to further reduce the false
//! positive rate and avoid DoS attacks" — i.e. avoid an attacker getting an
//! innocent (impersonated) host blocked.
//!
//! The simulator tracks per-source connection rates and destination-port
//! fan-out over a sliding window, and answers spoofing queries from a table
//! of observed transport-level inconsistencies (in a real deployment these
//! come from TTL/sequence analysis; tests and the workload driver inject
//! them).

use crate::bus::{EventBus, IdsAdvisory};
use gaa_audit::time::{Clock, Timestamp};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct SourceState {
    /// Timestamps of recent connections (sliding window).
    connections: VecDeque<Timestamp>,
    /// Distinct destination ports contacted in the window.
    ports: VecDeque<(Timestamp, u16)>,
    /// Transport-level inconsistency observations (spoofing evidence).
    inconsistencies: u32,
    /// Total connection observations (for the consistency ratio).
    observations: u32,
}

/// A simulated network-based IDS.
///
/// * `observe_connection` feeds it packets/connections;
/// * `connection_rate` / `is_flooding` expose the DoS view;
/// * `is_port_scanning` flags sources touching many distinct ports;
/// * `spoofing_indication` answers the GAA-API's corroboration query (§3).
///
/// Cloning shares state.
#[derive(Debug, Clone)]
pub struct NetworkIds {
    state: Arc<Mutex<HashMap<String, SourceState>>>,
    clock: Arc<dyn Clock>,
    window: Duration,
    flood_threshold: usize,
    scan_threshold: usize,
    bus: Option<EventBus>,
}

impl NetworkIds {
    /// Creates a network IDS with a 10 s window, a 100-connection flood
    /// threshold and a 10-port scan threshold.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        NetworkIds {
            state: Arc::new(Mutex::new(HashMap::new())),
            clock,
            window: Duration::from_secs(10),
            flood_threshold: 100,
            scan_threshold: 10,
            bus: None,
        }
    }

    /// Sets the sliding-window length.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Sets the connections-per-window flood threshold.
    pub fn with_flood_threshold(mut self, n: usize) -> Self {
        self.flood_threshold = n;
        self
    }

    /// Sets the distinct-ports-per-window scan threshold.
    pub fn with_scan_threshold(mut self, n: usize) -> Self {
        self.scan_threshold = n;
        self
    }

    /// Attaches an event bus on which spoofing answers are also published as
    /// [`IdsAdvisory::SpoofingIndication`].
    pub fn with_bus(mut self, bus: EventBus) -> Self {
        self.bus = Some(bus);
        self
    }

    /// Records one connection from `source` to `port`. `consistent` reports
    /// whether transport-level metadata looked genuine (a real IDS derives
    /// this from TTL/sequence analysis; the simulator is told).
    pub fn observe_connection(&self, source: &str, port: u16, consistent: bool) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let entry = state.entry(source.to_string()).or_default();
        entry.connections.push_back(now);
        entry.ports.push_back((now, port));
        entry.observations += 1;
        if !consistent {
            entry.inconsistencies += 1;
        }
        Self::evict(entry, now, self.window);
    }

    fn evict(entry: &mut SourceState, now: Timestamp, window: Duration) {
        let cutoff = now.minus(window);
        while entry.connections.front().is_some_and(|&t| t < cutoff) {
            entry.connections.pop_front();
        }
        while entry.ports.front().is_some_and(|&(t, _)| t < cutoff) {
            entry.ports.pop_front();
        }
    }

    /// Connections from `source` within the current window.
    pub fn connection_rate(&self, source: &str) -> usize {
        let now = self.clock.now();
        let mut state = self.state.lock();
        match state.get_mut(source) {
            Some(entry) => {
                Self::evict(entry, now, self.window);
                entry.connections.len()
            }
            None => 0,
        }
    }

    /// Is `source` currently exceeding the flood threshold?
    pub fn is_flooding(&self, source: &str) -> bool {
        self.connection_rate(source) >= self.flood_threshold
    }

    /// Is `source` touching at least `scan_threshold` distinct ports in the
    /// window?
    pub fn is_port_scanning(&self, source: &str) -> bool {
        let now = self.clock.now();
        let mut state = self.state.lock();
        match state.get_mut(source) {
            Some(entry) => {
                Self::evict(entry, now, self.window);
                let distinct: HashSet<u16> = entry.ports.iter().map(|&(_, p)| p).collect();
                distinct.len() >= self.scan_threshold
            }
            None => false,
        }
    }

    /// Spoofing corroboration for `source`: `(spoofed, confidence)`.
    ///
    /// A source is considered spoofed when more than half of its observed
    /// connections carried inconsistent transport metadata; confidence grows
    /// with the number of observations. Unknown sources answer
    /// `(false, 0.0)` — no evidence either way.
    pub fn spoofing_indication(&self, source: &str) -> (bool, f64) {
        let state = self.state.lock();
        let answer = match state.get(source) {
            Some(entry) if entry.observations > 0 => {
                let ratio = f64::from(entry.inconsistencies) / f64::from(entry.observations);
                let confidence =
                    ratio.max(1.0 - ratio) * (f64::from(entry.observations.min(20)) / 20.0);
                (ratio > 0.5, confidence)
            }
            _ => (false, 0.0),
        };
        drop(state);
        if let Some(bus) = &self.bus {
            bus.publish_advisory(IdsAdvisory::SpoofingIndication {
                source: source.to_string(),
                spoofed: answer.0,
                confidence: answer.1,
            });
        }
        answer
    }

    /// Sources currently above the flood threshold (for proactive firewall
    /// updates).
    pub fn flooding_sources(&self) -> Vec<String> {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let mut out = Vec::new();
        for (source, entry) in state.iter_mut() {
            Self::evict(entry, now, self.window);
            if entry.connections.len() >= self.flood_threshold {
                out.push(source.clone());
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::VirtualClock;

    fn ids(clock: &VirtualClock) -> NetworkIds {
        NetworkIds::new(Arc::new(clock.clone()))
            .with_window(Duration::from_secs(10))
            .with_flood_threshold(5)
            .with_scan_threshold(3)
    }

    #[test]
    fn connection_rate_counts_window_only() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        for _ in 0..3 {
            n.observe_connection("10.0.0.1", 80, true);
        }
        assert_eq!(n.connection_rate("10.0.0.1"), 3);
        clock.advance(Duration::from_secs(11));
        assert_eq!(n.connection_rate("10.0.0.1"), 0);
    }

    #[test]
    fn flood_detection() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        for _ in 0..5 {
            n.observe_connection("10.0.0.2", 80, true);
        }
        assert!(n.is_flooding("10.0.0.2"));
        assert!(!n.is_flooding("10.0.0.3"));
        assert_eq!(n.flooding_sources(), vec!["10.0.0.2".to_string()]);
    }

    #[test]
    fn port_scan_detection_uses_distinct_ports() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        n.observe_connection("10.0.0.4", 80, true);
        n.observe_connection("10.0.0.4", 80, true);
        n.observe_connection("10.0.0.4", 80, true);
        assert!(!n.is_port_scanning("10.0.0.4")); // one distinct port
        n.observe_connection("10.0.0.4", 22, true);
        n.observe_connection("10.0.0.4", 443, true);
        assert!(n.is_port_scanning("10.0.0.4")); // three distinct ports
    }

    #[test]
    fn spoofing_requires_majority_inconsistency() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        for _ in 0..8 {
            n.observe_connection("6.6.6.6", 80, false);
        }
        for _ in 0..2 {
            n.observe_connection("6.6.6.6", 80, true);
        }
        let (spoofed, confidence) = n.spoofing_indication("6.6.6.6");
        assert!(spoofed);
        assert!(confidence > 0.3);

        for _ in 0..10 {
            n.observe_connection("7.7.7.7", 80, true);
        }
        let (spoofed, confidence) = n.spoofing_indication("7.7.7.7");
        assert!(!spoofed);
        assert!(confidence > 0.4); // confident it is genuine
    }

    #[test]
    fn unknown_source_has_no_spoofing_evidence() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        assert_eq!(n.spoofing_indication("0.0.0.0"), (false, 0.0));
    }

    #[test]
    fn spoofing_answers_published_on_bus() {
        let clock = VirtualClock::new();
        let bus = EventBus::new();
        let sub = bus.subscribe_advisories();
        let n = ids(&clock).with_bus(bus);
        n.observe_connection("10.0.0.9", 80, false);
        n.spoofing_indication("10.0.0.9");
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert!(matches!(
            &got[0],
            IdsAdvisory::SpoofingIndication { source, .. } if source == "10.0.0.9"
        ));
    }

    #[test]
    fn windows_are_per_source() {
        let clock = VirtualClock::new();
        let n = ids(&clock);
        for _ in 0..5 {
            n.observe_connection("a", 80, true);
        }
        n.observe_connection("b", 80, true);
        assert!(n.is_flooding("a"));
        assert!(!n.is_flooding("b"));
    }
}
