//! Correlation of application-level reports with network-level evidence.
//!
//! §3: the GAA-API "can request a network-based IDS to report … indications
//! of address spoofing. This information can be used in addition to the
//! application level attack signatures to further reduce the false positive
//! rate and avoid DoS attacks. This is particularly important for applying
//! pro-active countermeasures, such as updating firewall rules and dropping
//! connections." The paper also warns (§1) that "an automated response to
//! attacks can be used by an intruder in order to stage a DoS (the intruder
//! could have impersonated a host or a user)".
//!
//! [`Correlator`] encodes that judgement: an application-level attack report
//! is corroborated against the network IDS's spoofing answer, producing a
//! combined confidence and a recommendation whether a *proactive* measure
//! (blacklisting, firewalling) is safe to apply.

use crate::bus::GaaReport;
use crate::network::NetworkIds;
use serde::{Deserialize, Serialize};

/// The outcome of corroborating an application-level report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorroboratedAlert {
    /// The source address in question.
    pub source: String,
    /// Application-level confidence (from the signature match, 0.0–1.0).
    pub app_confidence: f64,
    /// Whether the network IDS saw spoofing indications for the source.
    pub spoofing_indicated: bool,
    /// Network-level confidence in the spoofing answer.
    pub network_confidence: f64,
    /// Combined confidence that the *named source* is genuinely attacking.
    pub combined_confidence: f64,
    /// Whether proactive countermeasures (blacklist, firewall) are
    /// recommended against this source.
    pub proactive_safe: bool,
}

/// Combines application- and network-level evidence.
#[derive(Debug, Clone)]
pub struct Correlator {
    network: NetworkIds,
    /// Minimum combined confidence for recommending proactive measures.
    proactive_threshold: f64,
}

impl Correlator {
    /// Creates a correlator over `network` with a 0.7 proactive threshold.
    pub fn new(network: NetworkIds) -> Self {
        Correlator {
            network,
            proactive_threshold: 0.7,
        }
    }

    /// Sets the combined-confidence threshold above which proactive
    /// countermeasures are recommended.
    pub fn with_proactive_threshold(mut self, t: f64) -> Self {
        self.proactive_threshold = t;
        self
    }

    /// Corroborates an application-level attack report.
    ///
    /// * If the network IDS indicates spoofing, the combined confidence is
    ///   discounted by the spoofing confidence — blocking the named source
    ///   would punish an impersonated innocent (the DoS-staging attack the
    ///   paper warns about).
    /// * If transport metadata looked genuine, the application confidence is
    ///   reinforced.
    pub fn corroborate(&self, report: &GaaReport) -> CorroboratedAlert {
        let app_confidence = report.signature.as_ref().map_or(0.5, |s| s.confidence);
        let (spoofed, network_confidence) = self.network.spoofing_indication(&report.source);
        let combined_confidence = if spoofed {
            // Strong spoofing evidence drives confidence in the *source
            // attribution* towards zero even if the attack itself is real.
            app_confidence * (1.0 - network_confidence)
        } else {
            // Genuine transport: boost towards 1.0 in proportion to how sure
            // the network side is.
            app_confidence + (1.0 - app_confidence) * network_confidence * 0.5
        };
        CorroboratedAlert {
            source: report.source.clone(),
            app_confidence,
            spoofing_indicated: spoofed,
            network_confidence,
            combined_confidence,
            proactive_safe: combined_confidence >= self.proactive_threshold && !spoofed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::ReportKind;
    use crate::signatures::{AttackClass, SignatureMatch};
    use gaa_audit::{Timestamp, VirtualClock};
    use std::sync::Arc;

    fn attack_report(source: &str, confidence: f64) -> GaaReport {
        GaaReport::new(
            Timestamp::from_millis(0),
            ReportKind::ApplicationAttack,
            source,
            "/cgi-bin/phf",
            "signature match",
        )
        .with_signature(SignatureMatch {
            id: "sig.phf".into(),
            class: AttackClass::CgiExploit,
            severity: 8,
            confidence,
            recommendation: "deny".into(),
        })
    }

    fn network() -> NetworkIds {
        NetworkIds::new(Arc::new(VirtualClock::new()))
    }

    #[test]
    fn genuine_source_with_strong_signature_is_proactive_safe() {
        let net = network();
        for _ in 0..20 {
            net.observe_connection("1.2.3.4", 80, true);
        }
        let alert = Correlator::new(net).corroborate(&attack_report("1.2.3.4", 0.95));
        assert!(!alert.spoofing_indicated);
        assert!(alert.combined_confidence > 0.95);
        assert!(alert.proactive_safe);
    }

    #[test]
    fn spoofed_source_blocks_proactive_measures() {
        let net = network();
        for _ in 0..20 {
            net.observe_connection("6.6.6.6", 80, false);
        }
        let alert = Correlator::new(net).corroborate(&attack_report("6.6.6.6", 0.95));
        assert!(alert.spoofing_indicated);
        assert!(alert.combined_confidence < 0.2);
        assert!(!alert.proactive_safe);
    }

    #[test]
    fn unknown_source_keeps_app_confidence() {
        let net = network();
        let alert = Correlator::new(net).corroborate(&attack_report("9.9.9.9", 0.8));
        assert!(!alert.spoofing_indicated);
        assert!((alert.combined_confidence - 0.8).abs() < 1e-9);
        assert!(alert.proactive_safe); // 0.8 >= 0.7 default threshold
    }

    #[test]
    fn weak_signature_without_corroboration_is_not_proactive() {
        // NIMDA-style `%` signature has confidence 0.6 in the default DB —
        // below the proactive bar without network corroboration.
        let net = network();
        let alert = Correlator::new(net).corroborate(&attack_report("8.8.8.8", 0.6));
        assert!(!alert.proactive_safe);
    }

    #[test]
    fn weak_signature_with_corroboration_becomes_proactive() {
        let net = network();
        for _ in 0..20 {
            net.observe_connection("8.8.8.8", 80, true);
        }
        let alert = Correlator::new(net).corroborate(&attack_report("8.8.8.8", 0.6));
        assert!(
            alert.combined_confidence > 0.7,
            "{}",
            alert.combined_confidence
        );
        assert!(alert.proactive_safe);
    }

    #[test]
    fn report_without_signature_uses_neutral_confidence() {
        let net = network();
        let report = GaaReport::new(
            Timestamp::from_millis(0),
            ReportKind::SuspiciousBehavior,
            "5.5.5.5",
            "/x",
            "odd",
        );
        let alert = Correlator::new(net).corroborate(&report);
        assert!((alert.app_confidence - 0.5).abs() < 1e-9);
        assert!(!alert.proactive_safe);
    }

    #[test]
    fn custom_threshold_respected() {
        let net = network();
        let alert = Correlator::new(net)
            .with_proactive_threshold(0.95)
            .corroborate(&attack_report("1.1.1.1", 0.9));
        assert!(!alert.proactive_safe);
    }
}
