//! The GAA-API ↔ IDS communication channel.
//!
//! §3 enumerates seven kinds of information the GAA-API can report to an
//! IDS, and §9 plans "a policy-controlled interface for establishing a
//! subscription-based communication channel to allow GAA-API and IDSs to
//! communicate". This module implements that channel:
//!
//! * [`GaaReport`] — the seven report kinds, flowing GAA → IDS;
//! * [`IdsAdvisory`] — values flowing IDS → GAA (spoofing indications,
//!   adaptive thresholds/times/locations, threat-level changes);
//! * [`EventBus`] — a fan-out pub/sub bus over crossbeam channels. Each
//!   subscriber gets its own queue and may restrict the [`ReportKind`]s it
//!   receives (the "policy-controlled" part: a subscription is created with
//!   an explicit kind filter).

use crate::signatures::SignatureMatch;
use crate::threat::ThreatLevel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gaa_audit::log::{AuditLog, AuditRecord, AuditSeverity};
use gaa_audit::time::Timestamp;
use gaa_faults::{FaultInjector, FaultSite};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The seven kinds of application-level observation the GAA-API reports to
/// IDSs, numbered as in §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportKind {
    /// (1) Ill-formed access requests, which may signal an attack.
    IllFormedRequest,
    /// (2) Requests with parameters that are abnormally large or violate
    /// site policy.
    AbnormalParameters,
    /// (3) Access denial to sensitive system objects.
    SensitiveDenial,
    /// (4) Violated threshold conditions (e.g. failed logins per window).
    ThresholdViolation,
    /// (5) Detected application-level attacks, with threat characteristics.
    ApplicationAttack,
    /// (6) Unusual or suspicious application behaviour.
    SuspiciousBehavior,
    /// (7) Legitimate access request patterns (profile-building input).
    LegitimatePattern,
}

impl ReportKind {
    /// All kinds, in §3 order.
    pub fn all() -> [ReportKind; 7] {
        [
            ReportKind::IllFormedRequest,
            ReportKind::AbnormalParameters,
            ReportKind::SensitiveDenial,
            ReportKind::ThresholdViolation,
            ReportKind::ApplicationAttack,
            ReportKind::SuspiciousBehavior,
            ReportKind::LegitimatePattern,
        ]
    }
}

/// A report from the GAA-API to subscribed IDSs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaaReport {
    /// When the observation was made.
    pub time: Timestamp,
    /// Which of the seven §3 categories it falls in.
    pub kind: ReportKind,
    /// Source of the request (client IP or principal).
    pub source: String,
    /// The resource or operation concerned (URL, right name).
    pub target: String,
    /// Free-form detail (the malformed fragment, the violated threshold…).
    pub detail: String,
    /// Matched signature metadata for `ApplicationAttack` reports
    /// (attack type, severity, confidence, defensive recommendation).
    pub signature: Option<SignatureMatch>,
}

impl GaaReport {
    /// Builds a report without signature metadata.
    pub fn new(
        time: Timestamp,
        kind: ReportKind,
        source: impl Into<String>,
        target: impl Into<String>,
        detail: impl Into<String>,
    ) -> Self {
        GaaReport {
            time,
            kind,
            source: source.into(),
            target: target.into(),
            detail: detail.into(),
            signature: None,
        }
    }

    /// Attaches signature metadata (for `ApplicationAttack`).
    pub fn with_signature(mut self, signature: SignatureMatch) -> Self {
        self.signature = Some(signature);
        self
    }
}

impl fmt::Display for GaaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {:?} source={} target={} {}",
            self.time, self.kind, self.source, self.target, self.detail
        )
    }
}

/// Advisories flowing from IDSs back to the GAA-API (§3: "The API can
/// request information for adjusting policies, such as values for
/// thresholds, times and locations").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IdsAdvisory {
    /// Network IDS indication of whether `source` shows signs of address
    /// spoofing (used before proactive countermeasures, §3).
    SpoofingIndication {
        /// The address in question.
        source: String,
        /// Whether spoofing indicators were observed.
        spoofed: bool,
        /// Confidence 0.0–1.0.
        confidence: f64,
    },
    /// A host IDS recommends a new numeric threshold for a named condition
    /// parameter (e.g. failed-login limit).
    ThresholdUpdate {
        /// Parameter name, e.g. `failed_logins_per_minute`.
        parameter: String,
        /// Recommended value.
        value: f64,
    },
    /// Recommended change to an allowed time window (hours, 24h clock).
    TimeWindowUpdate {
        /// Start hour, inclusive.
        start_hour: u32,
        /// End hour, exclusive.
        end_hour: u32,
    },
    /// Recommended location (IP prefix) restriction.
    LocationUpdate {
        /// Allowed prefix, e.g. `128.9.`.
        allowed_prefix: String,
    },
    /// The system threat level changed.
    ThreatLevelChange {
        /// The new level.
        level: ThreatLevel,
    },
}

/// A subscription handle returned by [`EventBus::subscribe_reports`].
///
/// Dropping the handle unsubscribes (the bus prunes disconnected
/// subscribers on the next publish).
#[derive(Debug)]
pub struct Subscription<T> {
    receiver: Receiver<T>,
}

impl<T> Subscription<T> {
    /// Non-blocking: all events queued since the last drain.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Ok(ev) = self.receiver.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Non-blocking: next queued event, if any.
    pub fn try_next(&self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

struct ReportSub {
    kinds: Option<Vec<ReportKind>>,
    sender: Sender<GaaReport>,
}

#[derive(Default)]
struct BusState {
    report_subs: Vec<ReportSub>,
    advisory_subs: Vec<Sender<IdsAdvisory>>,
    injector: Option<Arc<dyn FaultInjector>>,
    audit: Option<AuditLog>,
    dropped: u64,
}

/// Pub/sub bus connecting the GAA-API with any number of IDS components.
///
/// Cloning shares the bus. Publishing never blocks (unbounded queues);
/// disconnected subscribers are pruned lazily.
///
/// # Examples
///
/// ```rust
/// use gaa_audit::Timestamp;
/// use gaa_ids::{EventBus, GaaReport, ReportKind};
///
/// let bus = EventBus::new();
/// let all = bus.subscribe_reports(None);
/// let attacks_only = bus.subscribe_reports(Some(vec![ReportKind::ApplicationAttack]));
///
/// bus.publish_report(GaaReport::new(
///     Timestamp::from_millis(0),
///     ReportKind::SensitiveDenial,
///     "203.0.113.9",
///     "/etc/passwd",
///     "denied",
/// ));
///
/// assert_eq!(all.drain().len(), 1);
/// assert!(attacks_only.drain().is_empty());
/// ```
#[derive(Clone, Default)]
pub struct EventBus {
    state: Arc<Mutex<BusState>>,
}

impl fmt::Debug for EventBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("EventBus")
            .field("report_subscribers", &state.report_subs.len())
            .field("advisory_subscribers", &state.advisory_subs.len())
            .finish()
    }
}

impl EventBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Consults `injector` at [`FaultSite::EventBus`] on every publish: any
    /// injected fault drops the event, simulating a lossy or disconnected
    /// GAA↔IDS channel. Shared across clones of this bus.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        self.state.lock().injector = Some(injector);
    }

    /// Mirrors every dropped event into `audit` (`ids.event_dropped`,
    /// Warning), so losing IDS traffic is never silent.
    pub fn set_audit(&self, audit: AuditLog) {
        self.state.lock().audit = Some(audit);
    }

    /// Events dropped by fault injection since construction.
    pub fn dropped_events(&self) -> u64 {
        self.state.lock().dropped
    }

    /// True (and accounted + audited) when the current publish should drop.
    fn drop_injected(state: &mut BusState, time: Timestamp, what: &str, detail: String) -> bool {
        let faulted = state
            .injector
            .as_ref()
            .and_then(|i| i.fault_at(FaultSite::EventBus))
            .is_some();
        if faulted {
            state.dropped += 1;
            if let Some(audit) = &state.audit {
                audit.record(
                    AuditRecord::new(
                        time,
                        AuditSeverity::Warning,
                        "ids.event_dropped",
                        "event_bus",
                        format!("{what} dropped by GAA/IDS channel fault"),
                    )
                    .with_attr("detail", detail),
                );
            }
        }
        faulted
    }

    /// Subscribes to GAA→IDS reports. `kinds: None` receives everything;
    /// `Some(kinds)` receives only those kinds (the policy-controlled
    /// filter).
    pub fn subscribe_reports(&self, kinds: Option<Vec<ReportKind>>) -> Subscription<GaaReport> {
        let (tx, rx) = unbounded();
        self.state
            .lock()
            .report_subs
            .push(ReportSub { kinds, sender: tx });
        Subscription { receiver: rx }
    }

    /// Subscribes to IDS→GAA advisories.
    pub fn subscribe_advisories(&self) -> Subscription<IdsAdvisory> {
        let (tx, rx) = unbounded();
        self.state.lock().advisory_subs.push(tx);
        Subscription { receiver: rx }
    }

    /// Publishes a GAA→IDS report to every matching subscriber.
    pub fn publish_report(&self, report: GaaReport) {
        let mut state = self.state.lock();
        if Self::drop_injected(
            &mut state,
            report.time,
            "GAA report",
            format!("{:?} from {}", report.kind, report.source),
        ) {
            return;
        }
        state.report_subs.retain(|sub| {
            let wanted = sub
                .kinds
                .as_ref()
                .is_none_or(|ks| ks.contains(&report.kind));
            if !wanted {
                return true;
            }
            sub.sender.send(report.clone()).is_ok()
        });
    }

    /// Publishes an IDS→GAA advisory to every subscriber.
    pub fn publish_advisory(&self, advisory: IdsAdvisory) {
        let mut state = self.state.lock();
        // Advisories carry no timestamp of their own, so a drop record is
        // written at time zero; the detail attribute identifies the advisory.
        if Self::drop_injected(
            &mut state,
            Timestamp::from_millis(0),
            "IDS advisory",
            format!("{advisory:?}"),
        ) {
            return;
        }
        state
            .advisory_subs
            .retain(|tx| tx.send(advisory.clone()).is_ok());
    }

    /// Number of live report subscribers (diagnostics).
    pub fn report_subscriber_count(&self) -> usize {
        self.state.lock().report_subs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: ReportKind) -> GaaReport {
        GaaReport::new(Timestamp::from_millis(1), kind, "1.2.3.4", "/x", "d")
    }

    #[test]
    fn unfiltered_subscriber_sees_all_kinds() {
        let bus = EventBus::new();
        let sub = bus.subscribe_reports(None);
        for kind in ReportKind::all() {
            bus.publish_report(report(kind));
        }
        assert_eq!(sub.drain().len(), 7);
    }

    #[test]
    fn filtered_subscriber_sees_only_its_kinds() {
        let bus = EventBus::new();
        let sub = bus.subscribe_reports(Some(vec![
            ReportKind::ApplicationAttack,
            ReportKind::ThresholdViolation,
        ]));
        for kind in ReportKind::all() {
            bus.publish_report(report(kind));
        }
        let got: Vec<ReportKind> = sub.drain().into_iter().map(|r| r.kind).collect();
        assert_eq!(
            got,
            vec![
                ReportKind::ThresholdViolation,
                ReportKind::ApplicationAttack
            ]
        );
    }

    #[test]
    fn multiple_subscribers_each_get_a_copy() {
        let bus = EventBus::new();
        let a = bus.subscribe_reports(None);
        let b = bus.subscribe_reports(None);
        bus.publish_report(report(ReportKind::SensitiveDenial));
        assert_eq!(a.drain().len(), 1);
        assert_eq!(b.drain().len(), 1);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = EventBus::new();
        let a = bus.subscribe_reports(None);
        {
            let _b = bus.subscribe_reports(None);
        } // _b dropped here
        bus.publish_report(report(ReportKind::IllFormedRequest));
        assert_eq!(bus.report_subscriber_count(), 1);
        assert_eq!(a.drain().len(), 1);
    }

    #[test]
    fn advisories_flow_to_all_subscribers() {
        let bus = EventBus::new();
        let sub = bus.subscribe_advisories();
        bus.publish_advisory(IdsAdvisory::ThresholdUpdate {
            parameter: "failed_logins".into(),
            value: 5.0,
        });
        bus.publish_advisory(IdsAdvisory::ThreatLevelChange {
            level: ThreatLevel::High,
        });
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        assert!(matches!(got[1], IdsAdvisory::ThreatLevelChange { .. }));
    }

    #[test]
    fn try_next_pops_one_at_a_time() {
        let bus = EventBus::new();
        let sub = bus.subscribe_reports(None);
        bus.publish_report(report(ReportKind::IllFormedRequest));
        bus.publish_report(report(ReportKind::SensitiveDenial));
        assert_eq!(sub.try_next().unwrap().kind, ReportKind::IllFormedRequest);
        assert_eq!(sub.try_next().unwrap().kind, ReportKind::SensitiveDenial);
        assert!(sub.try_next().is_none());
    }

    #[test]
    fn publish_with_no_subscribers_is_fine() {
        let bus = EventBus::new();
        bus.publish_report(report(ReportKind::LegitimatePattern));
        bus.publish_advisory(IdsAdvisory::LocationUpdate {
            allowed_prefix: "10.".into(),
        });
    }

    #[test]
    fn report_with_signature_metadata() {
        use crate::signatures::{AttackClass, SignatureMatch};
        let sig = SignatureMatch {
            id: "sig.phf".into(),
            class: AttackClass::CgiExploit,
            severity: 8,
            confidence: 0.95,
            recommendation: "deny".into(),
        };
        let r = report(ReportKind::ApplicationAttack).with_signature(sig.clone());
        assert_eq!(r.signature.as_ref().unwrap().id, "sig.phf");
    }

    #[test]
    fn injected_faults_drop_events_and_audit() {
        use gaa_faults::{Fault, FaultPlan, FaultSite};

        let bus = EventBus::new();
        let audit = AuditLog::new();
        let sub = bus.subscribe_reports(None);
        let plan = FaultPlan::builder(6)
            .fail_window(FaultSite::EventBus, 1, 3, Fault::Error)
            .build();
        bus.set_fault_injector(Arc::new(plan));
        bus.set_audit(audit.clone());

        bus.publish_report(report(ReportKind::ApplicationAttack)); // delivered
        bus.publish_report(report(ReportKind::SensitiveDenial)); // dropped
        bus.publish_report(report(ReportKind::ThresholdViolation)); // dropped
        bus.publish_report(report(ReportKind::SuspiciousBehavior)); // delivered

        let got: Vec<ReportKind> = sub.drain().into_iter().map(|r| r.kind).collect();
        assert_eq!(
            got,
            vec![
                ReportKind::ApplicationAttack,
                ReportKind::SuspiciousBehavior
            ]
        );
        assert_eq!(bus.dropped_events(), 2);
        let dropped = audit.by_category("ids.event_dropped");
        assert_eq!(dropped.len(), 2);
        assert!(dropped[0]
            .attr("detail")
            .unwrap()
            .contains("SensitiveDenial"));
    }

    #[test]
    fn injected_faults_drop_advisories_too() {
        use gaa_faults::{Fault, FaultPlan, FaultSite};

        let bus = EventBus::new();
        let sub = bus.subscribe_advisories();
        let plan = FaultPlan::builder(7)
            .fail_nth(FaultSite::EventBus, 0, Fault::Error)
            .build();
        bus.set_fault_injector(Arc::new(plan));

        bus.publish_advisory(IdsAdvisory::ThreatLevelChange {
            level: ThreatLevel::High,
        }); // dropped
        bus.publish_advisory(IdsAdvisory::ThresholdUpdate {
            parameter: "p".into(),
            value: 1.0,
        }); // delivered
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], IdsAdvisory::ThresholdUpdate { .. }));
        assert_eq!(bus.dropped_events(), 1);
    }

    #[test]
    fn bus_is_usable_across_threads() {
        let bus = EventBus::new();
        let sub = bus.subscribe_reports(None);
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            for _ in 0..10 {
                bus2.publish_report(report(ReportKind::SuspiciousBehavior));
            }
        });
        handle.join().unwrap();
        assert_eq!(sub.drain().len(), 10);
    }
}
