//! # gaa-faults — deterministic fault injection for the GAA pipeline
//!
//! The paper's value proposition is *real-time response before damage
//! occurs* (§3, §7). That only holds if the enforcement pipeline stays
//! correct when its own dependencies misbehave: a policy store that stops
//! reading, an evaluator that panics or hangs, a notifier that times out, an
//! IDS bus that drops events, a clock that skews, a connection that resets
//! mid-request, a CGI that bombs its resource limits.
//!
//! This crate provides the *injection* half of that story: a seeded
//! [`FaultPlan`] — a deterministic schedule of faults per injection site —
//! behind the [`FaultInjector`] trait that the production crates consult at
//! their hook points (`core::policy_store`, `core::registry`,
//! `audit::notify`, `ids::bus`, `httpd::{tcp,cgi,glue}`). The *degradation*
//! half (retrying/circuit-breaking notifiers, stale-serving policy cache,
//! per-phase deadlines, the `DegradationState` registry) lives with the
//! components it protects; `tests/chaos.rs` sweeps seeded plans through the
//! full Figure-1 flow and asserts the resilience invariants.
//!
//! Determinism is the point: every fault a plan injects is a pure function
//! of `(seed, site, call number)`, so a failing chaos run reproduces from
//! its seed alone. The crate deliberately depends on nothing above the lock
//! vendoring — every layer of the workspace can afford this dependency.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub mod net;
pub mod rng;

/// A place in the pipeline that consults the injector before doing work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `PolicyStore::system_policies` / `local_policies` (I/O layer).
    PolicyStore,
    /// A registered condition evaluator invocation (`core::registry`).
    Evaluator,
    /// A notification delivery attempt (`audit::notify`).
    Notifier,
    /// An IDS event-bus publish (`ids::bus`).
    EventBus,
    /// A clock read (`audit::time::SkewedClock`).
    Clock,
    /// Serving one accepted TCP connection (`httpd::tcp`).
    Tcp,
    /// One execution-control step of a running CGI (`httpd::server`).
    Cgi,
}

impl FaultSite {
    /// All sites, for iteration in tests and reports.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::PolicyStore,
        FaultSite::Evaluator,
        FaultSite::Notifier,
        FaultSite::EventBus,
        FaultSite::Clock,
        FaultSite::Tcp,
        FaultSite::Cgi,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::PolicyStore => "policy_store",
            FaultSite::Evaluator => "evaluator",
            FaultSite::Notifier => "notifier",
            FaultSite::EventBus => "event_bus",
            FaultSite::Clock => "clock",
            FaultSite::Tcp => "tcp",
            FaultSite::Cgi => "cgi",
        };
        f.write_str(s)
    }
}

/// What to inject at a site. Durations are plain milliseconds so this crate
/// stays dependency-free; the consuming component interprets them against
/// its own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation (I/O error, notifier outage, dropped bus event,
    /// mid-request TCP reset — whatever "failure" means at the site).
    Error,
    /// Panic inside the operation (evaluator bugs).
    Panic,
    /// The operation hangs for this many (virtual) milliseconds before
    /// completing; deadline machinery should cut it off.
    Hang(u64),
    /// The operation succeeds but takes this many extra milliseconds
    /// (notifier latency spike).
    Latency(u64),
    /// The clock reads skewed by this many signed milliseconds.
    SkewMs(i64),
    /// A CGI step reports pathological resource consumption, tripping
    /// mid-condition limits.
    ResourceBomb,
}

/// Decides, per call, whether a site experiences a fault.
///
/// Implementations must be cheap and thread-safe: hooks sit on request-hot
/// paths and are consulted even in production configurations (where the
/// injector is [`NoFaults`] and the check is a virtual call returning
/// `None`).
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// Consults the plan; `None` means "operate normally".
    fn fault_at(&self, site: FaultSite) -> Option<Fault>;
}

/// Shared injector handle, as stored by the production components.
pub type SharedInjector = Arc<dyn FaultInjector>;

/// The production injector: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn fault_at(&self, _site: FaultSite) -> Option<Fault> {
        None
    }
}

/// When a rule fires, relative to the site's own call counter (the first
/// call to a site is call `0`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Calls in `[from, to)`.
    Window { from: u64, to: u64 },
    /// Every call, independently, with this probability (deterministic in
    /// the plan seed).
    Probability(f64),
    /// Exactly call `n`.
    Nth(u64),
    /// Every call.
    Always,
}

#[derive(Debug, Clone)]
struct Rule {
    site: FaultSite,
    trigger: Trigger,
    fault: Fault,
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlanBuilder {
    /// Injects `fault` at `site` for calls `from..to` (end-exclusive).
    pub fn fail_window(mut self, site: FaultSite, from: u64, to: u64, fault: Fault) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Window { from, to },
            fault,
        });
        self
    }

    /// Injects `fault` at `site` on every call, independently, with
    /// probability `p` (drawn from the plan's seeded stream).
    pub fn fail_with_probability(mut self, site: FaultSite, p: f64, fault: Fault) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.rules.push(Rule {
            site,
            trigger: Trigger::Probability(p),
            fault,
        });
        self
    }

    /// Injects `fault` at `site` exactly on call `n`.
    pub fn fail_nth(mut self, site: FaultSite, n: u64, fault: Fault) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Nth(n),
            fault,
        });
        self
    }

    /// Injects `fault` at `site` on every call.
    pub fn fail_always(mut self, site: FaultSite, fault: Fault) -> Self {
        self.rules.push(Rule {
            site,
            trigger: Trigger::Always,
            fault,
        });
        self
    }

    /// Finalizes the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            rules: self.rules,
            state: Arc::new(Mutex::new(PlanState {
                counters: HashMap::new(),
                history: Vec::new(),
                disarmed: false,
            })),
        }
    }
}

#[derive(Debug)]
struct PlanState {
    /// Per-site call counters.
    counters: HashMap<FaultSite, u64>,
    /// Every injected fault: (site, call number, fault).
    history: Vec<(FaultSite, u64, Fault)>,
    /// When set, the plan stops injecting (fault window "cleared").
    disarmed: bool,
}

/// A deterministic, seeded schedule of faults.
///
/// Rules are consulted in insertion order; the first that fires wins for a
/// given call. Cloning shares state (call counters and history), so the
/// same plan handle can be wired into several components.
///
/// # Examples
///
/// ```rust
/// use gaa_faults::{Fault, FaultInjector, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::builder(42)
///     .fail_window(FaultSite::Notifier, 0, 3, Fault::Error)
///     .build();
/// assert_eq!(plan.fault_at(FaultSite::Notifier), Some(Fault::Error));
/// assert_eq!(plan.fault_at(FaultSite::PolicyStore), None);
/// ```
#[derive(Clone)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    state: Arc<Mutex<PlanState>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules.len())
            .field("injected", &self.state.lock().history.len())
            .finish()
    }
}

impl FaultPlan {
    /// Starts a plan over `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: Vec::new(),
        }
    }

    /// A plan that injects nothing (equivalent to [`NoFaults`] but
    /// shareable/disarmable like any plan).
    pub fn none() -> FaultPlan {
        FaultPlan::builder(0).build()
    }

    /// The seed the plan was built over.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Stops all further injection — "the faults clear". Recovery paths
    /// (circuit half-open probes, cache refreshes) then see a healthy
    /// dependency again.
    pub fn disarm(&self) {
        self.state.lock().disarmed = true;
    }

    /// Resumes injection after [`FaultPlan::disarm`].
    pub fn rearm(&self) {
        self.state.lock().disarmed = false;
    }

    /// Number of faults injected so far at `site`.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.state
            .lock()
            .history
            .iter()
            .filter(|(s, _, _)| *s == site)
            .count() as u64
    }

    /// Total faults injected so far.
    pub fn injected_total(&self) -> u64 {
        self.state.lock().history.len() as u64
    }

    /// Every injection so far: `(site, call number, fault)`, in order.
    pub fn history(&self) -> Vec<(FaultSite, u64, Fault)> {
        self.state.lock().history.clone()
    }

    /// Deterministic per-(seed, site, call) coin for probability rules.
    fn coin(&self, site: FaultSite, call: u64, rule_index: usize) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((site as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(call.wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(rule_index as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FaultInjector for FaultPlan {
    fn fault_at(&self, site: FaultSite) -> Option<Fault> {
        let mut state = self.state.lock();
        let counter = state.counters.entry(site).or_insert(0);
        let call = *counter;
        *counter += 1;
        if state.disarmed {
            return None;
        }
        for (index, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Window { from, to } => call >= from && call < to,
                Trigger::Nth(n) => call == n,
                Trigger::Always => true,
                Trigger::Probability(p) => self.coin(site, call, index) < p,
            };
            if fires {
                state.history.push((site, call, rule.fault));
                return Some(rule.fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_open_and_close() {
        let plan = FaultPlan::builder(1)
            .fail_window(FaultSite::PolicyStore, 2, 4, Fault::Error)
            .build();
        let results: Vec<_> = (0..6)
            .map(|_| plan.fault_at(FaultSite::PolicyStore))
            .collect();
        assert_eq!(
            results,
            vec![
                None,
                None,
                Some(Fault::Error),
                Some(Fault::Error),
                None,
                None
            ]
        );
        assert_eq!(plan.injected_at(FaultSite::PolicyStore), 2);
    }

    #[test]
    fn counters_are_per_site() {
        let plan = FaultPlan::builder(1)
            .fail_nth(FaultSite::Notifier, 0, Fault::Error)
            .build();
        assert_eq!(plan.fault_at(FaultSite::Evaluator), None);
        assert_eq!(plan.fault_at(FaultSite::Notifier), Some(Fault::Error));
        assert_eq!(plan.fault_at(FaultSite::Notifier), None);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let outcomes = |seed| {
            let plan = FaultPlan::builder(seed)
                .fail_with_probability(FaultSite::EventBus, 0.5, Fault::Error)
                .build();
            (0..64)
                .map(|_| plan.fault_at(FaultSite::EventBus).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(7), outcomes(7));
        assert_ne!(outcomes(7), outcomes(8));
        let hits = outcomes(7).iter().filter(|h| **h).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws: {hits}");
    }

    #[test]
    fn disarm_stops_injection_and_rearm_resumes() {
        let plan = FaultPlan::builder(3)
            .fail_always(FaultSite::Tcp, Fault::Error)
            .build();
        assert!(plan.fault_at(FaultSite::Tcp).is_some());
        plan.disarm();
        assert!(plan.fault_at(FaultSite::Tcp).is_none());
        plan.rearm();
        assert!(plan.fault_at(FaultSite::Tcp).is_some());
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::builder(4)
            .fail_nth(FaultSite::Cgi, 1, Fault::ResourceBomb)
            .build();
        let other = plan.clone();
        assert_eq!(plan.fault_at(FaultSite::Cgi), None);
        assert_eq!(other.fault_at(FaultSite::Cgi), Some(Fault::ResourceBomb));
        assert_eq!(plan.injected_total(), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::builder(5)
            .fail_nth(FaultSite::Evaluator, 0, Fault::Panic)
            .fail_always(FaultSite::Evaluator, Fault::Hang(50))
            .build();
        assert_eq!(plan.fault_at(FaultSite::Evaluator), Some(Fault::Panic));
        assert_eq!(plan.fault_at(FaultSite::Evaluator), Some(Fault::Hang(50)));
    }

    #[test]
    fn no_faults_injects_nothing() {
        for site in FaultSite::ALL {
            assert_eq!(NoFaults.fault_at(site), None);
        }
    }
}
