//! Network fault surface: seeded per-link chaos for `gaa-swarm`.
//!
//! The [`FaultPlan`](crate::FaultPlan) model — a deterministic schedule of
//! faults per injection site — covers *call-shaped* dependencies (a store
//! read, a notifier delivery). Datagram networks fail differently: links
//! partition asymmetrically, packets are dropped, duplicated, reordered,
//! delayed and corrupted *per message*, and the interesting behaviours are
//! properties of a (sender, receiver) pair, not of a single component.
//!
//! [`NetFaultPlan`] is the datagram-shaped sibling: every delivery decision
//! is a pure function of `(seed, from, to, message number)`, plus an explicit
//! mutable partition set so chaos drivers can cut and heal links
//! mid-scenario. The in-process swarm transport consults it for every
//! datagram; production transports use [`NetFaultPlan::none`] and pay one
//! branch.
//!
//! Determinism is inherited from the crate's contract: a failing multi-node
//! convergence run reproduces from its seed and its partition script alone.

use crate::rng::mix;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// What happens to one datagram on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The datagram is silently dropped.
    Drop,
    /// The datagram is delivered twice (replay-protection exercise).
    Duplicate,
    /// The datagram is delivered *ahead* of previously queued traffic
    /// (reordering without needing a real clock).
    Reorder,
    /// Delivery is deferred by this many virtual milliseconds.
    Delay(u64),
    /// The payload is corrupted (digest-rejection exercise): byte at
    /// `index % len` is XORed with `mask` (mask is never zero).
    Corrupt {
        /// Which byte to damage (taken modulo the payload length).
        index: u32,
        /// XOR mask applied to that byte.
        mask: u8,
    },
}

#[derive(Debug, Clone, Copy)]
struct LinkRule {
    /// Probability in `[0, 1]` that the rule fires for a given datagram.
    probability: f64,
    fault: NetFault,
}

#[derive(Debug, Default)]
struct NetState {
    /// Directed severed links `(from, to)`. A symmetric partition inserts
    /// both directions.
    severed: HashSet<(String, String)>,
    /// Per-link datagram counters, keyed by `(from, to)`.
    counters: std::collections::HashMap<(String, String), u64>,
    /// Every fault injected: `(from, to, message number, fault)`.
    history: Vec<(String, String, u64, NetFault)>,
    disarmed: bool,
}

/// A deterministic, seeded schedule of per-link datagram faults plus an
/// explicit partition set.
///
/// Cloning shares state (partitions, counters, history) so one plan handle
/// can be wired into every node's transport and scripted from the chaos
/// driver.
///
/// # Examples
///
/// ```rust
/// use gaa_faults::net::{NetFault, NetFaultPlan};
///
/// let plan = NetFaultPlan::builder(42).duplicate(0.5).build();
/// plan.partition_both("n0", "n2");
/// assert_eq!(plan.deliver("n0", "n2", b"x"), Vec::<Vec<u8>>::new());
/// plan.heal_all();
/// assert!(!plan.deliver("n0", "n2", b"x").is_empty());
/// ```
#[derive(Clone)]
pub struct NetFaultPlan {
    seed: u64,
    rules: Vec<LinkRule>,
    state: Arc<Mutex<NetState>>,
}

impl fmt::Debug for NetFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("NetFaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules.len())
            .field("severed_links", &state.severed.len())
            .field("injected", &state.history.len())
            .finish()
    }
}

/// Builder for [`NetFaultPlan`].
#[derive(Debug, Clone)]
pub struct NetFaultPlanBuilder {
    seed: u64,
    rules: Vec<LinkRule>,
}

impl NetFaultPlanBuilder {
    fn rule(mut self, probability: f64, fault: NetFault) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        self.rules.push(LinkRule { probability, fault });
        self
    }

    /// Drops each datagram independently with probability `p`.
    pub fn drop(self, p: f64) -> Self {
        self.rule(p, NetFault::Drop)
    }

    /// Duplicates each datagram independently with probability `p`.
    pub fn duplicate(self, p: f64) -> Self {
        self.rule(p, NetFault::Duplicate)
    }

    /// Reorders each datagram (delivers it ahead of queued traffic)
    /// independently with probability `p`.
    pub fn reorder(self, p: f64) -> Self {
        self.rule(p, NetFault::Reorder)
    }

    /// Delays each datagram by `ms` virtual milliseconds with probability
    /// `p`.
    pub fn delay(self, p: f64, ms: u64) -> Self {
        self.rule(p, NetFault::Delay(ms))
    }

    /// Corrupts one payload byte with probability `p` (byte index and mask
    /// are drawn deterministically per datagram).
    pub fn corrupt(self, p: f64) -> Self {
        self.rule(
            p,
            NetFault::Corrupt {
                index: 0,
                mask: 0x80,
            },
        )
    }

    /// Finalizes the plan.
    pub fn build(self) -> NetFaultPlan {
        NetFaultPlan {
            seed: self.seed,
            rules: self.rules,
            state: Arc::new(Mutex::new(NetState::default())),
        }
    }
}

impl NetFaultPlan {
    /// Starts a plan over `seed`.
    pub fn builder(seed: u64) -> NetFaultPlanBuilder {
        NetFaultPlanBuilder {
            seed,
            rules: Vec::new(),
        }
    }

    /// A plan that never interferes (production transports).
    pub fn none() -> NetFaultPlan {
        NetFaultPlan::builder(0).build()
    }

    /// The seed the plan was built over.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Severs the directed link `from → to`.
    pub fn partition(&self, from: &str, to: &str) {
        self.state
            .lock()
            .severed
            .insert((from.to_string(), to.to_string()));
    }

    /// Severs both directions between `a` and `b`.
    pub fn partition_both(&self, a: &str, b: &str) {
        let mut state = self.state.lock();
        state.severed.insert((a.to_string(), b.to_string()));
        state.severed.insert((b.to_string(), a.to_string()));
    }

    /// Isolates `node` from every other endpoint it has ever exchanged a
    /// datagram with, both directions.
    pub fn isolate(&self, node: &str, peers: &[&str]) {
        let mut state = self.state.lock();
        for peer in peers {
            state.severed.insert((node.to_string(), peer.to_string()));
            state.severed.insert((peer.to_string(), node.to_string()));
        }
    }

    /// Restores the directed link `from → to`.
    pub fn heal(&self, from: &str, to: &str) {
        self.state
            .lock()
            .severed
            .remove(&(from.to_string(), to.to_string()));
    }

    /// Restores every severed link.
    pub fn heal_all(&self) {
        self.state.lock().severed.clear();
    }

    /// True when the directed link `from → to` is currently severed.
    pub fn is_partitioned(&self, from: &str, to: &str) -> bool {
        self.state
            .lock()
            .severed
            .contains(&(from.to_string(), to.to_string()))
    }

    /// Stops all probabilistic injection (partitions stay scripted).
    pub fn disarm(&self) {
        self.state.lock().disarmed = true;
    }

    /// Resumes probabilistic injection after [`NetFaultPlan::disarm`].
    pub fn rearm(&self) {
        self.state.lock().disarmed = false;
    }

    /// Number of faults injected so far (partition drops are not counted —
    /// they are scripted, not drawn).
    pub fn injected_total(&self) -> u64 {
        self.state.lock().history.len() as u64
    }

    /// Every probabilistic injection so far, in order.
    pub fn history(&self) -> Vec<(String, String, u64, NetFault)> {
        self.state.lock().history.clone()
    }

    /// Deterministic per-(seed, link, message, rule, draw) coin.
    fn coin(&self, from: &str, to: &str, msg: u64, salt: u64) -> f64 {
        let mut acc = self.seed ^ 0x6a09_e667_f3bc_c909;
        for byte in from.as_bytes().iter().chain(to.as_bytes()) {
            acc = mix(acc ^ u64::from(*byte));
        }
        let x = mix(acc ^ msg.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt);
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Runs one datagram through the plan. Returns the payload copies the
    /// receiver should see *now*, in order; an empty vector means the
    /// datagram was dropped (partition or `Drop` fault). `Delay` and
    /// `Reorder` are reported via [`Verdict`] for transports that keep
    /// queues — this convenience entry point treats `Delay` as deliver and
    /// `Reorder` as deliver (single-datagram view).
    pub fn deliver(&self, from: &str, to: &str, payload: &[u8]) -> Vec<Vec<u8>> {
        match self.verdict(from, to, payload) {
            Verdict::Drop => Vec::new(),
            Verdict::Deliver(bytes) | Verdict::DeliverAhead(bytes) | Verdict::Delayed(bytes, _) => {
                vec![bytes]
            }
            Verdict::Duplicate(bytes) => vec![bytes.clone(), bytes],
        }
    }

    /// Full verdict for one datagram on `from → to`. Transports with real
    /// queues use this to honour `Reorder` (enqueue at the front) and
    /// `Delay` (hold until the virtual deadline).
    pub fn verdict(&self, from: &str, to: &str, payload: &[u8]) -> Verdict {
        let mut state = self.state.lock();
        let msg = {
            let counter = state
                .counters
                .entry((from.to_string(), to.to_string()))
                .or_insert(0);
            let current = *counter;
            *counter += 1;
            current
        };
        if state.severed.contains(&(from.to_string(), to.to_string())) {
            return Verdict::Drop;
        }
        if state.disarmed {
            return Verdict::Deliver(payload.to_vec());
        }
        for (index, rule) in self.rules.iter().enumerate() {
            if self.coin(from, to, msg, index as u64) >= rule.probability {
                continue;
            }
            let fault = match rule.fault {
                NetFault::Corrupt { .. } => NetFault::Corrupt {
                    // Draw the damaged byte and mask from the same stream;
                    // mask 0 would be a no-op corruption, so force a bit.
                    index: (self.coin(from, to, msg, 0xC0_DE) * 4096.0) as u32,
                    mask: ((self.coin(from, to, msg, 0xFACE) * 255.0) as u8) | 0x01,
                },
                other => other,
            };
            state
                .history
                .push((from.to_string(), to.to_string(), msg, fault));
            drop(state);
            return match fault {
                NetFault::Drop => Verdict::Drop,
                NetFault::Duplicate => Verdict::Duplicate(payload.to_vec()),
                NetFault::Reorder => Verdict::DeliverAhead(payload.to_vec()),
                NetFault::Delay(ms) => Verdict::Delayed(payload.to_vec(), ms),
                NetFault::Corrupt { index, mask } => {
                    let mut bytes = payload.to_vec();
                    if !bytes.is_empty() {
                        let at = (index as usize) % bytes.len();
                        bytes[at] ^= mask;
                    }
                    Verdict::Deliver(bytes)
                }
            };
        }
        Verdict::Deliver(payload.to_vec())
    }
}

/// What the transport should do with one datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver normally (payload possibly corrupted).
    Deliver(Vec<u8>),
    /// Deliver twice.
    Duplicate(Vec<u8>),
    /// Deliver ahead of already-queued traffic (reordering).
    DeliverAhead(Vec<u8>),
    /// Hold for this many virtual milliseconds, then deliver.
    Delayed(Vec<u8>, u64),
    /// Never deliver.
    Drop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_drops_and_heals() {
        let plan = NetFaultPlan::none();
        plan.partition_both("a", "b");
        assert!(plan.is_partitioned("a", "b"));
        assert!(plan.is_partitioned("b", "a"));
        assert_eq!(plan.deliver("a", "b", b"x"), Vec::<Vec<u8>>::new());
        plan.heal_all();
        assert_eq!(plan.deliver("a", "b", b"x"), vec![b"x".to_vec()]);
    }

    #[test]
    fn directed_partition_is_asymmetric() {
        let plan = NetFaultPlan::none();
        plan.partition("a", "b");
        assert!(plan.deliver("a", "b", b"x").is_empty());
        assert_eq!(plan.deliver("b", "a", b"x").len(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let plan = NetFaultPlan::builder(1).duplicate(1.0).build();
        assert_eq!(plan.deliver("a", "b", b"q").len(), 2);
        assert_eq!(plan.injected_total(), 1);
    }

    #[test]
    fn corrupt_fault_changes_exactly_one_byte() {
        let plan = NetFaultPlan::builder(2).corrupt(1.0).build();
        let out = plan.deliver("a", "b", b"hello");
        assert_eq!(out.len(), 1);
        let diff: usize = out[0]
            .iter()
            .zip(b"hello".iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1, "exactly one byte corrupted: {:?}", out[0]);
    }

    #[test]
    fn verdicts_are_deterministic_per_seed() {
        let run = |seed| {
            let plan = NetFaultPlan::builder(seed)
                .drop(0.2)
                .duplicate(0.2)
                .reorder(0.2)
                .build();
            (0..64)
                .map(|_| format!("{:?}", plan.verdict("a", "b", b"payload")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(9));
    }

    #[test]
    fn disarm_keeps_partitions_but_stops_draws() {
        let plan = NetFaultPlan::builder(3).drop(1.0).build();
        plan.partition("a", "b");
        plan.disarm();
        assert!(plan.deliver("a", "b", b"x").is_empty(), "still severed");
        assert_eq!(plan.deliver("c", "d", b"x").len(), 1, "no drop draw");
        plan.rearm();
        assert!(plan.deliver("c", "d", b"x").is_empty());
    }

    #[test]
    fn delay_and_reorder_surface_in_verdicts() {
        let delayed = NetFaultPlan::builder(4).delay(1.0, 250).build();
        match delayed.verdict("a", "b", b"x") {
            Verdict::Delayed(bytes, ms) => {
                assert_eq!(bytes, b"x".to_vec());
                assert_eq!(ms, 250);
            }
            other => panic!("expected Delayed, got {other:?}"),
        }
        let reordered = NetFaultPlan::builder(4).reorder(1.0).build();
        assert_eq!(
            reordered.verdict("a", "b", b"x"),
            Verdict::DeliverAhead(b"x".to_vec())
        );
    }

    #[test]
    fn clones_share_partitions_and_history() {
        let plan = NetFaultPlan::builder(5).drop(1.0).build();
        let other = plan.clone();
        plan.partition("a", "b");
        assert!(other.is_partitioned("a", "b"));
        let _ = other.deliver("c", "d", b"x");
        assert_eq!(plan.injected_total(), 1);
    }
}
