//! Seeded deterministic pseudo-randomness shared by the fault and schedule
//! machinery.
//!
//! Every "random" choice the workspace's testing infrastructure makes — a
//! probabilistic fault coin, a random thread schedule in `gaa-race`, a
//! seeded workload shuffle — must reproduce from a printed `u64` seed alone.
//! This module is the one generator they all share: a [SplitMix64] stream
//! (the same finalizer [`FaultPlan`](crate::FaultPlan) has always used for
//! its per-call coins), plus a stateless [`mix`] for hashing a tuple of
//! counters into an independent draw.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// Stateless SplitMix64 finalizer: a well-mixed `u64` from any `u64`.
///
/// Feeding it `seed ^ counter`-style combinations yields independent,
/// reproducible draws without carrying generator state around.
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A tiny seeded SplitMix64 stream.
///
/// Not cryptographic, not [`Send`]-shared — one owner draws from it. Clone
/// it to fork a stream that continues identically from the current state.
///
/// # Examples
///
/// ```rust
/// use gaa_faults::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.pick(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from an empty range");
        // Multiply-shift bounded draw: bias is at most n / 2^64, far below
        // anything observable at test scale.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn pick_stays_in_range_and_covers_it() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = rng.pick(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s), "all cells hit over 200 draws");
    }

    #[test]
    fn mix_spreads_neighbouring_inputs() {
        assert_ne!(mix(0), mix(1));
        assert_ne!(mix(1), mix(2));
        // Same input, same output: usable as a stateless tuple hash.
        assert_eq!(mix(99), mix(99));
    }
}
