//! `gaa-race`: deterministic schedule exploration and race/deadlock
//! detection for the GAA serving core.
//!
//! Three integrated layers:
//!
//! 1. **Instrumented sync shim** ([`sync`]): drop-in `Mutex`, `RwLock`,
//!    `Condvar` and atomic types the serving crates use instead of raw
//!    `parking_lot`/`std::sync::atomic`. In normal builds they delegate
//!    transparently; under the `record` feature, threads inside a
//!    model-checking session have every operation scheduled and logged.
//! 2. **Deterministic scheduler + explorer** ([`explore`], `record` only):
//!    runs closed-world scenarios under bounded-exhaustive DFS
//!    interleaving exploration (preemption bound) and seeded random
//!    schedules. Failures replay from the printed schedule or seed alone.
//! 3. **Detectors** ([`detect`]): a vector-clock (happens-before) data-race
//!    detector and a lock-acquisition-graph deadlock detector over the
//!    recorded event log, reporting minimized traces.
//!
//! Concrete scenarios over the real serving types (decision cache, worker
//! pool, circuit breaker, threat monitor) live in `gaa-bench` and the
//! workspace integration tests; this crate stays dependency-light so the
//! serving crates can depend on it.

#![deny(missing_docs)]

pub mod detect;
pub mod event;
#[cfg(feature = "record")]
pub mod explore;
#[cfg(feature = "record")]
mod session;
pub mod sync;

pub use event::{render_trace, Event, MemOrder, Op};
#[cfg(feature = "record")]
pub use explore::{Explorer, Report, Violation};
#[cfg(feature = "record")]
pub use session::Exec;
pub use sync::{label, object_name};
