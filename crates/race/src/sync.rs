//! The instrumented synchronization shim.
//!
//! Drop-in replacements for the workspace's sync vocabulary — [`Mutex`],
//! [`RwLock`], [`Condvar`], [`AtomicU64`]/[`AtomicUsize`]/[`AtomicBool`] —
//! plus [`Traced`], a deliberately *unsynchronized-looking* cell for
//! modelling plain shared accesses. Migrated crates (`gaa-core`,
//! `gaa-httpd`, `gaa-audit`, `gaa-ids`, `gaa-conditions`) import these
//! instead of `parking_lot` / `std::sync::atomic` directly.
//!
//! Two personalities:
//!
//! - **Without the `record` feature** (every production build): each type is
//!   a thin delegation to `parking_lot` or `std::sync::atomic`. No ids, no
//!   thread-locals, no logging — the request path pays nothing.
//! - **With `record`**, when the calling thread belongs to a model-checking
//!   [`crate::session::Session`]: every operation first hits a scheduling
//!   decision point ([yield]), then executes, then lands in the event log
//!   with its object id and memory ordering. Lock acquisition is rewritten
//!   as a cooperative `try_lock`/park loop so the deterministic scheduler —
//!   never the OS — decides who wins a race. Threads outside a session
//!   behave exactly like the production build even with `record` on.
//!
//! [yield]: crate::session::Session::yield_point

use std::sync::atomic::Ordering;

#[cfg(feature = "record")]
use crate::event::{MemOrder, Op};
#[cfg(feature = "record")]
use crate::session::{self, BlockOn};

#[cfg(feature = "record")]
mod registry {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static NAMES: OnceLock<Mutex<HashMap<u64, String>>> = OnceLock::new();

    fn names() -> &'static Mutex<HashMap<u64, String>> {
        NAMES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    pub(super) fn alloc(kind: &str, name: Option<&str>) -> u64 {
        // ordering: Relaxed suffices — the id only needs to be unique, no
        // other memory is published through it.
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let label = match name {
            Some(name) => name.to_string(),
            None => format!("{kind}#{id}"),
        };
        names()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, label);
        id
    }

    pub(super) fn lookup(id: u64) -> Option<String> {
        names()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }
}

/// Human-readable name of a shim object id, for traces. Falls back to
/// `obj#id` for unknown ids and in non-`record` builds.
pub fn object_name(id: u64) -> String {
    #[cfg(feature = "record")]
    if let Some(name) = registry::lookup(id) {
        return name;
    }
    format!("obj#{id}")
}

/// Records a free-form annotation into the current session's event log, for
/// trace readability ("worker picked up conn", "epoch bumped"). A no-op
/// outside a session and in non-`record` builds.
pub fn label(text: impl Into<String>) {
    #[cfg(feature = "record")]
    if let Some(ctx) = session::current() {
        ctx.session.record(ctx.tid, Op::Label(text.into()));
        return;
    }
    let _ = text.into();
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion with the `parking_lot` API shape (`lock()` returns a
/// guard directly, no poisoning).
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "record")]
    id: u64,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "record")]
            id: registry::alloc("mutex", None),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// A new mutex with a human-readable name for traces.
    pub fn named(name: &str, value: T) -> Mutex<T> {
        #[cfg(not(feature = "record"))]
        let _ = name;
        Mutex {
            #[cfg(feature = "record")]
            id: registry::alloc("mutex", Some(name)),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking (cooperatively, under a session) until
    /// it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            loop {
                ctx.session.yield_point(ctx.tid);
                if let Some(inner) = self.inner.try_lock() {
                    ctx.session.record(ctx.tid, Op::MutexLock(self.id));
                    return MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        traced: true,
                    };
                }
                ctx.session.block_on(ctx.tid, BlockOn::Lock(self.id));
            }
        }
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock()),
            #[cfg(feature = "record")]
            traced: false,
        }
    }

    /// A single acquisition attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            let inner = self.inner.try_lock()?;
            ctx.session.record(ctx.tid, Op::MutexLock(self.id));
            return Some(MutexGuard {
                lock: self,
                inner: Some(inner),
                traced: true,
            });
        }
        Some(MutexGuard {
            lock: self,
            inner: Some(self.inner.try_lock()?),
            #[cfg(feature = "record")]
            traced: false,
        })
    }

    /// Direct access through an exclusive reference (no locking, nothing
    /// recorded — exclusivity is proven statically).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]; releasing records the unlock event.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    #[cfg(feature = "record")]
    traced: bool,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// The mutex this guard locks (used by [`Condvar::wait`]).
    fn mutex(&self) -> &'a Mutex<T> {
        self.lock
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(feature = "record")]
        if self.traced {
            if let Some(ctx) = session::current() {
                ctx.session.record(ctx.tid, Op::MutexUnlock(self.lock.id));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock with the `parking_lot` API shape.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "record")]
    id: u64,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "record")]
            id: registry::alloc("rwlock", None),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// A new lock with a human-readable name for traces.
    pub fn named(name: &str, value: T) -> RwLock<T> {
        #[cfg(not(feature = "record"))]
        let _ = name;
        RwLock {
            #[cfg(feature = "record")]
            id: registry::alloc("rwlock", Some(name)),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            loop {
                ctx.session.yield_point(ctx.tid);
                if let Some(inner) = self.inner.try_read() {
                    ctx.session.record(ctx.tid, Op::RwReadLock(self.id));
                    return RwLockReadGuard {
                        lock: self,
                        inner: Some(inner),
                        traced: true,
                    };
                }
                ctx.session.block_on(ctx.tid, BlockOn::RwRead(self.id));
            }
        }
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read()),
            #[cfg(feature = "record")]
            traced: false,
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            loop {
                ctx.session.yield_point(ctx.tid);
                if let Some(inner) = self.inner.try_write() {
                    ctx.session.record(ctx.tid, Op::RwWriteLock(self.id));
                    return RwLockWriteGuard {
                        lock: self,
                        inner: Some(inner),
                        traced: true,
                    };
                }
                ctx.session.block_on(ctx.tid, BlockOn::RwWrite(self.id));
            }
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write()),
            #[cfg(feature = "record")]
            traced: false,
        }
    }

    /// Direct access through an exclusive reference.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    #[cfg(feature = "record")]
    traced: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(feature = "record")]
        if self.traced {
            if let Some(ctx) = session::current() {
                ctx.session.record(ctx.tid, Op::RwReadUnlock(self.lock.id));
            }
        }
        #[cfg(not(feature = "record"))]
        let _ = self.lock;
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    #[cfg(feature = "record")]
    traced: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        #[cfg(feature = "record")]
        if self.traced {
            if let Some(ctx) = session::current() {
                ctx.session.record(ctx.tid, Op::RwWriteUnlock(self.lock.id));
            }
        }
        #[cfg(not(feature = "record"))]
        let _ = self.lock;
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable paired with the shim [`Mutex`].
///
/// The vendored `parking_lot` carries no condvar, so the uninstrumented
/// path is built on `std::sync`: a generation counter guarded by an internal
/// mutex. A waiter snapshots the generation *before* releasing the caller's
/// mutex (so a notify between release and park cannot be lost) and wakes
/// once the generation moves. Under a session, waits and notifies are
/// scheduler events instead, with the generation kept by the session.
///
/// As with any condvar, callers must re-check their predicate in a loop —
/// wakeups may be spurious.
pub struct Condvar {
    #[cfg(feature = "record")]
    id: u64,
    generation: std::sync::Mutex<u64>,
    wake: std::sync::Condvar,
}

impl Condvar {
    /// A new condvar.
    pub fn new() -> Condvar {
        Condvar {
            #[cfg(feature = "record")]
            id: registry::alloc("condvar", None),
            generation: std::sync::Mutex::new(0),
            wake: std::sync::Condvar::new(),
        }
    }

    /// A new condvar with a human-readable name for traces.
    pub fn named(name: &str) -> Condvar {
        #[cfg(not(feature = "record"))]
        let _ = name;
        Condvar {
            #[cfg(feature = "record")]
            id: registry::alloc("condvar", Some(name)),
            generation: std::sync::Mutex::new(0),
            wake: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard`, waits for a notification, and
    /// re-acquires the mutex.
    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.mutex();
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.record(ctx.tid, Op::CondvarWait(self.id));
            drop(guard); // records the paired unlock, wakes lock waiters
            ctx.session.condvar_wait(ctx.tid, self.id);
            return lock.lock();
        }
        // Snapshot the generation while still holding the caller's mutex:
        // a notifier bumps it under the same internal lock, so a notify
        // racing this release-then-park cannot be missed.
        let generation = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        let seen = *generation;
        drop(guard);
        let mut generation = generation;
        while *generation == seen {
            generation = self
                .wake
                .wait(generation)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(generation);
        lock.lock()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            ctx.session.record(ctx.tid, Op::CondvarNotify(self.id));
            ctx.session.condvar_notify(self.id, true);
            return;
        }
        let mut generation = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *generation += 1;
        drop(generation);
        self.wake.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            ctx.session.record(ctx.tid, Op::CondvarNotify(self.id));
            ctx.session.condvar_notify(self.id, false);
            return;
        }
        let mut generation = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *generation += 1;
        drop(generation);
        self.wake.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            #[cfg(feature = "record")]
            id: u64,
            inner: $std,
        }

        impl $name {
            /// A new atomic with the given initial value.
            pub fn new(value: $prim) -> $name {
                $name {
                    #[cfg(feature = "record")]
                    id: registry::alloc(stringify!($name), None),
                    inner: <$std>::new(value),
                }
            }

            /// A new atomic with a human-readable name for traces.
            pub fn named(name: &str, value: $prim) -> $name {
                #[cfg(not(feature = "record"))]
                let _ = name;
                $name {
                    #[cfg(feature = "record")]
                    id: registry::alloc(stringify!($name), Some(name)),
                    inner: <$std>::new(value),
                }
            }

            /// Atomic load.
            pub fn load(&self, ordering: Ordering) -> $prim {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    let value = self.inner.load(ordering);
                    ctx.session
                        .record(ctx.tid, Op::AtomicLoad(self.id, MemOrder::from_std(ordering)));
                    return value;
                }
                self.inner.load(ordering)
            }

            /// Atomic store.
            pub fn store(&self, value: $prim, ordering: Ordering) {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    self.inner.store(value, ordering);
                    ctx.session
                        .record(ctx.tid, Op::AtomicStore(self.id, MemOrder::from_std(ordering)));
                    return;
                }
                self.inner.store(value, ordering)
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    let previous = self.inner.fetch_add(value, ordering);
                    ctx.session
                        .record(ctx.tid, Op::AtomicRmw(self.id, MemOrder::from_std(ordering)));
                    return previous;
                }
                self.inner.fetch_add(value, ordering)
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    let previous = self.inner.fetch_sub(value, ordering);
                    ctx.session
                        .record(ctx.tid, Op::AtomicRmw(self.id, MemOrder::from_std(ordering)));
                    return previous;
                }
                self.inner.fetch_sub(value, ordering)
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, value: $prim, ordering: Ordering) -> $prim {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    let previous = self.inner.swap(value, ordering);
                    ctx.session
                        .record(ctx.tid, Op::AtomicRmw(self.id, MemOrder::from_std(ordering)));
                    return previous;
                }
                self.inner.swap(value, ordering)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                #[cfg(feature = "record")]
                if let Some(ctx) = session::current() {
                    ctx.session.yield_point(ctx.tid);
                    let result = self.inner.compare_exchange(current, new, success, failure);
                    let op = match result {
                        Ok(_) => Op::AtomicRmw(self.id, MemOrder::from_std(success)),
                        // A failed CAS is only a load at the failure ordering.
                        Err(_) => Op::AtomicLoad(self.id, MemOrder::from_std(failure)),
                    };
                    ctx.session.record(ctx.tid, op);
                    return result;
                }
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Direct access through an exclusive reference.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl Default for $name {
            fn default() -> $name {
                $name::new(<$prim>::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

atomic_int!(
    /// Instrumented `u64` atomic.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
atomic_int!(
    /// Instrumented `usize` atomic.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);

/// Instrumented `bool` atomic.
pub struct AtomicBool {
    #[cfg(feature = "record")]
    id: u64,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new atomic with the given initial value.
    pub fn new(value: bool) -> AtomicBool {
        AtomicBool {
            #[cfg(feature = "record")]
            id: registry::alloc("AtomicBool", None),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// A new atomic with a human-readable name for traces.
    pub fn named(name: &str, value: bool) -> AtomicBool {
        #[cfg(not(feature = "record"))]
        let _ = name;
        AtomicBool {
            #[cfg(feature = "record")]
            id: registry::alloc("AtomicBool", Some(name)),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Atomic load.
    pub fn load(&self, ordering: Ordering) -> bool {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            let value = self.inner.load(ordering);
            ctx.session.record(
                ctx.tid,
                Op::AtomicLoad(self.id, MemOrder::from_std(ordering)),
            );
            return value;
        }
        self.inner.load(ordering)
    }

    /// Atomic store.
    pub fn store(&self, value: bool, ordering: Ordering) {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            self.inner.store(value, ordering);
            ctx.session.record(
                ctx.tid,
                Op::AtomicStore(self.id, MemOrder::from_std(ordering)),
            );
            return;
        }
        self.inner.store(value, ordering)
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, value: bool, ordering: Ordering) -> bool {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            let previous = self.inner.swap(value, ordering);
            ctx.session.record(
                ctx.tid,
                Op::AtomicRmw(self.id, MemOrder::from_std(ordering)),
            );
            return previous;
        }
        self.inner.swap(value, ordering)
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Traced cell
// ---------------------------------------------------------------------------

/// A shared cell whose accesses are recorded as **plain** (unsynchronized)
/// reads and writes.
///
/// Internally it is a mutex (no UB is possible), but the event log shows
/// `CellRead`/`CellWrite` with no synchronization — exactly what the
/// vector-clock detector needs to flag a modeled data race. Use it in
/// scenarios to represent state an implementation would have shared without
/// a lock: if every pair of conflicting accesses is ordered by *other*
/// recorded synchronization, the detector stays quiet; if not, the race is
/// reported with a minimized trace. Clones share the same location.
pub struct Traced<T> {
    #[cfg(feature = "record")]
    id: u64,
    inner: std::sync::Arc<parking_lot::Mutex<T>>,
}

impl<T: Copy> Traced<T> {
    /// A new traced cell.
    pub fn new(value: T) -> Traced<T> {
        Traced {
            #[cfg(feature = "record")]
            id: registry::alloc("cell", None),
            inner: std::sync::Arc::new(parking_lot::Mutex::new(value)),
        }
    }

    /// A new traced cell with a human-readable name for traces.
    pub fn named(name: &str, value: T) -> Traced<T> {
        #[cfg(not(feature = "record"))]
        let _ = name;
        Traced {
            #[cfg(feature = "record")]
            id: registry::alloc("cell", Some(name)),
            inner: std::sync::Arc::new(parking_lot::Mutex::new(value)),
        }
    }

    /// A plain read of the cell.
    pub fn get(&self) -> T {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            let value = *self.inner.lock();
            ctx.session.record(ctx.tid, Op::CellRead(self.id));
            return value;
        }
        *self.inner.lock()
    }

    /// A plain write of the cell.
    pub fn set(&self, value: T) {
        #[cfg(feature = "record")]
        if let Some(ctx) = session::current() {
            ctx.session.yield_point(ctx.tid);
            *self.inner.lock() = value;
            ctx.session.record(ctx.tid, Op::CellWrite(self.id));
            return;
        }
        *self.inner.lock() = value;
    }

    /// The cell's shim object id (for focusing traces on it).
    #[cfg(feature = "record")]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl<T> Clone for Traced<T> {
    fn clone(&self) -> Traced<T> {
        Traced {
            #[cfg(feature = "record")]
            id: self.id,
            inner: std::sync::Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for Traced<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Traced").field(&*self.inner.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_mutex_and_rwlock_outside_sessions() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn passthrough_atomics_and_cells() {
        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(n.load(Ordering::Acquire), 7);
        assert_eq!(n.swap(0, Ordering::AcqRel), 7);
        assert_eq!(
            n.compare_exchange(0, 9, Ordering::SeqCst, Ordering::Relaxed),
            Ok(0)
        );
        let flag = AtomicBool::new(false);
        flag.store(true, Ordering::Release);
        assert!(flag.load(Ordering::Acquire));
        let cell = Traced::new(3u8);
        cell.set(4);
        assert_eq!(cell.clone().get(), 4);
    }

    #[test]
    fn condvar_wakes_waiter_without_a_session() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = std::sync::Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut guard = lock.lock();
                while !*guard {
                    guard = cv.wait(guard);
                }
            })
        };
        // Give the waiter a chance to park, then flip and notify.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().expect("waiter thread");
    }
}
