//! Post-hoc detectors over a recorded event log.
//!
//! Both detectors run after an execution, on the linear [`Event`] log the
//! deterministic scheduler produced:
//!
//! - [`find_races`] rebuilds the happens-before partial order with vector
//!   clocks (FastTrack-style, but with full access histories — scenario
//!   logs are small) and reports every pair of conflicting plain accesses
//!   to a [`Traced`](crate::sync::Traced) cell that no synchronization
//!   orders.
//! - [`lock_cycles`] builds the lock-acquisition graph — an edge `A → B`
//!   whenever some thread acquires `B` while holding `A` — and reports its
//!   cycles as *potential* deadlocks, even on executions where the
//!   scheduler happened to dodge the interleaving that actually hangs.
//!
//! Happens-before edges recognised:
//!
//! | log pattern                              | edge                        |
//! |------------------------------------------|-----------------------------|
//! | program order within one thread          | always                      |
//! | `MutexUnlock(m)` … `MutexLock(m)`        | release → acquire           |
//! | `RwWriteUnlock(l)` … `Rw*Lock(l)`        | release → acquire           |
//! | `RwReadUnlock(l)` … `RwWriteLock(l)`     | release → acquire           |
//! | `AtomicStore/Rmw(a, release-ish)` … `AtomicLoad/Rmw(a, acquire-ish)` | release → acquire |
//! | `Spawn(child)`                           | parent → child's first step |
//!
//! `Relaxed` atomics contribute **no** edges — which is precisely how an
//! over-weakened ordering shows up as a detected race.

use std::collections::HashMap;

use crate::event::{render_trace, Event, Op};
use crate::sync::object_name;

/// A vector clock: component `t` is thread `t`'s logical time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The clock's component for `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s own component.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Componentwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (component, value) in other.0.iter().enumerate() {
            if self.0[component] < *value {
                self.0[component] = *value;
            }
        }
    }

    /// `self ≤ other` pointwise: everything up to `self` happened before
    /// everything from `other` on.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(component, value)| *value <= other.get(component))
    }
}

#[derive(Debug, Clone)]
struct Access {
    tid: usize,
    clock: VClock,
    index: usize,
    is_write: bool,
}

/// A pair of conflicting, happens-before-unordered plain accesses.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Shim object id of the raced location.
    pub location: u64,
    /// Human-readable location name.
    pub location_name: String,
    /// (thread, log index, "read"/"write") of the earlier access.
    pub first: (usize, usize, &'static str),
    /// (thread, log index, "read"/"write") of the later access.
    pub second: (usize, usize, &'static str),
    /// Minimized event trace: the two threads' operations on the raced
    /// location and on every sync object both of them touched.
    pub trace: String,
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "data race on {}: t{} {} (#{}) is unordered with t{} {} (#{})",
            self.location_name,
            self.first.0,
            self.first.2,
            self.first.1,
            self.second.0,
            self.second.2,
            self.second.1
        )?;
        write!(f, "{}", self.trace)
    }
}

fn kind(is_write: bool) -> &'static str {
    if is_write {
        "write"
    } else {
        "read"
    }
}

/// Minimize a trace for a race between `a` and `b`: keep only those two
/// threads, and only events on the raced location plus sync objects *both*
/// threads touched up to the second access (the synchronization that could
/// have ordered them, but didn't).
fn minimize(log: &[Event], location: u64, a: usize, b: usize, upto: usize) -> String {
    let slice = &log[..=upto.min(log.len().saturating_sub(1))];
    let mut touched: HashMap<u64, (bool, bool)> = HashMap::new();
    for event in slice {
        if let Some(id) = event.op.object() {
            let entry = touched.entry(id).or_insert((false, false));
            if event.tid == a {
                entry.0 = true;
            }
            if event.tid == b {
                entry.1 = true;
            }
        }
    }
    let mut focus: Vec<u64> = touched
        .into_iter()
        .filter(|(id, (by_a, by_b))| *id == location || (*by_a && *by_b))
        .map(|(id, _)| id)
        .collect();
    focus.sort_unstable();
    render_trace(slice, &[a, b], &focus)
}

/// Runs the vector-clock pass and returns every detected race on a traced
/// cell, in log order of the second access. Duplicate pairs per location
/// are collapsed to the first occurrence.
pub fn find_races(log: &[Event]) -> Vec<RaceReport> {
    let mut clocks: HashMap<usize, VClock> = HashMap::new();
    let mut mutex_release: HashMap<u64, VClock> = HashMap::new();
    let mut rw_write_release: HashMap<u64, VClock> = HashMap::new();
    let mut rw_read_release: HashMap<u64, VClock> = HashMap::new();
    let mut atomic_release: HashMap<u64, VClock> = HashMap::new();
    let mut accesses: HashMap<u64, Vec<Access>> = HashMap::new();
    let mut races: Vec<RaceReport> = Vec::new();
    let mut reported: Vec<u64> = Vec::new();

    // A thread's clock must carry a nonzero own component before its first
    // event: two fresh all-zero clocks would compare as ordered, masking a
    // race between first accesses.
    fn ensure_init(clocks: &mut HashMap<usize, VClock>, tid: usize) {
        let clock = clocks.entry(tid).or_default();
        if clock.get(tid) == 0 {
            clock.tick(tid);
        }
    }

    for (index, event) in log.iter().enumerate() {
        let tid = event.tid;
        ensure_init(&mut clocks, tid);
        // Acquire side: join the relevant release clock into this thread.
        match &event.op {
            Op::MutexLock(id) => {
                if let Some(release) = mutex_release.get(id).cloned() {
                    clocks.entry(tid).or_default().join(&release);
                }
            }
            Op::RwReadLock(id) => {
                if let Some(release) = rw_write_release.get(id).cloned() {
                    clocks.entry(tid).or_default().join(&release);
                }
            }
            Op::RwWriteLock(id) => {
                if let Some(release) = rw_write_release.get(id).cloned() {
                    clocks.entry(tid).or_default().join(&release);
                }
                if let Some(release) = rw_read_release.get(id).cloned() {
                    clocks.entry(tid).or_default().join(&release);
                }
            }
            Op::AtomicLoad(id, order) | Op::AtomicRmw(id, order) if order.is_acquire() => {
                if let Some(release) = atomic_release.get(id).cloned() {
                    clocks.entry(tid).or_default().join(&release);
                }
            }
            _ => {}
        }
        // Release side (an AcqRel RMW does both) and plain accesses.
        let snapshot = clocks.entry(tid).or_default().clone();
        match &event.op {
            Op::MutexUnlock(id) => {
                mutex_release.insert(*id, snapshot);
            }
            Op::RwReadUnlock(id) => {
                rw_read_release.entry(*id).or_default().join(&snapshot);
            }
            Op::RwWriteUnlock(id) => {
                rw_write_release.insert(*id, snapshot);
            }
            Op::AtomicStore(id, order) | Op::AtomicRmw(id, order) if order.is_release() => {
                atomic_release.entry(*id).or_default().join(&snapshot);
            }
            Op::Spawn(child) => {
                ensure_init(&mut clocks, *child);
                clocks.entry(*child).or_default().join(&snapshot);
            }
            Op::CellRead(id) | Op::CellWrite(id) => {
                let is_write = matches!(event.op, Op::CellWrite(_));
                let history = accesses.entry(*id).or_default();
                for prior in history.iter() {
                    let conflicting = (prior.is_write || is_write) && prior.tid != tid;
                    if conflicting && !prior.clock.leq(&snapshot) && !reported.contains(id) {
                        races.push(RaceReport {
                            location: *id,
                            location_name: object_name(*id),
                            first: (prior.tid, prior.index, kind(prior.is_write)),
                            second: (tid, index, kind(is_write)),
                            trace: minimize(log, *id, prior.tid, tid, index),
                        });
                        reported.push(*id);
                    }
                }
                history.push(Access {
                    tid,
                    clock: snapshot,
                    index,
                    is_write,
                });
            }
            _ => {}
        }
        // Each event ticks its thread's component, so every access carries
        // a distinct, comparable timestamp.
        clocks.entry(tid).or_default().tick(tid);
    }
    races
}

/// A cycle in the lock-acquisition graph: a potential deadlock.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// The locks on the cycle, in order (first repeated implicitly).
    pub locks: Vec<u64>,
    /// Human-readable description with lock names and an example
    /// hold-while-acquiring site per edge.
    pub description: String,
}

impl std::fmt::Display for CycleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.description)
    }
}

/// Canonical signature of a cycle (rotation-invariant), for deduping across
/// executions.
pub fn cycle_signature(locks: &[u64]) -> Vec<u64> {
    if locks.is_empty() {
        return Vec::new();
    }
    let min_position = locks
        .iter()
        .enumerate()
        .min_by_key(|(_, id)| **id)
        .map(|(position, _)| position)
        .unwrap_or(0);
    let mut rotated = Vec::with_capacity(locks.len());
    rotated.extend_from_slice(&locks[min_position..]);
    rotated.extend_from_slice(&locks[..min_position]);
    rotated
}

/// Builds the lock-acquisition graph from one execution's log and returns
/// its elementary cycles (each reported once, rotation-deduped). Read locks
/// participate too: a read-then-write ordering inversion deadlocks as soon
/// as a writer wedges between the readers.
pub fn lock_cycles(log: &[Event]) -> Vec<CycleReport> {
    // edge (a, b) -> (tid, log index of the acquire of b while holding a)
    let mut edges: HashMap<(u64, u64), (usize, usize)> = HashMap::new();
    let mut held: HashMap<usize, Vec<u64>> = HashMap::new();
    for (index, event) in log.iter().enumerate() {
        match &event.op {
            Op::MutexLock(id) | Op::RwReadLock(id) | Op::RwWriteLock(id) => {
                let stack = held.entry(event.tid).or_default();
                for holding in stack.iter() {
                    if *holding != *id {
                        edges.entry((*holding, *id)).or_insert((event.tid, index));
                    }
                }
                stack.push(*id);
            }
            Op::MutexUnlock(id) | Op::RwReadUnlock(id) | Op::RwWriteUnlock(id) => {
                let stack = held.entry(event.tid).or_default();
                if let Some(position) = stack.iter().rposition(|held_id| held_id == id) {
                    stack.remove(position);
                }
            }
            _ => {}
        }
    }

    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    for (a, b) in edges.keys() {
        adjacency.entry(*a).or_default().push(*b);
    }
    for successors in adjacency.values_mut() {
        successors.sort_unstable();
    }

    // DFS cycle enumeration. Lock graphs here are tiny (a handful of
    // nodes), so a simple path-based walk from each node is plenty.
    let mut cycles: Vec<CycleReport> = Vec::new();
    let mut seen_signatures: Vec<Vec<u64>> = Vec::new();
    let mut nodes: Vec<u64> = adjacency.keys().copied().collect();
    nodes.sort_unstable();
    for start in nodes {
        let mut path = vec![start];
        walk(
            start,
            start,
            &adjacency,
            &mut path,
            &mut |cycle: &[u64]| {
                let signature = cycle_signature(cycle);
                if seen_signatures.contains(&signature) {
                    return;
                }
                seen_signatures.push(signature);
                let mut description = String::from("lock-order cycle: ");
                for (position, id) in cycle.iter().enumerate() {
                    if position > 0 {
                        description.push_str(" -> ");
                    }
                    description.push_str(&object_name(*id));
                }
                description.push_str(" -> ");
                description.push_str(&object_name(cycle[0]));
                for window in cycle.windows(2) {
                    if let Some((tid, index)) = edges.get(&(window[0], window[1])) {
                        description.push_str(&format!(
                            "\n  t{tid} acquires {} while holding {} (#{index})",
                            object_name(window[1]),
                            object_name(window[0])
                        ));
                    }
                }
                if let Some((tid, index)) = edges.get(&(cycle[cycle.len() - 1], cycle[0])) {
                    description.push_str(&format!(
                        "\n  t{tid} acquires {} while holding {} (#{index})",
                        object_name(cycle[0]),
                        object_name(cycle[cycle.len() - 1])
                    ));
                }
                cycles.push(CycleReport {
                    locks: cycle.to_vec(),
                    description,
                });
            },
        );
    }
    cycles
}

fn walk(
    start: u64,
    node: u64,
    adjacency: &HashMap<u64, Vec<u64>>,
    path: &mut Vec<u64>,
    emit: &mut impl FnMut(&[u64]),
) {
    let Some(successors) = adjacency.get(&node) else {
        return;
    };
    for next in successors {
        if *next == start {
            emit(path);
            continue;
        }
        // Only walk "forward" (next > start) so each cycle is found from
        // its smallest node exactly once; skip nodes already on the path.
        if *next < start || path.contains(next) {
            continue;
        }
        path.push(*next);
        walk(start, *next, adjacency, path, emit);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MemOrder;

    fn ev(tid: usize, op: Op) -> Event {
        Event { tid, op }
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let log = vec![ev(0, Op::CellWrite(1)), ev(1, Op::CellWrite(1))];
        let races = find_races(&log);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].location, 1);
        assert_eq!(races[0].first.2, "write");
    }

    #[test]
    fn mutex_discipline_orders_accesses() {
        let log = vec![
            ev(0, Op::MutexLock(9)),
            ev(0, Op::CellWrite(1)),
            ev(0, Op::MutexUnlock(9)),
            ev(1, Op::MutexLock(9)),
            ev(1, Op::CellRead(1)),
            ev(1, Op::MutexUnlock(9)),
        ];
        assert!(find_races(&log).is_empty());
    }

    #[test]
    fn release_acquire_atomics_order_but_relaxed_does_not() {
        let ordered = vec![
            ev(0, Op::CellWrite(1)),
            ev(0, Op::AtomicStore(5, MemOrder::Release)),
            ev(1, Op::AtomicLoad(5, MemOrder::Acquire)),
            ev(1, Op::CellRead(1)),
        ];
        assert!(find_races(&ordered).is_empty());
        let relaxed = vec![
            ev(0, Op::CellWrite(1)),
            ev(0, Op::AtomicStore(5, MemOrder::Relaxed)),
            ev(1, Op::AtomicLoad(5, MemOrder::Relaxed)),
            ev(1, Op::CellRead(1)),
        ];
        assert_eq!(relaxed.len(), 4);
        assert_eq!(find_races(&relaxed).len(), 1, "relaxed pair gives no edge");
    }

    #[test]
    fn concurrent_reads_are_not_a_race() {
        let log = vec![ev(0, Op::CellRead(1)), ev(1, Op::CellRead(1))];
        assert!(find_races(&log).is_empty());
    }

    #[test]
    fn rwlock_write_release_orders_readers() {
        let log = vec![
            ev(0, Op::RwWriteLock(3)),
            ev(0, Op::CellWrite(1)),
            ev(0, Op::RwWriteUnlock(3)),
            ev(1, Op::RwReadLock(3)),
            ev(1, Op::CellRead(1)),
            ev(1, Op::RwReadUnlock(3)),
        ];
        assert!(find_races(&log).is_empty());
    }

    #[test]
    fn ab_ba_acquisition_order_forms_a_cycle() {
        let log = vec![
            ev(0, Op::MutexLock(1)),
            ev(0, Op::MutexLock(2)),
            ev(0, Op::MutexUnlock(2)),
            ev(0, Op::MutexUnlock(1)),
            ev(1, Op::MutexLock(2)),
            ev(1, Op::MutexLock(1)),
            ev(1, Op::MutexUnlock(1)),
            ev(1, Op::MutexUnlock(2)),
        ];
        let cycles = lock_cycles(&log);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycle_signature(&cycles[0].locks), vec![1, 2]);
        assert!(cycles[0].description.contains("while holding"));
    }

    #[test]
    fn consistent_nesting_has_no_cycle() {
        let log = vec![
            ev(0, Op::MutexLock(1)),
            ev(0, Op::MutexLock(2)),
            ev(0, Op::MutexUnlock(2)),
            ev(0, Op::MutexUnlock(1)),
            ev(1, Op::MutexLock(1)),
            ev(1, Op::MutexLock(2)),
            ev(1, Op::MutexUnlock(2)),
            ev(1, Op::MutexUnlock(1)),
        ];
        assert!(lock_cycles(&log).is_empty());
    }
}
