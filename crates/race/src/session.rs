//! The deterministic cooperative scheduler behind a model-checked execution.
//!
//! A [`Session`] runs a closed-world scenario on real OS threads, but grants
//! the CPU to exactly **one** model thread at a time. Every instrumented
//! operation in [`crate::sync`] first calls [`Session::yield_point`], which
//! takes a *scheduling decision*: continue the current thread or preempt to
//! another runnable one. Decisions come from a [`ScheduleMode`] — either a
//! DFS replay prefix (systematic exploration, see [`crate::explore`]) or a
//! seeded random stream — so an execution is a pure function of the schedule
//! and the scenario's own seeds, and any failure replays from the printed
//! schedule alone.
//!
//! Blocking is cooperative too: a model thread that fails `try_lock` parks
//! itself as `Blocked` and the scheduler picks someone else; the eventual
//! unlock marks it runnable again. If a decision point finds no runnable
//! thread while unfinished threads remain, that is a **deadlock** — the
//! session aborts, every parked thread unwinds, and the harness reports the
//! schedule that got there.
//!
//! Model threads must not hold *uninstrumented* locks across instrumented
//! operations, and must not acquire instrumented locks from `Drop` during an
//! unwind — both would block the real thread where the scheduler expects a
//! cooperative yield.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use gaa_faults::rng::SplitMix64;

use crate::event::{Event, Op};

/// Sentinel "no thread scheduled" id.
const NO_THREAD: usize = usize::MAX;

/// Hard ceiling on scheduling decisions per execution; a scenario that busts
/// it is aborted rather than left spinning (e.g. a livelocking retry loop
/// under an adversarial random schedule).
const MAX_STEPS: usize = 100_000;

/// Marker payload used to unwind parked threads after a session abort.
struct AbortUnwind;

/// What a parked model thread is waiting for.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BlockOn {
    /// Mutex acquisition.
    Lock(u64),
    /// RwLock shared acquisition.
    RwRead(u64),
    /// RwLock exclusive acquisition.
    RwWrite(u64),
    /// Condvar wait; woken when the condvar's generation passes `generation`.
    Condvar {
        /// Condvar object id.
        id: u64,
        /// Generation observed when the wait began.
        generation: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum TState {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// Where scheduling decisions come from.
pub(crate) enum ScheduleMode {
    /// Systematic exploration: follow `prefix` (candidate indices), then
    /// default to "continue current thread / lowest runnable tid".
    Dfs {
        /// Candidate-index choices to replay before defaulting.
        prefix: Vec<usize>,
    },
    /// Seeded random schedule.
    Random(SplitMix64),
}

/// One recorded scheduling decision — enough for the DFS explorer to
/// enumerate untried alternatives and rebuild a replay prefix.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Number of candidate threads at this point.
    pub options: usize,
    /// Index chosen (index 0 is "continue current" when it was runnable).
    pub chosen: usize,
    /// Was the previously-running thread itself a candidate?
    pub current_runnable: bool,
    /// Preemptions consumed before this decision.
    pub preemptions_before: u32,
    /// Thread id the choice resolved to (for schedule rendering).
    pub chosen_tid: usize,
}

struct Sched {
    started: bool,
    threads: Vec<TState>,
    current: usize,
    mode: ScheduleMode,
    preemptions: u32,
    decisions: Vec<Decision>,
    log: Vec<Event>,
    cv_generations: HashMap<u64, u64>,
    abort: Option<String>,
}

/// A single model-checked execution: scheduler state plus the condvar model
/// threads park on.
pub(crate) struct Session {
    state: StdMutex<Sched>,
    turn: StdCondvar,
}

/// Thread-local identity of a model thread inside a session.
#[derive(Clone)]
pub(crate) struct ThreadCtx {
    /// The owning session.
    pub session: Arc<Session>,
    /// This thread's model id.
    pub tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it is a session thread.
pub(crate) fn current() -> Option<ThreadCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<ThreadCtx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Session {
    pub(crate) fn new(mode: ScheduleMode) -> Arc<Session> {
        Arc::new(Session {
            state: StdMutex::new(Sched {
                started: false,
                threads: Vec::new(),
                current: NO_THREAD,
                mode,
                preemptions: 0,
                decisions: Vec::new(),
                log: Vec::new(),
                cv_generations: HashMap::new(),
                abort: None,
            }),
            turn: StdCondvar::new(),
        })
    }

    fn lock(&self) -> StdMutexGuard<'_, Sched> {
        // The session lock is only ever held briefly and never across a
        // panic, but be robust to poisoning anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread; returns its id. Threads do not run
    /// until [`Session::start`].
    fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(TState::Runnable);
        s.threads.len() - 1
    }

    /// Releases the gate: takes the first scheduling decision and lets the
    /// chosen thread run.
    fn start(&self) {
        let mut s = self.lock();
        s.started = true;
        decide_next(&mut s);
        drop(s);
        self.turn.notify_all();
    }

    /// Parks until it is `tid`'s turn to run. Panics with the abort marker
    /// if the session aborted meanwhile.
    fn wait_for_turn<'a>(
        &'a self,
        tid: usize,
        mut s: StdMutexGuard<'a, Sched>,
    ) -> StdMutexGuard<'a, Sched> {
        loop {
            if s.abort.is_some() {
                drop(s);
                std::panic::panic_any(AbortUnwind);
            }
            if s.started && s.current == tid {
                return s;
            }
            s = self.turn.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// First gate a model thread passes: waits for [`Session::start`] and
    /// its first grant.
    fn wait_initial(&self, tid: usize) {
        let s = self.lock();
        let _s = self.wait_for_turn(tid, s);
    }

    /// A scheduling decision point. Called by the shim **before** every
    /// instrumented operation.
    pub(crate) fn yield_point(&self, tid: usize) {
        if std::thread::panicking() {
            // Unwinding code must not re-enter the scheduler (a nested
            // AbortUnwind would be a double panic). Drops that merely
            // record stay fine; scheduling is skipped.
            return;
        }
        let mut s = self.lock();
        if s.abort.is_some() {
            drop(s);
            std::panic::panic_any(AbortUnwind);
        }
        debug_assert_eq!(s.current, tid, "yield from a thread that is not scheduled");
        if s.decisions.len() >= MAX_STEPS {
            s.abort = Some(format!(
                "schedule step limit ({MAX_STEPS}) exceeded — livelocking scenario?"
            ));
            drop(s);
            self.turn.notify_all();
            std::panic::panic_any(AbortUnwind);
        }
        decide_next(&mut s);
        self.turn.notify_all();
        let _s = self.wait_for_turn(tid, s);
    }

    /// Appends an event to the log. Unlock events additionally mark parked
    /// acquirers runnable (they still need to be *chosen* at a later
    /// decision point before they retry).
    pub(crate) fn record(&self, tid: usize, op: Op) {
        let mut s = self.lock();
        match &op {
            Op::MutexUnlock(id) => wake_lock_waiters(&mut s, *id),
            Op::RwReadUnlock(id) | Op::RwWriteUnlock(id) => wake_lock_waiters(&mut s, *id),
            _ => {}
        }
        s.log.push(Event { tid, op });
    }

    /// Parks `tid` on `on` and waits until it is both runnable and chosen.
    pub(crate) fn block_on(&self, tid: usize, on: BlockOn) {
        if std::thread::panicking() {
            // See yield_point: we cannot park during an unwind. The caller's
            // retry loop will spin on try_lock; aborting is the only safe
            // exit, so poison the session.
            let mut s = self.lock();
            s.abort
                .get_or_insert_with(|| "instrumented lock acquired during unwind".to_string());
            drop(s);
            self.turn.notify_all();
            return;
        }
        let mut s = self.lock();
        if s.abort.is_some() {
            drop(s);
            std::panic::panic_any(AbortUnwind);
        }
        s.threads[tid] = TState::Blocked(on);
        decide_next(&mut s);
        self.turn.notify_all();
        let _s = self.wait_for_turn(tid, s);
    }

    /// Begins a condvar wait: snapshots the condvar's generation and parks.
    /// The paired mutex must already be released by the caller.
    pub(crate) fn condvar_wait(&self, tid: usize, cv_id: u64) {
        let generation = {
            let mut s = self.lock();
            *s.cv_generations.entry(cv_id).or_insert(0)
        };
        self.block_on(
            tid,
            BlockOn::Condvar {
                id: cv_id,
                generation,
            },
        );
    }

    /// Bumps a condvar's generation and wakes waiters (`one` wakes the
    /// lowest parked tid for determinism; otherwise all).
    pub(crate) fn condvar_notify(&self, cv_id: u64, one: bool) {
        let mut s = self.lock();
        let generation = s.cv_generations.entry(cv_id).or_insert(0);
        *generation += 1;
        let generation = *generation;
        let mut woken = false;
        for state in s.threads.iter_mut() {
            if let TState::Blocked(BlockOn::Condvar {
                id,
                generation: seen,
            }) = state
            {
                if *id == cv_id && *seen < generation {
                    *state = TState::Runnable;
                    if one {
                        woken = true;
                        break;
                    }
                }
            }
        }
        let _ = woken;
    }

    /// Marks `tid` finished and hands the CPU to the next choice.
    fn finish(&self, tid: usize) {
        let mut s = self.lock();
        s.threads[tid] = TState::Finished;
        decide_next(&mut s);
        drop(s);
        self.turn.notify_all();
    }

    /// Aborts the execution (first message wins) and wakes every parked
    /// thread so it can unwind.
    pub(crate) fn abort_with(&self, message: String) {
        let mut s = self.lock();
        s.abort.get_or_insert(message);
        drop(s);
        self.turn.notify_all();
    }

    fn abort_message(&self) -> Option<String> {
        self.lock().abort.clone()
    }

    /// Consumes the execution's results: (decisions, event log, abort).
    fn take_results(&self) -> (Vec<Decision>, Vec<Event>, Option<String>) {
        let mut s = self.lock();
        (
            std::mem::take(&mut s.decisions),
            std::mem::take(&mut s.log),
            s.abort.clone(),
        )
    }
}

fn wake_lock_waiters(s: &mut Sched, lock_id: u64) {
    for state in s.threads.iter_mut() {
        if let TState::Blocked(on) = state {
            let matches = matches!(
                on,
                BlockOn::Lock(id) | BlockOn::RwRead(id) | BlockOn::RwWrite(id) if *id == lock_id
            );
            if matches {
                // Woken threads retry their try_lock when next scheduled;
                // a loser simply parks again.
                *state = TState::Runnable;
            }
        }
    }
}

/// The scheduling decision itself: pick the next thread among runnable
/// candidates, honouring the replay prefix / random stream and counting
/// preemptions. Candidate index 0 is "continue the current thread" whenever
/// it is itself runnable, so the DFS default (index 0) never preempts and
/// the preemption bound is simply "how many non-zero choices while current
/// was runnable".
fn decide_next(s: &mut Sched) {
    if !s.started {
        return;
    }
    let runnable: Vec<usize> = s
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t, TState::Runnable))
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if s.threads.iter().all(|t| matches!(t, TState::Finished)) {
            s.current = NO_THREAD;
            return;
        }
        if s.abort.is_none() {
            let blocked: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| match t {
                    TState::Blocked(on) => Some(format!("t{tid} waiting on {on:?}")),
                    _ => None,
                })
                .collect();
            s.abort = Some(format!(
                "deadlock: no runnable thread ({})",
                blocked.join("; ")
            ));
        }
        return;
    }

    let current_runnable =
        s.current != NO_THREAD && matches!(s.threads.get(s.current), Some(TState::Runnable));
    let mut candidates = Vec::with_capacity(runnable.len());
    if current_runnable {
        candidates.push(s.current);
    }
    for tid in runnable {
        if !(current_runnable && tid == s.current) {
            candidates.push(tid);
        }
    }

    let index = s.decisions.len();
    let chosen = match &mut s.mode {
        ScheduleMode::Dfs { prefix } => {
            if index < prefix.len() {
                prefix[index].min(candidates.len() - 1)
            } else {
                0
            }
        }
        // Random schedules ignore the preemption bound by design: they are
        // the "long tail" complement to bounded-exhaustive DFS.
        ScheduleMode::Random(rng) => rng.pick(candidates.len()),
    };
    let preemptions_before = s.preemptions;
    if current_runnable && chosen != 0 {
        s.preemptions += 1;
    }
    s.decisions.push(Decision {
        options: candidates.len(),
        chosen,
        current_runnable,
        preemptions_before,
        chosen_tid: candidates[chosen],
    });
    s.current = candidates[chosen];
}

/// The harness handed to a scenario closure: spawn model threads, then
/// `join_all` to run the execution to completion under the session's
/// schedule. Invariant assertions go after `join_all` (they run
/// uninstrumented on the harness thread).
pub struct Exec {
    session: Arc<Session>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Exec {
    pub(crate) fn new(session: Arc<Session>) -> Exec {
        Exec {
            session,
            handles: Vec::new(),
        }
    }

    /// Spawns a model thread. It does not run until [`Exec::join_all`]
    /// opens the gate, so spawn order alone never perturbs the schedule.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = self.session.register_thread();
        let session = Arc::clone(&self.session);
        let handle = std::thread::Builder::new()
            .name(format!("gaa-race-t{tid}"))
            .spawn(move || {
                set_current(Some(ThreadCtx {
                    session: Arc::clone(&session),
                    tid,
                }));
                session.wait_initial(tid);
                let result = catch_unwind(AssertUnwindSafe(f));
                set_current(None);
                match result {
                    Ok(()) => session.finish(tid),
                    Err(payload) => {
                        if payload.downcast_ref::<AbortUnwind>().is_none() {
                            session.abort_with(format!(
                                "model thread t{tid} panicked: {}",
                                panic_text(payload.as_ref())
                            ));
                        }
                        // Abort unwinds end the thread quietly; the session
                        // already carries the failure.
                    }
                }
            })
            .expect("spawn model thread");
        self.handles.push(handle);
    }

    /// Runs all spawned threads to completion under the session schedule.
    ///
    /// # Panics
    ///
    /// Panics with the session's failure message if the execution deadlocked
    /// or a model thread panicked (e.g. an in-model assertion).
    pub fn join_all(&mut self) {
        self.session.start();
        for handle in std::mem::take(&mut self.handles) {
            // Model-thread panics are converted to session aborts inside the
            // thread wrapper; a join error here is already accounted for.
            let _ = handle.join();
        }
        if let Some(message) = self.session.abort_message() {
            panic!("{message}");
        }
    }

    /// Cleanup for a scenario that panicked before `join_all`: abort the
    /// session, open the gate and reap threads so none leak.
    pub(crate) fn abort_and_reap(&mut self, reason: &str) {
        self.session.abort_with(reason.to_string());
        self.session.start();
        for handle in std::mem::take(&mut self.handles) {
            let _ = handle.join();
        }
    }
}

/// Runs `scenario` once under `mode`. Returns the recorded decisions, the
/// event log, and the failure message if the execution failed (deadlock,
/// model panic, or scenario panic). The DFS preemption bound is enforced by
/// the explorer when it constructs replay prefixes, not here.
pub(crate) fn run_one<F>(
    mode: ScheduleMode,
    scenario: &F,
) -> (Vec<Decision>, Vec<Event>, Option<String>)
where
    F: Fn(&mut Exec),
{
    let session = Session::new(mode);
    let mut exec = Exec::new(Arc::clone(&session));
    let outcome = catch_unwind(AssertUnwindSafe(|| scenario(&mut exec)));
    let failure = match outcome {
        Ok(()) => None,
        Err(payload) => {
            let text = panic_text(payload.as_ref());
            exec.abort_and_reap(&text);
            Some(text)
        }
    };
    let (decisions, log, abort) = session.take_results();
    // Prefer the scenario-visible failure text; fall back to the abort.
    (decisions, log, failure.or(abort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Mutex, Traced};

    fn counter_scenario(exec: &mut Exec, total: std::sync::Arc<Mutex<u32>>) {
        for _ in 0..2 {
            let total = std::sync::Arc::clone(&total);
            exec.spawn(move || {
                for _ in 0..3 {
                    let mut guard = total.lock();
                    *guard += 1;
                }
            });
        }
        exec.join_all();
    }

    #[test]
    fn serialized_counter_is_exact_under_any_schedule() {
        for seed in 0..20u64 {
            let (decisions, log, failure) = run_one(
                ScheduleMode::Random(SplitMix64::new(seed)),
                &|exec: &mut Exec| {
                    let total = std::sync::Arc::new(Mutex::new(0u32));
                    counter_scenario(exec, std::sync::Arc::clone(&total));
                    assert_eq!(*total.lock(), 6);
                },
            );
            assert!(failure.is_none(), "seed {seed}: {failure:?}");
            assert!(!decisions.is_empty());
            let locks = log
                .iter()
                .filter(|e| matches!(e.op, Op::MutexLock(_)))
                .count();
            assert_eq!(locks, 6, "every lock acquisition is recorded");
        }
    }

    #[test]
    fn identical_schedules_replay_identically() {
        let run = |seed: u64| {
            run_one(
                ScheduleMode::Random(SplitMix64::new(seed)),
                &|exec: &mut Exec| {
                    let cell = Traced::named("replay.cell", 0u32);
                    let c1 = cell.clone();
                    let c2 = cell.clone();
                    exec.spawn(move || c1.set(c1.get() + 1));
                    exec.spawn(move || c2.set(c2.get() + 10));
                    exec.join_all();
                },
            )
        };
        let (d1, l1, f1) = run(42);
        let (d2, l2, f2) = run(42);
        assert!(f1.is_none() && f2.is_none());
        assert_eq!(
            d1.iter().map(|d| d.chosen_tid).collect::<Vec<_>>(),
            d2.iter().map(|d| d.chosen_tid).collect::<Vec<_>>()
        );
        // Object ids differ between runs (fresh objects), but shape matches.
        assert_eq!(l1.len(), l2.len());
        assert_eq!(
            l1.iter().map(|e| e.tid).collect::<Vec<_>>(),
            l2.iter().map(|e| e.tid).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lock_cycle_deadlock_is_detected_and_reported() {
        // t0 takes A then B; t1 takes B then A. A preempting schedule that
        // interleaves the first acquisitions deadlocks; the session must
        // report it rather than hang.
        let mut saw_deadlock = false;
        for seed in 0..40u64 {
            let (_, _, failure) = run_one(
                ScheduleMode::Random(SplitMix64::new(seed)),
                &|exec: &mut Exec| {
                    let a = std::sync::Arc::new(Mutex::named("lock.a", ()));
                    let b = std::sync::Arc::new(Mutex::named("lock.b", ()));
                    let (a1, b1) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
                    let (a2, b2) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
                    exec.spawn(move || {
                        let _ga = a1.lock();
                        let _gb = b1.lock();
                    });
                    exec.spawn(move || {
                        let _gb = b2.lock();
                        let _ga = a2.lock();
                    });
                    exec.join_all();
                },
            );
            if let Some(message) = failure {
                assert!(
                    message.contains("deadlock"),
                    "unexpected failure: {message}"
                );
                saw_deadlock = true;
            }
        }
        assert!(
            saw_deadlock,
            "40 random schedules never hit the AB/BA deadlock"
        );
    }
}
