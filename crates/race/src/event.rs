//! The event vocabulary the instrumented shim records.
//!
//! One execution of a model-checked scenario produces a linear log of
//! [`Event`]s — the total order the deterministic scheduler actually ran.
//! The detectors ([`crate::detect`]) rebuild the *partial* happens-before
//! order from this log: program order, lock release→acquire edges,
//! release/acquire atomic edges, and spawn/join edges. Everything the
//! scheduler can replay, the detectors can explain.

use std::fmt;

/// Memory-ordering tag mirrored from [`std::sync::atomic::Ordering`].
///
/// The detector's happens-before model keys off this: `Relaxed` operations
/// create **no** synchronization edges; `Release` stores publish the writer's
/// clock to the location; `Acquire` loads join it; `AcqRel`/`SeqCst` do both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrder {
    /// No synchronization — coherence only.
    Relaxed,
    /// Load half of a release/acquire pair.
    Acquire,
    /// Store half of a release/acquire pair.
    Release,
    /// Both halves (read-modify-write).
    AcqRel,
    /// Sequentially consistent (treated as `AcqRel` plus a total order the
    /// scheduler provides anyway).
    SeqCst,
}

impl MemOrder {
    /// Conversion from the std ordering.
    pub fn from_std(ordering: std::sync::atomic::Ordering) -> MemOrder {
        use std::sync::atomic::Ordering as O;
        match ordering {
            O::Relaxed => MemOrder::Relaxed,
            O::Acquire => MemOrder::Acquire,
            O::Release => MemOrder::Release,
            O::AcqRel => MemOrder::AcqRel,
            _ => MemOrder::SeqCst,
        }
    }

    /// Does this ordering publish (release) the writer's clock?
    pub fn is_release(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// Does this ordering join (acquire) the location's published clock?
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemOrder::Relaxed => "relaxed",
            MemOrder::Acquire => "acquire",
            MemOrder::Release => "release",
            MemOrder::AcqRel => "acqrel",
            MemOrder::SeqCst => "seqcst",
        })
    }
}

/// One instrumented operation. `u64` fields are shim object ids
/// (see [`crate::sync::object_name`] for the human name).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A mutex was acquired.
    MutexLock(u64),
    /// A mutex was released.
    MutexUnlock(u64),
    /// A read lock was acquired.
    RwReadLock(u64),
    /// A read lock was released.
    RwReadUnlock(u64),
    /// A write lock was acquired.
    RwWriteLock(u64),
    /// A write lock was released.
    RwWriteUnlock(u64),
    /// An atomic load.
    AtomicLoad(u64, MemOrder),
    /// An atomic store.
    AtomicStore(u64, MemOrder),
    /// An atomic read-modify-write (fetch_add, swap, compare_exchange).
    AtomicRmw(u64, MemOrder),
    /// An *unsynchronized* (plain) read of a traced cell.
    CellRead(u64),
    /// An *unsynchronized* (plain) write of a traced cell.
    CellWrite(u64),
    /// A model thread was spawned (payload: child thread id).
    Spawn(usize),
    /// A condvar wait began (the paired mutex release is its own event).
    CondvarWait(u64),
    /// A condvar notify (payload: condvar id).
    CondvarNotify(u64),
    /// Free-form scenario annotation for traces.
    Label(String),
}

impl Op {
    /// The shim object id this op touches, if any.
    pub fn object(&self) -> Option<u64> {
        match self {
            Op::MutexLock(id)
            | Op::MutexUnlock(id)
            | Op::RwReadLock(id)
            | Op::RwReadUnlock(id)
            | Op::RwWriteLock(id)
            | Op::RwWriteUnlock(id)
            | Op::AtomicLoad(id, _)
            | Op::AtomicStore(id, _)
            | Op::AtomicRmw(id, _)
            | Op::CellRead(id)
            | Op::CellWrite(id)
            | Op::CondvarWait(id)
            | Op::CondvarNotify(id) => Some(*id),
            Op::Spawn(_) | Op::Label(_) => None,
        }
    }
}

/// One recorded step: which model thread performed which operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Model thread id (0-based, in spawn order).
    pub tid: usize,
    /// The operation.
    pub op: Op,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |id: &u64| crate::sync::object_name(*id);
        match &self.op {
            Op::MutexLock(id) => write!(f, "t{} lock {}", self.tid, name(id)),
            Op::MutexUnlock(id) => write!(f, "t{} unlock {}", self.tid, name(id)),
            Op::RwReadLock(id) => write!(f, "t{} read-lock {}", self.tid, name(id)),
            Op::RwReadUnlock(id) => write!(f, "t{} read-unlock {}", self.tid, name(id)),
            Op::RwWriteLock(id) => write!(f, "t{} write-lock {}", self.tid, name(id)),
            Op::RwWriteUnlock(id) => write!(f, "t{} write-unlock {}", self.tid, name(id)),
            Op::AtomicLoad(id, o) => write!(f, "t{} load({o}) {}", self.tid, name(id)),
            Op::AtomicStore(id, o) => write!(f, "t{} store({o}) {}", self.tid, name(id)),
            Op::AtomicRmw(id, o) => write!(f, "t{} rmw({o}) {}", self.tid, name(id)),
            Op::CellRead(id) => write!(f, "t{} plain-read {}", self.tid, name(id)),
            Op::CellWrite(id) => write!(f, "t{} plain-write {}", self.tid, name(id)),
            Op::Spawn(child) => write!(f, "t{} spawn t{child}", self.tid),
            Op::CondvarWait(id) => write!(f, "t{} condvar-wait {}", self.tid, name(id)),
            Op::CondvarNotify(id) => write!(f, "t{} condvar-notify {}", self.tid, name(id)),
            Op::Label(text) => write!(f, "t{} — {text}", self.tid),
        }
    }
}

/// Renders `log` as a numbered trace, keeping only events from
/// `focus_threads` (all threads when empty) that either touch one of
/// `focus_objects` (all objects when empty) or create scheduling structure
/// (spawns, labels). This is the "minimized event trace" attached to
/// detector findings: enough to replay the interleaving by hand, without
/// the unrelated noise.
pub fn render_trace(log: &[Event], focus_threads: &[usize], focus_objects: &[u64]) -> String {
    let mut out = String::new();
    for (index, event) in log.iter().enumerate() {
        if !focus_threads.is_empty() && !focus_threads.contains(&event.tid) {
            continue;
        }
        let structural = matches!(event.op, Op::Spawn(_) | Op::Label(_));
        if !focus_objects.is_empty() && !structural {
            match event.op.object() {
                Some(id) if focus_objects.contains(&id) => {}
                _ => continue,
            }
        }
        out.push_str(&format!("  #{index:<4} {event}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_order_classification() {
        use std::sync::atomic::Ordering;
        assert!(!MemOrder::from_std(Ordering::Relaxed).is_acquire());
        assert!(!MemOrder::from_std(Ordering::Relaxed).is_release());
        assert!(MemOrder::from_std(Ordering::Acquire).is_acquire());
        assert!(!MemOrder::from_std(Ordering::Acquire).is_release());
        assert!(MemOrder::from_std(Ordering::Release).is_release());
        assert!(MemOrder::from_std(Ordering::SeqCst).is_acquire());
        assert!(MemOrder::from_std(Ordering::SeqCst).is_release());
    }

    #[test]
    fn trace_rendering_filters_by_thread_and_object() {
        let log = vec![
            Event {
                tid: 0,
                op: Op::Spawn(1),
            },
            Event {
                tid: 0,
                op: Op::CellWrite(7),
            },
            Event {
                tid: 1,
                op: Op::CellRead(7),
            },
            Event {
                tid: 1,
                op: Op::MutexLock(9),
            },
        ];
        let trace = render_trace(&log, &[], &[7]);
        assert!(trace.contains("plain-write"));
        assert!(trace.contains("plain-read"));
        assert!(!trace.contains("lock"));
        let trace = render_trace(&log, &[0], &[]);
        assert!(trace.contains("spawn"));
        assert!(!trace.contains("plain-read"));
    }
}
