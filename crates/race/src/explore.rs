//! Schedule exploration: bounded-exhaustive DFS and seeded random batches.
//!
//! An [`Explorer`] runs a scenario closure many times, each under a
//! different deterministic schedule, and funnels every execution's event
//! log through the detectors. Two modes:
//!
//! - [`Explorer::dfs`] — systematic exploration with a **preemption bound**
//!   (CHESS-style): every schedule that preempts a runnable thread at most
//!   `bound` times is visited exactly once. Empirically, almost all
//!   concurrency bugs need only 1–2 preemptions, so small bounds buy
//!   near-exhaustive coverage at polynomial cost.
//! - [`Explorer::random`] — `n` schedules drawn from a seeded
//!   [`SplitMix64`] stream; the long-tail complement (random schedules
//!   ignore the bound). Any failure reproduces from the seed alone.
//!
//! A scenario must be a *closed world*: fresh shared state per call, all
//! nondeterminism derived from seeds (use `gaa-faults` clocks, never wall
//! time), threads spawned via the provided [`Exec`]. Invariant assertions
//! go after `Exec::join_all` — a panic there, a panic inside a model
//! thread, a deadlock, a detected data race, or a lock-graph cycle all
//! surface in the [`Report`].

use gaa_faults::rng::{mix, SplitMix64};

use crate::detect::{cycle_signature, find_races, lock_cycles, CycleReport, RaceReport};
use crate::event::render_trace;
use crate::session::{run_one, Exec, ScheduleMode};

enum Mode {
    Dfs { bound: u32 },
    Random { seed: u64, schedules: usize },
}

/// Drives many deterministic executions of one scenario. See the module
/// docs for the scenario contract.
pub struct Explorer {
    mode: Mode,
    max_schedules: usize,
    fail_fast: bool,
}

/// A failed execution: deadlock, model-thread panic, or scenario panic.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed.
    pub message: String,
    /// The schedule as chosen thread ids, replayable by construction.
    pub schedule: Vec<usize>,
    /// Seed of the random schedule, when the failure came from one.
    pub seed: Option<u64>,
    /// Full event trace of the failing execution.
    pub trace: String,
}

/// The outcome of an exploration.
#[derive(Debug, Default)]
pub struct Report {
    /// Executions actually run.
    pub schedules: usize,
    /// Total scheduling decisions taken across all executions.
    pub decisions: u64,
    /// Failed executions (at most one when fail-fast, the default).
    pub violations: Vec<Violation>,
    /// Data races found by the vector-clock detector (deduped by location).
    pub races: Vec<RaceReport>,
    /// Lock-acquisition-graph cycles (deduped by rotation signature).
    pub cycles: Vec<CycleReport>,
    /// True when the schedule budget truncated a DFS before exhausting it.
    pub truncated: bool,
}

impl Report {
    /// No violations, races, or cycles.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.races.is_empty() && self.cycles.is_empty()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} schedules, {} decisions, {} violations, {} races, {} lock cycles{}",
            self.schedules,
            self.decisions,
            self.violations.len(),
            self.races.len(),
            self.cycles.len(),
            if self.truncated { " (truncated)" } else { "" }
        )
    }

    /// Panics with full findings unless the report is clean.
    pub fn assert_clean(&self, scenario: &str) {
        if self.clean() {
            return;
        }
        let mut message = format!("scenario `{scenario}`: {}\n", self.summary());
        for violation in &self.violations {
            message.push_str(&format!(
                "\nviolation ({}): {}\nschedule: {:?}\n{}",
                match violation.seed {
                    Some(seed) => format!("random seed {seed}"),
                    None => "dfs".to_string(),
                },
                violation.message,
                violation.schedule,
                violation.trace
            ));
        }
        for race in &self.races {
            message.push_str(&format!("\n{race}"));
        }
        for cycle in &self.cycles {
            message.push_str(&format!("\n{cycle}"));
        }
        panic!("{message}");
    }
}

impl Explorer {
    /// Systematic DFS with the given preemption bound.
    pub fn dfs(bound: u32) -> Explorer {
        Explorer {
            mode: Mode::Dfs { bound },
            max_schedules: 50_000,
            fail_fast: true,
        }
    }

    /// `schedules` random schedules from `seed`.
    pub fn random(seed: u64, schedules: usize) -> Explorer {
        Explorer {
            mode: Mode::Random { seed, schedules },
            max_schedules: 50_000,
            fail_fast: true,
        }
    }

    /// Caps the number of executions (a DFS that hits the cap reports
    /// `truncated`).
    pub fn max_schedules(mut self, max: usize) -> Explorer {
        self.max_schedules = max;
        self
    }

    /// Keep exploring after the first finding (reports then aggregate).
    pub fn keep_going(mut self) -> Explorer {
        self.fail_fast = false;
        self
    }

    /// Runs the exploration.
    pub fn explore<F>(&self, scenario: F) -> Report
    where
        F: Fn(&mut Exec),
    {
        let mut report = Report::default();
        match &self.mode {
            Mode::Dfs { bound } => {
                let mut prefix: Vec<usize> = Vec::new();
                loop {
                    let (decisions, log, failure) = run_one(
                        ScheduleMode::Dfs {
                            prefix: prefix.clone(),
                        },
                        &scenario,
                    );
                    absorb(&mut report, &decisions, &log, failure, None);
                    let stop = (self.fail_fast && !report.clean())
                        || report.schedules >= self.max_schedules;
                    if stop {
                        report.truncated = report.schedules >= self.max_schedules;
                        break;
                    }
                    match next_prefix(&decisions, *bound) {
                        Some(next) => prefix = next,
                        None => break,
                    }
                }
            }
            Mode::Random { seed, schedules } => {
                for index in 0..*schedules {
                    let stream = SplitMix64::new(mix(
                        seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ));
                    let (decisions, log, failure) =
                        run_one(ScheduleMode::Random(stream), &scenario);
                    absorb(&mut report, &decisions, &log, failure, Some(*seed));
                    if (self.fail_fast && !report.clean()) || report.schedules >= self.max_schedules
                    {
                        break;
                    }
                }
            }
        }
        report
    }
}

fn absorb(
    report: &mut Report,
    decisions: &[crate::session::Decision],
    log: &[crate::event::Event],
    failure: Option<String>,
    seed: Option<u64>,
) {
    report.schedules += 1;
    report.decisions += decisions.len() as u64;
    if let Some(message) = failure {
        report.violations.push(Violation {
            message,
            schedule: decisions.iter().map(|d| d.chosen_tid).collect(),
            seed,
            trace: render_trace(log, &[], &[]),
        });
    }
    for race in find_races(log) {
        if !report
            .races
            .iter()
            .any(|known| known.location == race.location)
        {
            report.races.push(race);
        }
    }
    for cycle in lock_cycles(log) {
        let signature = cycle_signature(&cycle.locks);
        if !report
            .cycles
            .iter()
            .any(|known| cycle_signature(&known.locks) == signature)
        {
            report.cycles.push(cycle);
        }
    }
}

/// Computes the next DFS replay prefix: backtrack to the deepest decision
/// with an untried alternative that the preemption bound still allows.
/// Candidate index 0 is "continue current" when the current thread was
/// runnable, so any nonzero alternative there costs one preemption.
fn next_prefix(decisions: &[crate::session::Decision], bound: u32) -> Option<Vec<usize>> {
    for depth in (0..decisions.len()).rev() {
        let decision = &decisions[depth];
        let mut alternative = decision.chosen + 1;
        while alternative < decision.options {
            let preemptive = decision.current_runnable && alternative != 0;
            if preemptive && decision.preemptions_before >= bound {
                alternative += 1;
                continue;
            }
            let mut prefix: Vec<usize> = decisions[..depth].iter().map(|d| d.chosen).collect();
            prefix.push(alternative);
            return Some(prefix);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Mutex, Traced};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn dfs_explores_multiple_schedules_and_stays_clean_on_locked_counter() {
        let explorer = Explorer::dfs(2);
        let report = explorer.explore(|exec| {
            let total = Arc::new(Mutex::new(0u32));
            for _ in 0..2 {
                let total = Arc::clone(&total);
                exec.spawn(move || {
                    *total.lock() += 1;
                });
            }
            exec.join_all();
            assert_eq!(*total.lock(), 2);
        });
        assert!(report.clean(), "{}", report.summary());
        assert!(
            report.schedules > 1,
            "bound-2 DFS must branch: {}",
            report.summary()
        );
    }

    #[test]
    fn dfs_finds_unlocked_read_modify_write_race() {
        let explorer = Explorer::dfs(2);
        let report = explorer.explore(|exec| {
            let cell = Traced::named("racy.counter", 0u32);
            for _ in 0..2 {
                let cell = cell.clone();
                exec.spawn(move || {
                    let seen = cell.get();
                    cell.set(seen + 1);
                });
            }
            exec.join_all();
        });
        assert_eq!(report.races.len(), 1, "{}", report.summary());
        assert!(report.races[0].trace.contains("racy.counter"));
    }

    #[test]
    fn relaxed_flag_publication_is_flagged_but_release_acquire_is_not() {
        let run = |publish: Ordering, observe: Ordering| {
            Explorer::dfs(2).explore(move |exec| {
                let data = Traced::named("payload", 0u32);
                let ready = Arc::new(crate::sync::AtomicBool::named("ready", false));
                let (d1, r1) = (data.clone(), Arc::clone(&ready));
                exec.spawn(move || {
                    d1.set(7);
                    r1.store(true, publish);
                });
                let (d2, r2) = (data.clone(), Arc::clone(&ready));
                exec.spawn(move || {
                    if r2.load(observe) {
                        let _ = d2.get();
                    }
                });
                exec.join_all();
            })
        };
        let relaxed = run(Ordering::Relaxed, Ordering::Relaxed);
        assert!(
            !relaxed.races.is_empty(),
            "relaxed publication must race: {}",
            relaxed.summary()
        );
        let ordered = run(Ordering::Release, Ordering::Acquire);
        assert!(
            ordered.races.is_empty(),
            "release/acquire publication is ordered: {}",
            ordered.summary()
        );
    }

    #[test]
    fn random_schedules_reproduce_by_seed() {
        let run = || {
            Explorer::random(1234, 8).explore(|exec| {
                let total = Arc::new(Mutex::new(0u32));
                for _ in 0..2 {
                    let total = Arc::clone(&total);
                    exec.spawn(move || {
                        *total.lock() += 1;
                    });
                }
                exec.join_all();
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.decisions, b.decisions, "same seed, same schedules");
        assert!(a.clean());
    }

    #[test]
    fn dfs_reports_lock_cycle_even_when_the_run_does_not_hang() {
        // With bound 0 the default schedule never preempts, so both threads
        // take A-then-B / B-then-A without deadlocking — the static lock
        // graph still exposes the inversion.
        let report = Explorer::dfs(0).explore(|exec| {
            let a = Arc::new(Mutex::named("cycle.a", ()));
            let b = Arc::new(Mutex::named("cycle.b", ()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            exec.spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            exec.spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            exec.join_all();
        });
        assert!(
            !report.cycles.is_empty(),
            "acquisition-order cycle must be reported: {}",
            report.summary()
        );
    }

    #[test]
    fn deadlocking_schedule_is_a_violation_with_a_trace() {
        let report = Explorer::dfs(2)
            .keep_going()
            .max_schedules(500)
            .explore(|exec| {
                let a = Arc::new(Mutex::named("dl.a", ()));
                let b = Arc::new(Mutex::named("dl.b", ()));
                let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
                exec.spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                exec.spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
                exec.join_all();
            });
        assert!(
            report
                .violations
                .iter()
                .any(|violation| violation.message.contains("deadlock")),
            "DFS at bound 2 must drive the AB/BA interleaving into deadlock: {}",
            report.summary()
        );
    }
}
