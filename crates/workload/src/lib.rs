//! # gaa-workload — traffic generation and scenario driving
//!
//! Deterministic (seeded) generators for the traffic classes the paper's
//! deployments face, plus a driver that runs labelled traffic against a
//! [`Server`](gaa_httpd::Server) and scores detection quality:
//!
//! * [`legit`] — benign browsing: zipf-ish path popularity over the
//!   document tree, a mix of anonymous and authenticated users, benign CGI
//!   queries;
//! * [`attacks`] — the §7.2 attack classes: CGI exploits (`phf`,
//!   `test-cgi`), NIMDA-style malformed URLs, slash-flood DoS,
//!   buffer-overflow inputs, password guessing, and the multi-probe
//!   vulnerability-scan script whose *unknown* probes only the BadGuys
//!   blacklist can stop;
//! * [`scenario`] — seeded interleavings of the above;
//! * [`driver`] — runs a scenario, collects per-class
//!   [`DetectionStats`] (blocked / served /
//!   challenged), and computes true/false-positive rates.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod attacks;
pub mod driver;
pub mod legit;
pub mod scenario;

pub use attacks::AttackKind;
pub use driver::{ClassStats, DetectionStats};
pub use scenario::{LabeledRequest, Scenario, ScenarioBuilder};
