//! Benign traffic generation.
//!
//! Models the environment of §7.1: "Mixed access to web services. Access to
//! some web resources require user authentication, some do not." Paths are
//! drawn with a zipf-like popularity skew (a few hot pages, a long tail),
//! queries are short and well-formed, and a configurable fraction of
//! requests carry valid Basic credentials.

use gaa_httpd::auth::base64_encode;
use gaa_httpd::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user account known to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// User name.
    pub user: String,
    /// Cleartext password (the generator authenticates correctly).
    pub password: String,
}

/// Precomputed inverse-CDF sampler over harmonic (zipf, s=1) weights:
/// rank `r` is drawn with probability proportional to `1/(r+1)`.
///
/// Construction is O(n); each draw is a binary search, O(log n) — this is
/// what lets the million-principal scale benchmark draw from a pool of
/// 10^6 ranks without paying an O(n) scan per request the way the old
/// incremental inverse-CDF did.
#[derive(Debug, Clone)]
pub struct ZipfIndex {
    cdf: Vec<f64>,
}

impl ZipfIndex {
    /// A sampler over `n` ranks (`n >= 1`).
    #[must_use]
    pub fn new(n: usize) -> ZipfIndex {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0_f64;
        for r in 0..n {
            acc += 1.0 / (r + 1) as f64;
            cdf.push(acc);
        }
        ZipfIndex { cdf }
    }

    /// The number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (construction requires `n >= 1`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..len()`, rank 0 most popular.
    pub fn draw(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        // partition_point: first rank whose cumulative weight exceeds x.
        self.cdf
            .partition_point(|&acc| acc <= x)
            .min(self.cdf.len() - 1)
    }
}

/// Generator of benign requests.
#[derive(Debug)]
pub struct LegitTraffic {
    rng: StdRng,
    paths: Vec<String>,
    path_ranks: ZipfIndex,
    accounts: Vec<Account>,
    account_ranks: Option<ZipfIndex>,
    client_ips: Vec<String>,
    auth_fraction: f64,
}

impl LegitTraffic {
    /// A generator over `paths` with deterministic seed `seed`.
    pub fn new(seed: u64, paths: Vec<String>) -> Self {
        assert!(!paths.is_empty(), "need at least one path");
        LegitTraffic {
            rng: StdRng::seed_from_u64(seed),
            path_ranks: ZipfIndex::new(paths.len()),
            paths,
            account_ranks: None,
            accounts: vec![
                Account {
                    user: "alice".into(),
                    password: "wonderland".into(),
                },
                Account {
                    user: "bob".into(),
                    password: "builder".into(),
                },
            ],
            client_ips: (1..=20).map(|i| format!("10.0.0.{i}")).collect(),
            auth_fraction: 0.3,
        }
    }

    /// Replaces the account list.
    #[must_use]
    pub fn with_accounts(mut self, accounts: Vec<Account>) -> Self {
        self.accounts = accounts;
        if self.account_ranks.is_some() {
            self.account_ranks =
                (!self.accounts.is_empty()).then(|| ZipfIndex::new(self.accounts.len()));
        }
        self
    }

    /// Draws authenticating accounts with the same zipf skew as paths
    /// (list order is popularity rank) instead of uniformly — the shape of
    /// a large user base where a small active set does most of the
    /// logging-in. This is what makes authentication caches honest to
    /// benchmark at the 10^6-principal scale.
    #[must_use]
    pub fn with_zipf_accounts(mut self) -> Self {
        self.account_ranks =
            (!self.accounts.is_empty()).then(|| ZipfIndex::new(self.accounts.len()));
        self
    }

    /// Sets the fraction of requests sent with valid credentials.
    #[must_use]
    pub fn with_auth_fraction(mut self, fraction: f64) -> Self {
        self.auth_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Replaces the client IP pool.
    #[must_use]
    pub fn with_client_ips(mut self, ips: Vec<String>) -> Self {
        assert!(!ips.is_empty(), "need at least one client IP");
        self.client_ips = ips;
        self
    }

    /// Draws a path with zipf skew: rank r is picked with weight ~1/(r+1).
    fn draw_path(&mut self) -> String {
        self.paths[self.path_ranks.draw(&mut self.rng)].clone()
    }

    /// Generates the next benign request.
    pub fn next_request(&mut self) -> HttpRequest {
        let path = self.draw_path();
        let ip = self.client_ips[self.rng.gen_range(0..self.client_ips.len())].clone();
        let target = if path.contains("cgi-bin") {
            // Benign CGI query: short, alphanumeric.
            let qlen = self.rng.gen_range(3..20);
            let q: String = (0..qlen)
                .map(|_| {
                    let c = self.rng.gen_range(0..36);
                    if c < 10 {
                        (b'0' + c) as char
                    } else {
                        (b'a' + c - 10) as char
                    }
                })
                .collect();
            format!("{path}?q={q}")
        } else if self.rng.gen_bool(0.3) {
            format!("{path}?id={}", self.rng.gen_range(0..100))
        } else {
            path
        };
        let mut request = HttpRequest::get(&target).with_client_ip(ip);
        if !self.accounts.is_empty() && self.rng.gen_bool(self.auth_fraction) {
            let pick = match &self.account_ranks {
                Some(ranks) => ranks.draw(&mut self.rng),
                None => self.rng.gen_range(0..self.accounts.len()),
            };
            let account = &self.accounts[pick];
            let token = base64_encode(format!("{}:{}", account.user, account.password).as_bytes());
            request = request.with_header("authorization", &format!("Basic {token}"));
        }
        request
    }

    /// Generates `n` benign requests.
    pub fn take(&mut self, n: usize) -> Vec<HttpRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths() -> Vec<String> {
        vec![
            "/index.html".into(),
            "/docs/page1.html".into(),
            "/docs/page2.html".into(),
            "/cgi-bin/search".into(),
        ]
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<String> = LegitTraffic::new(7, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        let b: Vec<String> = LegitTraffic::new(7, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = LegitTraffic::new(8, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_skewed() {
        let mut gen = LegitTraffic::new(42, paths());
        let mut first = 0;
        let mut last = 0;
        for req in gen.take(2000) {
            if req.path == "/index.html" {
                first += 1;
            }
            if req.path == "/cgi-bin/search" {
                last += 1;
            }
        }
        assert!(
            first > last * 2,
            "rank 1 ({first}) should dominate rank 4 ({last})"
        );
    }

    #[test]
    fn auth_fraction_respected() {
        let mut gen = LegitTraffic::new(1, paths()).with_auth_fraction(1.0);
        assert!(gen
            .take(20)
            .iter()
            .all(|r| r.header("authorization").is_some()));
        let mut gen = LegitTraffic::new(1, paths()).with_auth_fraction(0.0);
        assert!(gen
            .take(20)
            .iter()
            .all(|r| r.header("authorization").is_none()));
    }

    #[test]
    fn queries_are_benign() {
        let mut gen = LegitTraffic::new(3, paths());
        for req in gen.take(500) {
            assert!(
                req.input_len() < 50,
                "benign input stays small: {}",
                req.target
            );
            assert!(!req.target.contains('%'));
            assert!(!req.target.contains("phf"));
        }
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_paths_panics() {
        let _ = LegitTraffic::new(0, Vec::new());
    }

    #[test]
    fn zipf_index_matches_harmonic_weights() {
        let ranks = ZipfIndex::new(4);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[ranks.draw(&mut rng)] += 1;
        }
        // Expected proportions 1 : 1/2 : 1/3 : 1/4 over H(4) ≈ 2.083.
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
        let ratio = counts[0] as f64 / counts[3] as f64;
        assert!((2.5..6.0).contains(&ratio), "rank0/rank3 ratio {ratio}");
    }

    #[test]
    fn zipf_index_scales_to_a_million_ranks() {
        // Construction O(n), draws O(log n): a 10^6-rank pool must be
        // usable, and the head must dominate any individual tail rank.
        let ranks = ZipfIndex::new(1_000_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = 0usize;
        for _ in 0..5_000 {
            let r = ranks.draw(&mut rng);
            assert!(r < 1_000_000);
            if r < 100 {
                head += 1;
            }
        }
        // The top 100 of 10^6 ranks carry H(100)/H(10^6) ≈ 36% of the mass.
        assert!(head > 1_000, "head ranks drew only {head}/5000");
    }

    #[test]
    fn zipf_accounts_skew_toward_the_front_of_the_list() {
        let accounts: Vec<Account> = (0..50)
            .map(|i| Account {
                user: format!("user{i}"),
                password: format!("pw{i}"),
            })
            .collect();
        let mut gen = LegitTraffic::new(11, paths())
            .with_accounts(accounts)
            .with_zipf_accounts()
            .with_auth_fraction(1.0);
        let mut front = 0usize;
        let mut total = 0usize;
        for req in gen.take(2000) {
            let header = req.header("authorization").expect("authed").to_string();
            total += 1;
            // rank 0 is user0; its token prefix is stable for counting.
            let token = base64_encode(b"user0:pw0");
            if header == format!("Basic {token}") {
                front += 1;
            }
        }
        // Uniform draw would give user0 ~2% of 2000 = 40; zipf rank 0 of
        // 50 carries 1/H(50) ≈ 22%.
        assert!(
            front > total / 10,
            "rank-0 account drew only {front}/{total}"
        );
    }
}
