//! Benign traffic generation.
//!
//! Models the environment of §7.1: "Mixed access to web services. Access to
//! some web resources require user authentication, some do not." Paths are
//! drawn with a zipf-like popularity skew (a few hot pages, a long tail),
//! queries are short and well-formed, and a configurable fraction of
//! requests carry valid Basic credentials.

use gaa_httpd::auth::base64_encode;
use gaa_httpd::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user account known to the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// User name.
    pub user: String,
    /// Cleartext password (the generator authenticates correctly).
    pub password: String,
}

/// Generator of benign requests.
#[derive(Debug)]
pub struct LegitTraffic {
    rng: StdRng,
    paths: Vec<String>,
    accounts: Vec<Account>,
    client_ips: Vec<String>,
    auth_fraction: f64,
}

impl LegitTraffic {
    /// A generator over `paths` with deterministic seed `seed`.
    pub fn new(seed: u64, paths: Vec<String>) -> Self {
        assert!(!paths.is_empty(), "need at least one path");
        LegitTraffic {
            rng: StdRng::seed_from_u64(seed),
            paths,
            accounts: vec![
                Account {
                    user: "alice".into(),
                    password: "wonderland".into(),
                },
                Account {
                    user: "bob".into(),
                    password: "builder".into(),
                },
            ],
            client_ips: (1..=20).map(|i| format!("10.0.0.{i}")).collect(),
            auth_fraction: 0.3,
        }
    }

    /// Replaces the account list.
    #[must_use]
    pub fn with_accounts(mut self, accounts: Vec<Account>) -> Self {
        self.accounts = accounts;
        self
    }

    /// Sets the fraction of requests sent with valid credentials.
    #[must_use]
    pub fn with_auth_fraction(mut self, fraction: f64) -> Self {
        self.auth_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Replaces the client IP pool.
    #[must_use]
    pub fn with_client_ips(mut self, ips: Vec<String>) -> Self {
        assert!(!ips.is_empty(), "need at least one client IP");
        self.client_ips = ips;
        self
    }

    /// Draws a path with zipf-ish skew: rank r is picked with weight ~1/(r+1).
    fn draw_path(&mut self) -> String {
        let n = self.paths.len();
        // Inverse-CDF over harmonic weights, computed incrementally.
        let total: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
        let mut x = self.rng.gen::<f64>() * total;
        for (r, path) in self.paths.iter().enumerate() {
            x -= 1.0 / (r + 1) as f64;
            if x <= 0.0 {
                return path.clone();
            }
        }
        self.paths[n - 1].clone()
    }

    /// Generates the next benign request.
    pub fn next_request(&mut self) -> HttpRequest {
        let path = self.draw_path();
        let ip = self.client_ips[self.rng.gen_range(0..self.client_ips.len())].clone();
        let target = if path.contains("cgi-bin") {
            // Benign CGI query: short, alphanumeric.
            let qlen = self.rng.gen_range(3..20);
            let q: String = (0..qlen)
                .map(|_| {
                    let c = self.rng.gen_range(0..36);
                    if c < 10 {
                        (b'0' + c) as char
                    } else {
                        (b'a' + c - 10) as char
                    }
                })
                .collect();
            format!("{path}?q={q}")
        } else if self.rng.gen_bool(0.3) {
            format!("{path}?id={}", self.rng.gen_range(0..100))
        } else {
            path
        };
        let mut request = HttpRequest::get(&target).with_client_ip(ip);
        if !self.accounts.is_empty() && self.rng.gen_bool(self.auth_fraction) {
            let account = &self.accounts[self.rng.gen_range(0..self.accounts.len())];
            let token = base64_encode(format!("{}:{}", account.user, account.password).as_bytes());
            request = request.with_header("authorization", &format!("Basic {token}"));
        }
        request
    }

    /// Generates `n` benign requests.
    pub fn take(&mut self, n: usize) -> Vec<HttpRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths() -> Vec<String> {
        vec![
            "/index.html".into(),
            "/docs/page1.html".into(),
            "/docs/page2.html".into(),
            "/cgi-bin/search".into(),
        ]
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<String> = LegitTraffic::new(7, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        let b: Vec<String> = LegitTraffic::new(7, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = LegitTraffic::new(8, paths())
            .take(50)
            .into_iter()
            .map(|r| r.target)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn popularity_is_skewed() {
        let mut gen = LegitTraffic::new(42, paths());
        let mut first = 0;
        let mut last = 0;
        for req in gen.take(2000) {
            if req.path == "/index.html" {
                first += 1;
            }
            if req.path == "/cgi-bin/search" {
                last += 1;
            }
        }
        assert!(
            first > last * 2,
            "rank 1 ({first}) should dominate rank 4 ({last})"
        );
    }

    #[test]
    fn auth_fraction_respected() {
        let mut gen = LegitTraffic::new(1, paths()).with_auth_fraction(1.0);
        assert!(gen
            .take(20)
            .iter()
            .all(|r| r.header("authorization").is_some()));
        let mut gen = LegitTraffic::new(1, paths()).with_auth_fraction(0.0);
        assert!(gen
            .take(20)
            .iter()
            .all(|r| r.header("authorization").is_none()));
    }

    #[test]
    fn queries_are_benign() {
        let mut gen = LegitTraffic::new(3, paths());
        for req in gen.take(500) {
            assert!(
                req.input_len() < 50,
                "benign input stays small: {}",
                req.target
            );
            assert!(!req.target.contains('%'));
            assert!(!req.target.contains("phf"));
        }
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_paths_panics() {
        let _ = LegitTraffic::new(0, Vec::new());
    }
}
