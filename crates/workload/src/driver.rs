//! Runs a scenario against a server and scores detection quality.
//!
//! Blocking an attack (403/400/413, or a mid-condition abort) is a true
//! positive; blocking benign traffic is a false positive. 401 challenges
//! are tracked separately — under lockdown they are the *intended* response
//! to anonymous benign traffic, not a detection error.

use crate::attacks::AttackKind;
use crate::scenario::Scenario;
use gaa_httpd::{Server, StatusCode};
use std::collections::HashMap;
use std::fmt;

/// Outcome counts for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests sent.
    pub sent: u64,
    /// Served with 200.
    pub served: u64,
    /// Blocked (403, 400, 413, 500-abort).
    pub blocked: u64,
    /// Challenged with 401.
    pub challenged: u64,
    /// Redirected with 302.
    pub redirected: u64,
    /// 404s (probes for absent objects).
    pub not_found: u64,
}

impl ClassStats {
    fn record(&mut self, status: StatusCode) {
        self.sent += 1;
        match status {
            StatusCode::Ok => self.served += 1,
            StatusCode::Forbidden
            | StatusCode::BadRequest
            | StatusCode::PayloadTooLarge
            | StatusCode::InternalServerError
            | StatusCode::ServiceUnavailable => self.blocked += 1,
            StatusCode::Unauthorized => self.challenged += 1,
            StatusCode::Found => self.redirected += 1,
            StatusCode::NotFound => self.not_found += 1,
        }
    }

    /// Fraction of this class that was blocked.
    pub fn block_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.blocked as f64 / self.sent as f64
        }
    }
}

/// Aggregated detection results for a scenario run.
#[derive(Debug, Clone, Default)]
pub struct DetectionStats {
    /// Benign traffic outcomes.
    pub legit: ClassStats,
    /// Per-attack-class outcomes.
    pub per_attack: HashMap<AttackKind, ClassStats>,
}

impl DetectionStats {
    /// Outcomes for one attack class (zeroes if the class never ran).
    pub fn attack(&self, kind: AttackKind) -> ClassStats {
        self.per_attack.get(&kind).copied().unwrap_or_default()
    }

    /// Overall true-positive rate: blocked attacks / attacks sent.
    pub fn true_positive_rate(&self) -> f64 {
        let sent: u64 = self.per_attack.values().map(|s| s.sent).sum();
        let blocked: u64 = self.per_attack.values().map(|s| s.blocked).sum();
        if sent == 0 {
            0.0
        } else {
            blocked as f64 / sent as f64
        }
    }

    /// False-positive rate: blocked benign / benign sent.
    pub fn false_positive_rate(&self) -> f64 {
        self.legit.block_rate()
    }
}

impl fmt::Display for DetectionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "class", "sent", "served", "blocked", "401", "302", "404"
        )?;
        let row = |f: &mut fmt::Formatter<'_>, name: &str, s: &ClassStats| {
            writeln!(
                f,
                "{:<18} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
                name, s.sent, s.served, s.blocked, s.challenged, s.redirected, s.not_found
            )
        };
        row(f, "legit", &self.legit)?;
        let mut kinds: Vec<&AttackKind> = self.per_attack.keys().collect();
        kinds.sort_by_key(|k| k.label());
        for kind in kinds {
            row(f, kind.label(), &self.per_attack[kind])?;
        }
        writeln!(
            f,
            "TPR={:.3} FPR={:.3}",
            self.true_positive_rate(),
            self.false_positive_rate()
        )
    }
}

/// Sends every scenario request to `server` in order, tallying outcomes by
/// ground-truth label.
pub fn run_scenario(server: &Server, scenario: &Scenario) -> DetectionStats {
    let mut stats = DetectionStats::default();
    for item in &scenario.items {
        let response = server.handle(item.request.clone());
        match item.label {
            None => stats.legit.record(response.status),
            Some(kind) => stats
                .per_attack
                .entry(kind)
                .or_default()
                .record(response.status),
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;
    use gaa_audit::notify::CollectingNotifier;
    use gaa_audit::VirtualClock;
    use gaa_conditions::{register_standard, StandardServices};
    use gaa_core::{GaaApiBuilder, MemoryPolicyStore};
    use gaa_eacl::parse_eacl;
    use gaa_httpd::{AccessControl, GaaGlue, Server, Vfs};
    use std::sync::Arc;

    /// The §7.2 protection policy as a system-wide EACL so it guards every
    /// object.
    const SYSTEM_72: &str = "\
eacl_mode 1
neg_access_right apache *
pre_cond accessid GROUP BadGuys
neg_access_right apache *
pre_cond regex gnu *phf* *test-cgi*
rr_cond update_log local on:failure/BadGuys/info:ip
neg_access_right apache *
pre_cond regex gnu *///////////////////*
neg_access_right apache *
pre_cond regex gnu *%*
neg_access_right apache *
pre_cond expr local >1000
pos_access_right apache *
";

    fn protected_server() -> (Server, StandardServices) {
        let services = StandardServices::new(
            Arc::new(VirtualClock::new()),
            Arc::new(CollectingNotifier::new()),
        );
        let mut store = MemoryPolicyStore::new();
        store.set_system(vec![parse_eacl(SYSTEM_72).unwrap()]);
        let api = register_standard(
            GaaApiBuilder::new(Arc::new(store)).with_clock(services.clock.clone()),
            &services,
        )
        .build();
        let glue = GaaGlue::new(api, services.clone());
        (
            Server::new(Vfs::default_site(), AccessControl::Gaa(Box::new(glue))),
            services,
        )
    }

    #[test]
    fn attacks_blocked_legit_served() {
        let (server, _services) = protected_server();
        let scenario =
            ScenarioBuilder::new(11, vec!["/index.html".into(), "/docs/page1.html".into()])
                .legit(40)
                .attacks(AttackKind::CgiExploit, 10)
                .attacks(AttackKind::SlashFlood, 10)
                .attacks(AttackKind::MalformedUrl, 10)
                .attacks(AttackKind::BufferOverflow, 10)
                .build();
        let stats = run_scenario(&server, &scenario);
        assert_eq!(stats.legit.sent, 40);
        assert_eq!(stats.legit.served, 40, "no false positives: {stats}");
        for kind in [
            AttackKind::CgiExploit,
            AttackKind::SlashFlood,
            AttackKind::MalformedUrl,
            AttackKind::BufferOverflow,
        ] {
            let s = stats.attack(kind);
            assert_eq!(s.blocked, s.sent, "{} must be fully blocked", kind.label());
        }
        assert!(stats.true_positive_rate() > 0.999);
        assert_eq!(stats.false_positive_rate(), 0.0);
    }

    #[test]
    fn scan_script_unknown_probes_blocked_via_blacklist() {
        let (server, services) = protected_server();
        let scenario = ScenarioBuilder::new(13, vec!["/index.html".into()])
            .scan_scripts(1, 8)
            .build();
        let stats = run_scenario(&server, &scenario);
        // The known exploit is blocked by signature…
        assert_eq!(stats.attack(AttackKind::CgiExploit).blocked, 1);
        // …and every unknown probe afterwards by the grown blacklist.
        let probes = stats.attack(AttackKind::UnknownProbe);
        assert_eq!(probes.blocked, probes.sent, "{stats}");
        assert!(!services.groups.is_empty("BadGuys"));
    }

    #[test]
    fn unknown_probes_without_prior_exploit_get_through() {
        // Control: the same probes from a fresh address are NOT blocked —
        // the blacklist, not magic, stops the scan script.
        let (server, _services) = protected_server();
        let mut attack_gen =
            crate::attacks::AttackTraffic::new(99).with_attacker_ips(vec!["198.51.100.9".into()]);
        let probe = attack_gen.generate(AttackKind::UnknownProbe);
        let response = server.handle(probe);
        assert_eq!(response.status, StatusCode::Ok);
    }

    #[test]
    fn display_table_renders() {
        let (server, _services) = protected_server();
        let scenario = ScenarioBuilder::new(17, vec!["/index.html".into()])
            .legit(5)
            .attacks(AttackKind::CgiExploit, 2)
            .build();
        let stats = run_scenario(&server, &scenario);
        let table = stats.to_string();
        assert!(table.contains("legit"));
        assert!(table.contains("cgi_exploit"));
        assert!(table.contains("TPR="));
    }
}
