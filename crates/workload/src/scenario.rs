//! Seeded scenario construction: labelled interleavings of benign and
//! attack traffic.

use crate::attacks::{AttackKind, AttackTraffic};
use crate::legit::LegitTraffic;
use gaa_httpd::HttpRequest;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A request with its ground-truth label.
#[derive(Debug, Clone)]
pub struct LabeledRequest {
    /// The request.
    pub request: HttpRequest,
    /// `None` for benign traffic, the attack class otherwise.
    pub label: Option<AttackKind>,
}

/// A finished scenario: an ordered request stream.
#[derive(Debug)]
pub struct Scenario {
    /// The labelled request stream, in send order.
    pub items: Vec<LabeledRequest>,
    /// Seed the scenario was built from (for reproduction in reports).
    pub seed: u64,
}

impl Scenario {
    /// Number of benign requests.
    pub fn legit_count(&self) -> usize {
        self.items.iter().filter(|i| i.label.is_none()).count()
    }

    /// Number of attack requests.
    pub fn attack_count(&self) -> usize {
        self.items.len() - self.legit_count()
    }
}

/// Builds scenarios deterministically from a seed.
#[derive(Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    legit: usize,
    attacks: Vec<(AttackKind, usize)>,
    scan_scripts: usize,
    scan_probes: usize,
    paths: Vec<String>,
}

impl ScenarioBuilder {
    /// A builder over the benign `paths` pool.
    pub fn new(seed: u64, paths: Vec<String>) -> Self {
        ScenarioBuilder {
            seed,
            legit: 0,
            attacks: Vec::new(),
            scan_scripts: 0,
            scan_probes: 5,
            paths,
        }
    }

    /// Adds `n` benign requests.
    #[must_use]
    pub fn legit(mut self, n: usize) -> Self {
        self.legit += n;
        self
    }

    /// Adds `n` attacks of `kind`.
    #[must_use]
    pub fn attacks(mut self, kind: AttackKind, n: usize) -> Self {
        self.attacks.push((kind, n));
        self
    }

    /// Adds `n` vulnerability-scan scripts of `probes` unknown probes each
    /// (§7.2). Scan-script requests keep their relative order (the known
    /// exploit arrives before the unknown probes), mirroring a script that
    /// fires sequentially.
    #[must_use]
    pub fn scan_scripts(mut self, n: usize, probes: usize) -> Self {
        self.scan_scripts = n;
        self.scan_probes = probes;
        self
    }

    /// Builds the scenario: attacks and benign traffic shuffled together
    /// (deterministically), scan scripts appended in order.
    pub fn build(self) -> Scenario {
        let mut items = Vec::new();
        let mut legit_gen = LegitTraffic::new(self.seed ^ 0x5eed_0001, self.paths.clone());
        for request in legit_gen.take(self.legit) {
            items.push(LabeledRequest {
                request,
                label: None,
            });
        }
        let mut attack_gen = AttackTraffic::new(self.seed ^ 0x5eed_0002);
        for (kind, n) in &self.attacks {
            for _ in 0..*n {
                items.push(LabeledRequest {
                    request: attack_gen.generate(*kind),
                    label: Some(*kind),
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed_0003);
        items.shuffle(&mut rng);

        for _ in 0..self.scan_scripts {
            let (_ip, requests) = attack_gen.scan_script(self.scan_probes);
            for (idx, request) in requests.into_iter().enumerate() {
                items.push(LabeledRequest {
                    request,
                    label: Some(if idx == 0 {
                        AttackKind::CgiExploit
                    } else {
                        AttackKind::UnknownProbe
                    }),
                });
            }
        }
        Scenario {
            items,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths() -> Vec<String> {
        vec!["/index.html".into(), "/docs/page1.html".into()]
    }

    #[test]
    fn counts_add_up() {
        let scenario = ScenarioBuilder::new(1, paths())
            .legit(50)
            .attacks(AttackKind::CgiExploit, 5)
            .attacks(AttackKind::SlashFlood, 3)
            .scan_scripts(2, 4)
            .build();
        assert_eq!(scenario.legit_count(), 50);
        // 5 + 3 + 2*(1 + 4).
        assert_eq!(scenario.attack_count(), 18);
        assert_eq!(scenario.items.len(), 68);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ScenarioBuilder::new(9, paths())
            .legit(20)
            .attacks(AttackKind::BufferOverflow, 4)
            .build();
        let b = ScenarioBuilder::new(9, paths())
            .legit(20)
            .attacks(AttackKind::BufferOverflow, 4)
            .build();
        let targets_a: Vec<&str> = a.items.iter().map(|i| i.request.target.as_str()).collect();
        let targets_b: Vec<&str> = b.items.iter().map(|i| i.request.target.as_str()).collect();
        assert_eq!(targets_a, targets_b);
    }

    #[test]
    fn interleaving_actually_shuffles() {
        let scenario = ScenarioBuilder::new(3, paths())
            .legit(30)
            .attacks(AttackKind::CgiExploit, 30)
            .build();
        // Attacks must not all sit at the end.
        let first_half_attacks = scenario.items[..30]
            .iter()
            .filter(|i| i.label.is_some())
            .count();
        assert!(
            first_half_attacks > 3,
            "{first_half_attacks} attacks in first half"
        );
    }

    #[test]
    fn scan_scripts_preserve_exploit_first_order() {
        let scenario = ScenarioBuilder::new(4, paths()).scan_scripts(1, 3).build();
        assert_eq!(scenario.items.len(), 4);
        assert_eq!(scenario.items[0].label, Some(AttackKind::CgiExploit));
        assert!(scenario.items[1..]
            .iter()
            .all(|i| i.label == Some(AttackKind::UnknownProbe)));
        // All from the same source.
        let ip = &scenario.items[0].request.client_ip;
        assert!(scenario.items.iter().all(|i| &i.request.client_ip == ip));
    }
}
