//! Attack-traffic generation: every attack class the paper names.

use gaa_httpd::auth::base64_encode;
use gaa_httpd::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack classes exercised by the scenarios (§1, §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Vulnerable-CGI exploitation (`phf`, `test-cgi`).
    CgiExploit,
    /// NIMDA-style malformed (`%`-laden) URL.
    MalformedUrl,
    /// Slash-flood request that slows Apache and fills logs.
    SlashFlood,
    /// Code-Red-style oversized input (>1000 chars).
    BufferOverflow,
    /// Repeated wrong-password attempts.
    PasswordGuessing,
    /// A probe with **no known signature** — only blacklisting the source
    /// after an earlier hit can stop it (§7.2's closing argument).
    UnknownProbe,
}

impl AttackKind {
    /// All kinds, for sweeps.
    pub fn all() -> [AttackKind; 6] {
        [
            AttackKind::CgiExploit,
            AttackKind::MalformedUrl,
            AttackKind::SlashFlood,
            AttackKind::BufferOverflow,
            AttackKind::PasswordGuessing,
            AttackKind::UnknownProbe,
        ]
    }

    /// A short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::CgiExploit => "cgi_exploit",
            AttackKind::MalformedUrl => "malformed_url",
            AttackKind::SlashFlood => "slash_flood",
            AttackKind::BufferOverflow => "buffer_overflow",
            AttackKind::PasswordGuessing => "password_guessing",
            AttackKind::UnknownProbe => "unknown_probe",
        }
    }
}

/// Generator of attack requests.
#[derive(Debug)]
pub struct AttackTraffic {
    rng: StdRng,
    attacker_ips: Vec<String>,
}

impl AttackTraffic {
    /// A deterministic generator with the default attacker pool.
    pub fn new(seed: u64) -> Self {
        AttackTraffic {
            rng: StdRng::seed_from_u64(seed),
            attacker_ips: (1..=5).map(|i| format!("203.0.113.{i}")).collect(),
        }
    }

    /// Replaces the attacker IP pool.
    #[must_use]
    pub fn with_attacker_ips(mut self, ips: Vec<String>) -> Self {
        assert!(!ips.is_empty(), "need at least one attacker IP");
        self.attacker_ips = ips;
        self
    }

    fn attacker_ip(&mut self) -> String {
        self.attacker_ips[self.rng.gen_range(0..self.attacker_ips.len())].clone()
    }

    /// One request of the given kind.
    pub fn generate(&mut self, kind: AttackKind) -> HttpRequest {
        let ip = self.attacker_ip();
        self.generate_from(kind, &ip)
    }

    /// One request of the given kind from a specific source.
    pub fn generate_from(&mut self, kind: AttackKind, ip: &str) -> HttpRequest {
        match kind {
            AttackKind::CgiExploit => {
                let target = if self.rng.gen_bool(0.5) {
                    "/cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd".to_string()
                } else {
                    "/cgi-bin/test-cgi?*".to_string()
                };
                HttpRequest::get(&target).with_client_ip(ip)
            }
            AttackKind::MalformedUrl => {
                HttpRequest::get("/scripts/..%c0%af../winnt/system32/cmd.exe?/c+dir")
                    .with_client_ip(ip)
            }
            AttackKind::SlashFlood => {
                let slashes = "/".repeat(self.rng.gen_range(20..40));
                HttpRequest::get(&format!("/a{slashes}b")).with_client_ip(ip)
            }
            AttackKind::BufferOverflow => {
                let payload = "A".repeat(self.rng.gen_range(1100..1500));
                HttpRequest::get(&format!("/cgi-bin/search?q={payload}")).with_client_ip(ip)
            }
            AttackKind::PasswordGuessing => {
                let guess = format!("guess{}", self.rng.gen_range(0..100_000));
                let token = base64_encode(format!("alice:{guess}").as_bytes());
                HttpRequest::get("/staff/home.html")
                    .with_client_ip(ip)
                    .with_header("authorization", &format!("Basic {token}"))
            }
            AttackKind::UnknownProbe => {
                // A zero-day-ish probe: hits a real object with an input no
                // signature in the default DB matches.
                let n = self.rng.gen_range(0..1000);
                HttpRequest::get(&format!("/cgi-bin/search?q=exploit{n}")).with_client_ip(ip)
            }
        }
    }

    /// The §7.2 vulnerability-scan script: from one address, a known
    /// exploit first, then `probes` attacks with unknown signatures. "If
    /// the system identifies requests from an address as matching known
    /// attack signature, then subsequent requests from that host … checking
    /// for vulnerabilities we might not yet know about, can still be
    /// blocked."
    pub fn scan_script(&mut self, probes: usize) -> (String, Vec<HttpRequest>) {
        let ip = self.attacker_ip();
        let mut out = vec![self.generate_from(AttackKind::CgiExploit, &ip)];
        for _ in 0..probes {
            out.push(self.generate_from(AttackKind::UnknownProbe, &ip));
        }
        (ip, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = AttackTraffic::new(5);
        let mut b = AttackTraffic::new(5);
        for kind in AttackKind::all() {
            assert_eq!(a.generate(kind).target, b.generate(kind).target);
        }
    }

    #[test]
    fn cgi_exploit_matches_paper_signatures() {
        let mut gen = AttackTraffic::new(1);
        for _ in 0..20 {
            let req = gen.generate(AttackKind::CgiExploit);
            assert!(
                req.target.contains("phf") || req.target.contains("test-cgi"),
                "{}",
                req.target
            );
        }
    }

    #[test]
    fn malformed_url_contains_percent() {
        let req = AttackTraffic::new(1).generate(AttackKind::MalformedUrl);
        assert!(req.target.contains('%'));
    }

    #[test]
    fn slash_flood_has_long_slash_run() {
        let req = AttackTraffic::new(1).generate(AttackKind::SlashFlood);
        assert!(req.target.contains("////////////////////"));
    }

    #[test]
    fn overflow_exceeds_1000_chars() {
        let req = AttackTraffic::new(1).generate(AttackKind::BufferOverflow);
        assert!(req.input_len() > 1000);
    }

    #[test]
    fn password_guessing_carries_bad_credentials() {
        let req = AttackTraffic::new(1).generate(AttackKind::PasswordGuessing);
        assert!(req.header("authorization").unwrap().starts_with("Basic "));
    }

    #[test]
    fn unknown_probe_avoids_default_signatures() {
        use gaa_ids::SignatureDb;
        let db = SignatureDb::with_defaults();
        let mut gen = AttackTraffic::new(9);
        for _ in 0..50 {
            let req = gen.generate(AttackKind::UnknownProbe);
            assert!(
                db.scan(&req.request_line(), req.input_len()).is_empty(),
                "unknown probe must not match known signatures: {}",
                req.target
            );
        }
    }

    #[test]
    fn scan_script_keeps_one_source() {
        let (ip, requests) = AttackTraffic::new(2).scan_script(5);
        assert_eq!(requests.len(), 6);
        assert!(requests.iter().all(|r| r.client_ip == ip));
        // First request is the known exploit.
        assert!(requests[0].target.contains("phf") || requests[0].target.contains("test-cgi"));
    }
}
