//! Every catalog code fires on a crafted fixture, locations and renderers
//! behave, and the differential harness signs off on the analyzer's claims
//! for a paper-style (§7.2) deployment.

use gaa_analyze::{
    differential_check, max_severity, render_human, render_json, Analyzer, LintSeverity,
    RegistrySnapshot, Source,
};

fn src(name: &str, text: &str) -> Source {
    Source::parse(name, text).unwrap()
}

fn codes(lints: &[gaa_analyze::Lint]) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = lints.iter().map(|l| l.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

#[test]
fn syntax_tier_codes_fold_in() {
    // GAA101 empty policy, GAA103 duplicate, GAA104 leading deny-all.
    let empty = src("/empty", "eacl_mode narrow\n");
    let lints = Analyzer::new().analyze(&[], &[empty]);
    assert!(codes(&lints).contains(&"GAA101"));

    let dup = src(
        "/dup",
        "pos_access_right apache GET\npos_access_right apache GET\n",
    );
    let lints = Analyzer::new().analyze(&[], &[dup]);
    assert!(codes(&lints).contains(&"GAA103"));

    let deny_all = src(
        "/deny",
        "neg_access_right * *\npos_access_right apache GET\n",
    );
    let lints = Analyzer::new().analyze(&[], &[deny_all]);
    assert!(codes(&lints).contains(&"GAA104"));

    // GAA102 (the syntax tier's coarse unreachability) is superseded by
    // GAA201 and must not appear.
    let shadowed = src("/s", "pos_access_right * *\nneg_access_right apache GET\n");
    let lints = Analyzer::new().analyze(&[], &[shadowed]);
    assert!(!codes(&lints).contains(&"GAA102"));
    assert!(codes(&lints).contains(&"GAA201"));
}

#[test]
fn guard_subset_shadowing_is_caught_beyond_the_syntax_tier() {
    // Entry 1 repeats entry 0's guard, so it can never be the first match:
    // the syntax tier (unconditional blockers only) misses this, GAA201
    // does not.
    let local = src(
        "/x",
        "pos_access_right apache *\n\
         pre_cond accessid GROUP staff\n\
         neg_access_right apache GET\n\
         pre_cond accessid GROUP staff\n\
         pre_cond accessid USER alice\n",
    );
    let lints = Analyzer::new().analyze(&[], &[local]);
    let shadow = lints.iter().find(|l| l.code == "GAA201").unwrap();
    assert_eq!(shadow.severity, LintSeverity::Error);
    assert_eq!(shadow.entry, Some(1));
    // The span points at the shadowed entry's access-right line.
    assert_eq!(shadow.span.unwrap().line, 3);
}

#[test]
fn composition_codes_cover_all_three_modes() {
    let local = src("/x", "neg_access_right apache GET\n");
    let stop = src("system", "eacl_mode stop\npos_access_right apache *\n");
    let lints = Analyzer::new().analyze(&[stop], std::slice::from_ref(&local));
    assert!(codes(&lints).contains(&"GAA202"));

    let narrow = src("system", "eacl_mode narrow\nneg_access_right apache *\n");
    let grant = src("/x", "pos_access_right apache GET\n");
    let lints = Analyzer::new().analyze(&[narrow], &[grant]);
    assert!(codes(&lints).contains(&"GAA203"));

    let expand = src("system", "eacl_mode expand\npos_access_right apache *\n");
    let lints = Analyzer::new().analyze(&[expand], &[local]);
    assert!(codes(&lints).contains(&"GAA204"));
}

#[test]
fn conditional_system_entries_do_not_void_locals() {
    // The §7.2 system screen is guarded by a regex condition, so local
    // policies stay live under narrow composition.
    let system = src(
        "system",
        "eacl_mode narrow\n\
         neg_access_right apache *\n\
         pre_cond regex gnu *phf*\n\
         pos_access_right apache *\n",
    );
    let local = src("/cgi-bin/phf", "pos_access_right apache GET\n");
    let lints = Analyzer::new().analyze(&[system], &[local]);
    assert!(lints.is_empty(), "unexpected: {lints:?}");
}

#[test]
fn maybe_surface_and_redirect_codes() {
    let unknown = src(
        "/a",
        "pos_access_right apache *\npre_cond reputation remote low\n",
    );
    let lints = Analyzer::new().analyze(&[], &[unknown]);
    assert!(codes(&lints).contains(&"GAA301"));

    let typo = src(
        "/b",
        "pos_access_right apache *\npre_cond acessid USER alice\n",
    );
    let lints = Analyzer::new().analyze(&[], &[typo]);
    let typo_lint = lints.iter().find(|l| l.code == "GAA302").unwrap();
    assert!(typo_lint.suggestion.is_some());

    // A two-object redirect cycle: /a redirects to /b, /b back to /a.
    let a = src(
        "/a",
        "pos_access_right apache *\npre_cond redirect local http://replica.example.org/b\n",
    );
    let b = src(
        "/b",
        "pos_access_right apache *\npre_cond redirect local http://replica.example.org/a\n",
    );
    let lints = Analyzer::new().analyze(&[], &[a.clone(), b]);
    assert_eq!(
        lints.iter().filter(|l| l.code == "GAA303").count(),
        2,
        "both edges of the cycle are reported"
    );

    // A redirect out of the analyzed set is fine (the paper's replica case).
    let lints = Analyzer::new().analyze(&[], &[a]);
    assert!(!codes(&lints).contains(&"GAA303"));
}

#[test]
fn completeness_gaps_use_the_deployment_vocabulary() {
    let system = src("system", "eacl_mode narrow\npos_access_right apache GET\n");
    let local = src("/x", "pos_access_right sshd login\n");
    let lints =
        Analyzer::new().analyze(std::slice::from_ref(&system), std::slice::from_ref(&local));
    let gaps: Vec<_> = lints.iter().filter(|l| l.code == "GAA401").collect();
    assert_eq!(gaps.len(), 4);
    // And the runtime agrees those rights fall through to default deny.
    let snapshot = RegistrySnapshot::standard();
    let report = differential_check(&[system], &[local], &snapshot, &lints, 3);
    assert!(report.is_consistent(), "{:?}", report.violations);
}

#[test]
fn renderers_cover_the_report() {
    let system = src("system", "eacl_mode narrow\nneg_access_right apache *\n");
    let local = src(
        "/x",
        "pos_access_right apache GET\npre_cond acessid USER a\n",
    );
    let lints = Analyzer::new().analyze(&[system], &[local]);
    assert_eq!(max_severity(&lints), Some(LintSeverity::Error));

    let human = render_human(&lints);
    assert!(human.contains("error[GAA302]"));
    assert!(human.contains("warning[GAA203]"));
    assert!(human.lines().last().unwrap().starts_with("policy check: "));

    let json = render_json(&lints);
    assert!(json.starts_with("{\"schema_version\":4,\"max_severity\":\"error\""));
    assert!(json.contains("\"code\":\"GAA302\""));
    assert!(json.contains("\"layer\":\"local\""));
    // Spans survive into the JSON shape.
    assert!(json.contains("\"line\":2"));
}

#[test]
fn paper_deployment_lints_clean_and_differentially_consistent() {
    // The §7.2 deployment: system-wide CGI-exploit screening with response
    // actions, per-object local policies, threat-level modulation.
    let system = src(
        "system",
        "eacl_mode narrow\n\
         neg_access_right apache *\n\
         pre_cond regex gnu *phf* *test-cgi*\n\
         rr_cond notify local on:failure/sysadmin/info:cgi_exploit\n\
         rr_cond update_log local on:failure/BadGuys/info:ip\n\
         neg_access_right apache *\n\
         pre_cond system_threat_level local =high\n\
         pre_cond accessid HOST untrusted.example.org\n\
         pos_access_right apache *\n",
    );
    let phf = src(
        "/cgi-bin/phf",
        "neg_access_right apache *\n\
         pre_cond accessid GROUP BadGuys\n\
         rr_cond audit local on:failure\n\
         pos_access_right apache *\n\
         pre_cond accessid USER trusted\n\
         pos_access_right apache GET\n",
    );
    let index = src("/index.html", "pos_access_right apache *\n");
    let snapshot = RegistrySnapshot::standard();
    let analyzer = Analyzer::with_snapshot(snapshot.clone());
    let lints = analyzer.analyze(std::slice::from_ref(&system), &[phf.clone(), index.clone()]);
    assert!(lints.is_empty(), "unexpected lints: {lints:?}");

    let report = differential_check(&[system], &[phf, index], &snapshot, &lints, 42);
    assert!(
        report.exhaustive,
        "small deployments are checked exhaustively"
    );
    assert!(report.is_consistent());
    assert!(report.requests > 0);
}
