//! Seeded randomized agreement between the analyzer and the runtime.
//!
//! For randomly generated small deployments across all three composition
//! modes, every reachability/completeness lint the analyzer emits must
//! survive [`gaa_analyze::differential_check`] — i.e. the real `gaa-core`
//! evaluator, driven over the full request alphabet and (exhaustively, for
//! these sizes) every truth assignment of the registered pre-conditions,
//! never contradicts an analyzer claim. No wall-clock randomness: the
//! generator is a fixed-seed `StdRng`, so failures reproduce exactly.

use gaa_analyze::{differential_check, Analyzer, RegistrySnapshot, Source};
use gaa_eacl::{AccessRight, CompositionMode, CondPhase, Condition, Eacl, EaclEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const AUTHORITIES: &[&str] = &["apache", "sshd", "*"];
const VALUES: &[&str] = &["GET", "POST", "login", "*"];

/// Pre-condition pool: three triples the standard catalog registers plus
/// one it does not (exercising the MAYBE path through both the analyzer
/// and the evaluator).
const CONDITIONS: &[(&str, &str, &str)] = &[
    ("accessid", "USER", "alice"),
    ("accessid", "GROUP", "staff"),
    ("system_threat_level", "local", "=high"),
    ("reputation", "remote", "low"),
];

fn pick<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> &'a T {
    &pool[rng.gen_range(0..pool.len())]
}

fn random_entry(rng: &mut StdRng) -> EaclEntry {
    let authority = *pick(rng, AUTHORITIES);
    let value = *pick(rng, VALUES);
    let right = if rng.gen::<bool>() {
        AccessRight::positive(authority, value)
    } else {
        AccessRight::negative(authority, value)
    };
    let mut entry = EaclEntry::new(right);
    for _ in 0..rng.gen_range(0..=2usize) {
        let (t, a, v) = *pick(rng, CONDITIONS);
        entry = entry.with_condition(CondPhase::Pre, Condition::new(t, a, v));
    }
    entry
}

fn random_eacl(rng: &mut StdRng, mode: Option<CompositionMode>) -> Eacl {
    let mut eacl = match mode {
        Some(mode) => Eacl::with_mode(mode),
        None => Eacl::new(),
    };
    for _ in 0..rng.gen_range(0..=3usize) {
        eacl = eacl.with_entry(random_entry(rng));
    }
    eacl
}

fn random_deployment(rng: &mut StdRng, mode: CompositionMode) -> (Vec<Source>, Vec<Source>) {
    let system = vec![Source::from_eacls(
        "system",
        vec![random_eacl(rng, Some(mode))],
    )];
    let objects = ["/a", "/b"];
    let locals = objects[..rng.gen_range(1..=objects.len())]
        .iter()
        .map(|name| Source::from_eacls(*name, vec![random_eacl(rng, None)]))
        .collect();
    (system, locals)
}

#[test]
fn analyzer_claims_agree_with_the_runtime_across_all_modes() {
    let snapshot = RegistrySnapshot::standard();
    let analyzer = Analyzer::with_snapshot(snapshot.clone());
    let mut rng = StdRng::seed_from_u64(0x6141_4c31);
    let mut checked_claims = 0usize;
    for round in 0..40 {
        for mode in [
            CompositionMode::Expand,
            CompositionMode::Narrow,
            CompositionMode::Stop,
        ] {
            let (system, locals) = random_deployment(&mut rng, mode);
            let lints = analyzer.analyze(&system, &locals);
            let report = differential_check(&system, &locals, &snapshot, &lints, round as u64);
            assert!(
                report.exhaustive,
                "generated deployments must stay exhaustively checkable"
            );
            assert!(
                report.is_consistent(),
                "round {round} mode {mode:?}: runtime refuted analyzer claims:\n  {}\n\
                 system: {:?}\nlocals: {:?}",
                report.violations.join("\n  "),
                system.iter().map(|s| &s.eacls).collect::<Vec<_>>(),
                locals
                    .iter()
                    .map(|s| (&s.name, &s.eacls))
                    .collect::<Vec<_>>(),
            );
            checked_claims += report.lints_checked;
        }
    }
    // The generator must actually produce checkable claims, or this test
    // proves nothing.
    assert!(
        checked_claims > 50,
        "only {checked_claims} runtime-checkable lints generated"
    );
}

#[test]
fn shadowed_entries_never_apply_even_with_mixed_polarities() {
    // Directed variant: force frequent shadowing by drawing from one
    // authority and two values, then rely on the GAA201 never-applied claim.
    let snapshot = RegistrySnapshot::standard();
    let analyzer = Analyzer::with_snapshot(snapshot.clone());
    let mut rng = StdRng::seed_from_u64(0x5348_4457);
    let mut shadows = 0usize;
    for round in 0..60 {
        let mut eacl = Eacl::new();
        for _ in 0..4 {
            let value = *pick(&mut rng, &["GET", "*"]);
            let right = if rng.gen::<bool>() {
                AccessRight::positive("apache", value)
            } else {
                AccessRight::negative("apache", value)
            };
            let mut entry = EaclEntry::new(right);
            if rng.gen::<bool>() {
                entry = entry
                    .with_condition(CondPhase::Pre, Condition::new("accessid", "USER", "alice"));
            }
            eacl = eacl.with_entry(entry);
        }
        let locals = vec![Source::from_eacls("/x", vec![eacl])];
        let lints = analyzer.analyze(&[], &locals);
        shadows += lints.iter().filter(|l| l.code == "GAA201").count();
        let report = differential_check(&[], &locals, &snapshot, &lints, round);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }
    assert!(shadows > 20, "only {shadows} shadowing lints generated");
}

#[test]
fn polarity_fix_suggestion_example_from_the_paper_holds() {
    // Deterministic regression: the §7.2 ordering pitfall — a broad grant
    // before a narrow deny — must produce an Error-severity GAA201 whose
    // claim the runtime confirms (the deny truly never fires).
    let local = Source::from_eacls(
        "/cgi-bin/phf",
        vec![Eacl::new()
            .with_entry(EaclEntry::new(AccessRight::positive("apache", "*")))
            .with_entry(
                EaclEntry::new(AccessRight::negative("apache", "*")).with_condition(
                    CondPhase::Pre,
                    Condition::new("accessid", "GROUP", "BadGuys"),
                ),
            )],
    );
    let snapshot = RegistrySnapshot::standard();
    let analyzer = Analyzer::with_snapshot(snapshot.clone());
    let lints = analyzer.analyze(&[], std::slice::from_ref(&local));
    // The unconditional grant's empty guard subsumes the deny's: for every
    // request the deny matches, the grant applies first, so the BadGuys
    // screen silently never fires.
    let shadow = lints
        .iter()
        .find(|l| l.code == "GAA201")
        .expect("misordered deny must be flagged");
    assert_eq!(shadow.severity, gaa_analyze::LintSeverity::Error);
    let report = differential_check(&[], &[local], &snapshot, &lints, 1);
    assert!(report.is_consistent(), "{:?}", report.violations);
}
