//! The GAA7xx pattern-analysis tier: lints over the *pattern sets* a
//! deployment evaluates — the glob/`re:` token lists of its `regex`
//! conditions plus the active signature database's URL globs.
//!
//! Every finding here is a claim about runtime matcher behaviour, so every
//! finding is **replayed through the real matchers** before it is reported:
//! subsumption witnesses are sampled from the sub-pattern's automaton and
//! run through [`gaa_conditions::multipattern::match_one`] (the same
//! per-pattern path `signature_matches` falls back to), encoding-bypass
//! witnesses are checked against every pattern in the set, and cost
//! findings quote step counts measured by the production glob matcher
//! itself. A claim that fails replay is dropped, never downgraded — the
//! tier's contract is zero false claims, not maximal recall.
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | `GAA701` | warning | pattern subsumed by another pattern in the same set (redundant; shadows nothing at runtime) |
//! | `GAA702` | error/warning | pattern can never match: invalid `re:` (error) or empty language (warning) |
//! | `GAA703` | warning | glob (case-insensitive) and `re:` (case-sensitive) guard the same literal — case-flipped requests hit only one dialect |
//! | `GAA704` | warning | percent-encoding bypass: a matched request survives encoding untouched by the whole set (the NIMDA `%5c` gap) |
//! | `GAA705` | note | adversarial input amplifies glob cost to ≥ [`COST_FACTOR_THRESHOLD`] matcher steps per input byte |

use crate::lint::{Lint, LintSeverity};
use crate::source::Source;
use gaa_conditions::multipattern::analysis::{language_included, Inclusion, PatternAutomaton};
use gaa_conditions::multipattern::match_one;
use gaa_conditions::regex::{Regex, REGEX_PREFIX};
use gaa_eacl::{CondPhase, PolicyLayer, Span};
use gaa_ids::matcher::glob_match_ci_steps;
use gaa_ids::signatures::Matcher;
use gaa_ids::SignatureDb;

/// Product-state budget for each [`language_included`] query. Exhaustion
/// yields [`Inclusion::Unknown`] — no claim, never a guess.
pub const INCLUSION_BUDGET: usize = 4096;

/// Subset-state budget for shortest-witness searches.
const WITNESS_BUDGET: usize = 2048;

/// Accepted-string samples replayed per subsumption claim.
const SAMPLES: usize = 4;

/// GAA705 reports when crafted input drives the glob matcher to at least
/// this many steps per input byte.
pub const COST_FACTOR_THRESHOLD: f64 = 8.0;

/// One pattern set evaluated together at runtime: the whitespace-split
/// value of a single `regex` condition (an OR at evaluation time), or the
/// URL-glob signatures of the active database.
struct PatternSet {
    source: String,
    layer: Option<PolicyLayer>,
    eacl: Option<usize>,
    entry: Option<usize>,
    span: Option<Span>,
    patterns: Vec<String>,
}

impl PatternSet {
    fn lint(&self, code: &'static str, severity: LintSeverity, message: String) -> Lint {
        let mut lint = Lint::new(code, severity, &self.source, message);
        if let (Some(layer), Some(eacl)) = (self.layer, self.eacl) {
            lint = lint.at(layer, eacl, self.entry, self.span);
        }
        lint
    }
}

/// What one [`lint_patterns`] run looked at and concluded.
#[derive(Debug)]
pub struct PatternReport {
    /// The findings, sorted by (source, code, message).
    pub lints: Vec<Lint>,
    /// Pattern sets examined (condition values + the signature set).
    pub sets: usize,
    /// Individual pattern tokens examined.
    pub patterns: usize,
    /// Claims confirmed by real-matcher replay and reported.
    pub confirmed: usize,
    /// Claims the automaton tier raised but replay could not confirm —
    /// dropped, per the zero-false-claims contract.
    pub dropped: usize,
}

/// Runs the GAA7xx tier over a deployment's policy sources plus an
/// optional signature database. Pure and deterministic for a given `seed`.
pub fn lint_patterns(
    system: &[Source],
    locals: &[Source],
    db: Option<&SignatureDb>,
    seed: u64,
) -> PatternReport {
    let sets = collect_sets(system, locals, db);
    let mut report = PatternReport {
        lints: Vec::new(),
        sets: sets.len(),
        patterns: sets.iter().map(|s| s.patterns.len()).sum(),
        confirmed: 0,
        dropped: 0,
    };
    for set in &sets {
        lint_set(set, seed, &mut report);
    }
    report.lints.sort_by(|a, b| {
        (a.source.as_str(), a.code, &a.message).cmp(&(b.source.as_str(), b.code, &b.message))
    });
    report
}

/// Collects every runtime pattern set: one per `regex` pre-condition value
/// (system and local layers) plus one for the database's URL globs.
fn collect_sets(system: &[Source], locals: &[Source], db: Option<&SignatureDb>) -> Vec<PatternSet> {
    let mut sets = Vec::new();
    for (layer, sources) in [(PolicyLayer::System, system), (PolicyLayer::Local, locals)] {
        for source in sources {
            for (ei, eacl) in source.eacls.iter().enumerate() {
                for (ni, entry) in eacl.entries.iter().enumerate() {
                    for (ci, cond) in entry.pre.iter().enumerate() {
                        if cond.cond_type != "regex" {
                            continue;
                        }
                        let patterns: Vec<String> =
                            cond.value.split_whitespace().map(str::to_owned).collect();
                        if patterns.is_empty() {
                            continue;
                        }
                        sets.push(PatternSet {
                            source: source.name.clone(),
                            layer: Some(layer),
                            eacl: Some(ei),
                            entry: Some(ni),
                            span: source.condition_span(ei, ni, CondPhase::Pre, ci),
                            patterns,
                        });
                    }
                }
            }
        }
    }
    if let Some(db) = db {
        let patterns: Vec<String> = db
            .signatures()
            .iter()
            .filter_map(|sig| match &sig.matcher {
                Matcher::UrlGlob(glob) => Some(glob.clone()),
                Matcher::InputLongerThan(_) => None,
            })
            .collect();
        if !patterns.is_empty() {
            sets.push(PatternSet {
                source: "signatures".to_string(),
                layer: None,
                eacl: None,
                entry: None,
                span: None,
                patterns,
            });
        }
    }
    sets
}

fn lint_set(set: &PatternSet, seed: u64, report: &mut PatternReport) {
    // GAA702 first: dead patterns are excluded from the pairwise checks
    // (anything is "subsumed by" a pattern that matches nothing… vacuously
    // backwards; and sampling them is pointless).
    let mut alive = vec![true; set.patterns.len()];
    for (i, pattern) in set.patterns.iter().enumerate() {
        if let Some(lint) = check_unsatisfiable(set, pattern) {
            alive[i] = false;
            report.confirmed += 1;
            report.lints.push(lint);
        }
    }

    let automata: Vec<Option<PatternAutomaton>> = set
        .patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if alive[i] {
                PatternAutomaton::compile(p)
            } else {
                None
            }
        })
        .collect();

    check_subsumption(set, &automata, seed, report);
    check_case_gap(set, &alive, report);
    check_encoding_bypass(set, &automata, seed, report);
    check_cost(set, &alive, report);
}

/// GAA702: a pattern that can never match. Invalid `re:` patterns are
/// errors (the runtime silently treats them as non-matches); syntactically
/// valid but empty-language patterns are warnings. Both claims are
/// replayed: the real matcher must reject a handful of probe texts.
fn check_unsatisfiable(set: &PatternSet, pattern: &str) -> Option<Lint> {
    let probes: [&str; 4] = ["", "/", "/cgi-bin/phf?x", pattern];
    if let Some(src) = pattern.strip_prefix(REGEX_PREFIX) {
        if Regex::new(src).is_err() {
            if probes.iter().any(|t| match_one(pattern, t)) {
                return None; // replay contradicts the claim — drop it
            }
            return Some(set.lint(
                "GAA702",
                LintSeverity::Error,
                format!("regex `{pattern}` is invalid and can never match — the runtime treats it as an unconditional non-match"),
            ).with_suggestion("fix the regex or delete the token".to_string()));
        }
    }
    let automaton = PatternAutomaton::compile(pattern)?;
    if !automaton.is_empty_language() || automaton.shortest_accepted(WITNESS_BUDGET).is_some() {
        return None;
    }
    if probes.iter().any(|t| match_one(pattern, t)) {
        return None;
    }
    Some(set.lint(
        "GAA702",
        LintSeverity::Warning,
        format!("pattern `{pattern}` matches no string (empty language)"),
    ))
}

/// GAA701: within one OR-set, a pattern whose language is contained in
/// another's contributes nothing. Containment is proven by DFA-product
/// walk ([`language_included`]); the claim is only reported after sampled
/// accepted strings of the subsumed pattern replay as matches of **both**
/// patterns through the real matcher.
fn check_subsumption(
    set: &PatternSet,
    automata: &[Option<PatternAutomaton>],
    seed: u64,
    report: &mut PatternReport,
) {
    let n = set.patterns.len();
    let mut included = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if let (Some(a), Some(b)) = (&automata[i], &automata[j]) {
                included[i][j] = matches!(
                    language_included(a, b, INCLUSION_BUDGET),
                    Inclusion::Included
                );
            }
        }
    }
    for i in 0..n {
        // Report `i` as subsumed by the first `j` that strictly contains
        // it — or, for equivalent patterns, by an *earlier* duplicate
        // (so exactly one of an equal pair is flagged).
        let by = (0..n).find(|&j| j != i && included[i][j] && (!included[j][i] || j < i));
        let Some(j) = by else { continue };
        let sub = &set.patterns[i];
        let sup = &set.patterns[j];
        let samples = automata[i]
            .as_ref()
            .map(|a| a.sample_accepted(seed ^ i as u64, 24, SAMPLES))
            .unwrap_or_default();
        let replayed = !samples.is_empty()
            && samples
                .iter()
                .all(|s| match_one(sub, s) && match_one(sup, s));
        if !replayed {
            report.dropped += 1;
            continue;
        }
        report.confirmed += 1;
        let relation = if included[j][i] {
            "equivalent to"
        } else {
            "subsumed by"
        };
        report.lints.push(
            set.lint(
                "GAA701",
                LintSeverity::Warning,
                format!(
                    "pattern `{sub}` is {relation} `{sup}` in the same set — every request it matches \
                     (replayed: {}) is already matched, so it is dead weight",
                    sample_list(&samples),
                ),
            )
            .with_suggestion(format!("delete `{sub}` or tighten `{sup}`")),
        );
    }
}

/// GAA703: a case-insensitive glob and a case-sensitive `re:` guarding the
/// same literal. The case-flipped witness is replayed: the glob must match
/// it and the regex must not, or no claim is made.
fn check_case_gap(set: &PatternSet, alive: &[bool], report: &mut PatternReport) {
    for (i, glob) in set.patterns.iter().enumerate() {
        if !alive[i] || glob.starts_with(REGEX_PREFIX) {
            continue;
        }
        let Some(gcore) = glob_literal_core(glob) else {
            continue;
        };
        for (j, re) in set.patterns.iter().enumerate() {
            if !alive[j] {
                continue;
            }
            let Some(rlit) = regex_literal(re) else {
                continue;
            };
            if !gcore.eq_ignore_ascii_case(rlit) || !rlit.bytes().any(|b| b.is_ascii_alphabetic()) {
                continue;
            }
            let witness = flip_first_letter(rlit);
            if !match_one(glob, &witness) || match_one(re, &witness) {
                report.dropped += 1;
                continue;
            }
            report.confirmed += 1;
            report.lints.push(
                set.lint(
                    "GAA703",
                    LintSeverity::Warning,
                    format!(
                        "glob `{glob}` matches `{rlit}` case-insensitively but regex `{re}` is \
                         case-sensitive — request `{witness}` hits only the glob",
                    ),
                )
                .with_suggestion(
                    "spell the regex with explicit case classes or drop one dialect".to_string(),
                ),
            );
        }
    }
}

/// GAA704: the NIMDA gap. For a request the set matches, percent-encoding
/// one character produces a raw request line **no pattern in the set**
/// matches, although the server decodes it back to the caught form. A set
/// containing an encoded-form catcher (the paper's `*%*`) is immune — any
/// pattern matching the encoded witness suppresses the finding.
fn check_encoding_bypass(
    set: &PatternSet,
    automata: &[Option<PatternAutomaton>],
    seed: u64,
    report: &mut PatternReport,
) {
    for (i, pattern) in set.patterns.iter().enumerate() {
        let Some(automaton) = &automata[i] else {
            continue;
        };
        let mut witnesses = automaton.sample_accepted(seed ^ ((i as u64) << 8), 24, SAMPLES);
        if let Some(shortest) = automaton.shortest_accepted(WITNESS_BUDGET) {
            witnesses.insert(0, shortest);
        }
        for witness in witnesses {
            // The decoded form must really be caught (replay, not model).
            if !match_one(pattern, &witness) {
                continue;
            }
            let Some(encoded) = encode_one_char(&witness) else {
                continue;
            };
            if set.patterns.iter().any(|p| match_one(p, &encoded)) {
                continue; // the set catches the encoded form — no gap
            }
            report.confirmed += 1;
            report.lints.push(
                set.lint(
                    "GAA704",
                    LintSeverity::Warning,
                    format!(
                        "encoding bypass: `{encoded}` evades every pattern in this set raw, but \
                         decodes to `{witness}`, which `{pattern}` catches — attackers can \
                         percent-encode past the check",
                    ),
                )
                .with_suggestion(
                    "match the decoded request line, or add an encoded-form catcher such as `*%*`"
                        .to_string(),
                ),
            );
            return; // one confirmed witness per set is enough
        }
    }
}

/// GAA705: measured cost amplification. For globs with a long literal
/// segment after a `*`, crafted input forces the backtracking matcher to
/// re-scan the segment at every position. The finding quotes step counts
/// measured by the production matcher — never an asymptotic guess.
fn check_cost(set: &PatternSet, alive: &[bool], report: &mut PatternReport) {
    for (i, pattern) in set.patterns.iter().enumerate() {
        if !alive[i] || pattern.starts_with(REGEX_PREFIX) {
            continue;
        }
        let Some(segment) = longest_star_segment(pattern) else {
            continue;
        };
        if segment.len() < 8 {
            continue;
        }
        let Some(text) = adversarial_text(pattern, segment, 512) else {
            continue;
        };
        let (_, steps) = glob_match_ci_steps(pattern, &text);
        let factor = steps as f64 / text.len() as f64;
        if factor < COST_FACTOR_THRESHOLD {
            continue;
        }
        report.confirmed += 1;
        report.lints.push(
            set.lint(
                "GAA705",
                LintSeverity::Note,
                format!(
                    "glob `{pattern}`: crafted input around segment `{segment}` costs {steps} \
                     matcher steps over {} bytes ({factor:.1} steps/byte, measured)",
                    text.len(),
                ),
            )
            .with_suggestion(
                "long repetitive literals after `*` amplify per-request matcher cost; shorten \
                 the segment or prefer an anchored form"
                    .to_string(),
            ),
        );
    }
}

/// The literal core of a glob of shape `*lit*` / `lit` (no inner
/// metacharacters): what it tests as a case-insensitive substring/equality.
fn glob_literal_core(glob: &str) -> Option<&str> {
    let core = glob.trim_matches('*');
    if core.is_empty() || core.contains(['*', '?']) {
        return None;
    }
    Some(core)
}

/// The literal a metacharacter-free `re:` pattern tests (anchors
/// stripped), or `None` when the regex has structure.
fn regex_literal(pattern: &str) -> Option<&str> {
    let mut src = pattern.strip_prefix(REGEX_PREFIX)?;
    src = src.strip_prefix('^').unwrap_or(src);
    src = src.strip_suffix('$').unwrap_or(src);
    if src.is_empty() || src.contains(['.', '*', '+', '?', '[', ']', '(', ')', '|', '\\', '^', '$'])
    {
        return None;
    }
    Some(src)
}

/// Flips the case of the first ASCII letter.
fn flip_first_letter(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut flipped = false;
    for c in text.chars() {
        if !flipped && c.is_ascii_alphabetic() {
            flipped = true;
            if c.is_ascii_lowercase() {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c.to_ascii_lowercase());
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Percent-encodes the middle-most letter/digit/slash of `text`
/// (uppercase hex, as servers emit it). `None` when nothing is encodable.
fn encode_one_char(text: &str) -> Option<String> {
    let positions: Vec<(usize, char)> = text
        .char_indices()
        .filter(|(_, c)| c.is_ascii_alphanumeric() || *c == '/')
        .collect();
    let &(pos, c) = positions.get(positions.len() / 2)?;
    let mut out = String::with_capacity(text.len() + 2);
    out.push_str(&text[..pos]);
    out.push_str(&format!("%{:02X}", c as u32));
    out.push_str(&text[pos + c.len_utf8()..]);
    Some(out)
}

/// The longest `*`-preceded literal segment of a glob (the unit the
/// backtracking matcher re-scans).
fn longest_star_segment(glob: &str) -> Option<&str> {
    glob.split('*')
        .skip(1)
        .filter(|s| !s.is_empty() && !s.contains('?'))
        .max_by_key(|s| s.len())
}

/// Crafted input for [`check_cost`]: the segment minus its final byte,
/// terminated with a mismatching byte, repeated to ~`target_len`. Every
/// position starts a near-match of `segment` that fails at the last step.
fn adversarial_text(pattern: &str, segment: &str, target_len: usize) -> Option<String> {
    let bytes = segment.as_bytes();
    let last = *bytes.last()?;
    let stem = &segment[..segment.len() - last_char_len(segment)];
    if stem.is_empty() {
        return None;
    }
    let tail = if last.eq_ignore_ascii_case(&b'x') {
        '!'
    } else {
        'x'
    };
    let unit = format!("{stem}{tail}");
    let reps = target_len / unit.len() + 1;
    let text = unit.repeat(reps);
    // Sanity: the crafted text must not simply match (matching is cheap).
    let (matched, _) = glob_match_ci_steps(pattern, &text);
    if matched {
        return None;
    }
    Some(text)
}

fn last_char_len(s: &str) -> usize {
    s.chars().next_back().map_or(0, char::len_utf8)
}

fn sample_list(samples: &[String]) -> String {
    let shown: Vec<String> = samples.iter().take(2).map(|s| format!("`{s}`")).collect();
    shown.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(text: &str) -> Vec<Source> {
        vec![Source::parse("/cgi-bin/phf", text).unwrap()]
    }

    fn run(text: &str) -> PatternReport {
        lint_patterns(&[], &local(text), None, 7)
    }

    fn codes(report: &PatternReport) -> Vec<&str> {
        report.lints.iter().map(|l| l.code).collect()
    }

    #[test]
    fn clean_set_reports_nothing() {
        // `*%*` closes the encoding gap (the paper's NIMDA response), the
        // literals are short and non-overlapping: nothing to report.
        let report = run("neg_access_right apache *\npre_cond regex gnu *phf* *test-cgi* *%*\n");
        assert!(report.lints.is_empty(), "{:?}", report.lints);
        assert_eq!(report.sets, 1);
        assert_eq!(report.patterns, 3);
    }

    #[test]
    fn subsumed_pattern_is_confirmed_and_flagged() {
        // `*phf-exploit*` ⊆ `*phf*`: anything the former matches the latter
        // does. The claim must survive real-matcher replay.
        let report = run("neg_access_right apache *\npre_cond regex gnu *phf* *phf-exploit* *%*\n");
        assert_eq!(codes(&report), vec!["GAA701"]);
        assert!(report.lints[0].message.contains("*phf-exploit*"));
        assert!(report.confirmed >= 1);
    }

    #[test]
    fn equivalent_duplicate_is_flagged_once() {
        let report = run("neg_access_right apache *\npre_cond regex gnu *phf* *phf* *%*\n");
        let gaa701: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA701").collect();
        assert_eq!(gaa701.len(), 1);
        assert!(gaa701[0].message.contains("equivalent"));
    }

    #[test]
    fn invalid_regex_is_an_error() {
        let report = run("neg_access_right apache *\npre_cond regex gnu re:*broken\n");
        assert_eq!(codes(&report), vec!["GAA702"]);
        assert_eq!(report.lints[0].severity, LintSeverity::Error);
    }

    #[test]
    fn case_dialect_gap_is_witnessed() {
        let report = run("neg_access_right apache *\npre_cond regex gnu *phf* re:phf\n");
        assert!(codes(&report).contains(&"GAA703"), "{:?}", report.lints);
        let lint = report.lints.iter().find(|l| l.code == "GAA703").unwrap();
        // The witness in the message must really split the dialects.
        assert!(lint.message.contains("Phf") || lint.message.contains("PHF"));
    }

    #[test]
    fn encoding_bypass_found_and_suppressed_by_percent_catcher() {
        let gapped = run("neg_access_right apache *\npre_cond regex gnu */etc/passwd*\n");
        assert!(codes(&gapped).contains(&"GAA704"), "{:?}", gapped.lints);

        // The paper's NIMDA response: `*%*` catches every encoded form, so
        // the same set plus the catcher is immune.
        let fixed = run("neg_access_right apache *\npre_cond regex gnu */etc/passwd* *%*\n");
        assert!(!codes(&fixed).contains(&"GAA704"), "{:?}", fixed.lints);
    }

    #[test]
    fn signature_db_set_is_checked_and_percent_immune() {
        let report = lint_patterns(&[], &[], Some(&SignatureDb::with_defaults()), 7);
        // The default db carries `*%*` (nimda-percent): no encoding gap.
        assert!(!codes(&report).contains(&"GAA704"), "{:?}", report.lints);
        // The slash-flood signature's 19-byte repetitive segment is a
        // measured cost amplifier.
        assert!(codes(&report).contains(&"GAA705"), "{:?}", report.lints);
        let cost = report.lints.iter().find(|l| l.code == "GAA705").unwrap();
        assert_eq!(cost.severity, LintSeverity::Note);
        assert!(cost.message.contains("steps/byte"));
    }

    #[test]
    fn cost_findings_quote_measured_steps() {
        let report = run(&format!(
            "neg_access_right apache *\npre_cond regex gnu *{}*\n",
            "/".repeat(24)
        ));
        let cost = report.lints.iter().find(|l| l.code == "GAA705").unwrap();
        // Re-measure: the quoted adversarial construction must reproduce.
        let segment = "/".repeat(24);
        let text = adversarial_text(&format!("*{segment}*"), &segment, 512).unwrap();
        let (_, steps) = glob_match_ci_steps(&format!("*{segment}*"), &text);
        assert!(cost.message.contains(&steps.to_string()));
    }

    #[test]
    fn unknown_inclusion_makes_no_claim() {
        // `?` globs have byte-level semantics the char automaton cannot
        // model: no automaton, no inclusion verdict, no lint.
        let report = run("neg_access_right apache *\npre_cond regex gnu *phf? *phf*\n");
        assert!(!codes(&report).contains(&"GAA701"), "{:?}", report.lints);
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let text = "neg_access_right apache *\n\
                    pre_cond regex gnu *phf* *phf-exploit* re:phf\n";
        let a = run(text);
        let b = run(text);
        let render_a: Vec<String> = a.lints.iter().map(|l| l.to_string()).collect();
        let render_b: Vec<String> = b.lints.iter().map(|l| l.to_string()).collect();
        assert_eq!(render_a, render_b);
        let mut sorted = render_a.clone();
        sorted.sort();
        assert_eq!(render_a, sorted);
    }
}
