//! Differential checking: replay the analyzer's reachability claims against
//! the real `gaa-core` evaluator.
//!
//! The semantic passes prove their claims against a *model* of the runtime
//! (first-match entry selection, guard-NO fall-through, the three
//! composition modes). This harness closes the loop: it builds an actual
//! [`GaaApi`] over the analyzed deployment, drives every registered
//! pre-condition as an independent boolean, enumerates a small request
//! alphabet drawn from the deployment's own vocabulary, and asserts each
//! lint's runtime claim on every `(assignment, object, right)` triple:
//!
//! * `GAA201`/`GAA202` — the shadowed entry (or any local entry) never
//!   appears in [`AuthorizationResult::applied`];
//! * `GAA203` — every matching request's final status is NO;
//! * `GAA204` — every matching request's authorization status is YES;
//! * `GAA401` — the gap right applies no entry and falls to default deny.
//!
//! The check is **one-sided**: it can refute an unsound lint, not prove the
//! analyzer found everything. Coverage is exhaustive when the deployment
//! has at most [`EXHAUSTIVE_LIMIT`] registered pre-condition triples,
//! otherwise a fixed number of seeded samples — never wall-clock dependent.
//!
//! In the exhaustive tier the harness no longer brute-forces every claim
//! through the interpreter: each claim is first *proved* on the canonical
//! decision DAGs of [`gaa_core::dag`] (a constant-FALSE applies-diagram ⇔
//! the entry never applies on any of the `2^k` assignments; a constant-NO
//! decision root ⇔ every matching request is denied; …). Only claims the
//! DAG cannot certify fall back to concrete enumeration, and a seeded
//! sample of assignments ([`CROSS_CHECK_ASSIGNMENTS`]) is still replayed
//! through the interpreter to cross-validate the symbolic compiler itself.
//!
//! [`GaaApi`]: gaa_core::GaaApi

use crate::lint::{Lint, OTHER_VALUE};
use crate::snapshot::RegistrySnapshot;
use crate::source::Source;
use gaa_audit::VirtualClock;
use gaa_core::dag::{
    compile_applies, compile_decision, compile_layer_applies, DecisionDag, EntryRef, VarTable,
};
use gaa_core::{
    AuthorizationResult, EvalDecision, EvalEnv, GaaApiBuilder, GaaStatus, MemoryPolicyStore,
    RightPattern, SecurityContext, REDIRECT_COND_TYPE,
};
use gaa_eacl::PolicyLayer;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Deployments with at most this many registered pre-condition triples are
/// checked over **all** `2^k` truth assignments.
pub const EXHAUSTIVE_LIMIT: usize = 12;

/// Seeded sample count used beyond [`EXHAUSTIVE_LIMIT`].
pub const SAMPLED_ASSIGNMENTS: usize = 4096;

/// Seeded assignments replayed through the interpreter in the exhaustive
/// tier to cross-validate the symbolic DAG compiler against the evaluator.
pub const CROSS_CHECK_ASSIGNMENTS: usize = 64;

/// Request token standing in for "any authority/value the deployment never
/// names" when enumerating the request alphabet.
const OTHER_TOKEN: &str = OTHER_VALUE;

/// Outcome of a [`differential_check`] run.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Lints that carried a checkable runtime claim.
    pub lints_checked: usize,
    /// Truth assignments exercised.
    pub assignments: usize,
    /// Whether the assignment space was covered exhaustively.
    pub exhaustive: bool,
    /// Total `check_authorization` calls made.
    pub requests: usize,
    /// Human-readable descriptions of every claim the runtime refuted.
    /// Empty means the analyzer and the evaluator agree.
    pub violations: Vec<String>,
}

impl DifferentialReport {
    /// True when no lint claim was refuted by the evaluator.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A lint's runtime claim, pre-resolved to evaluator coordinates.
enum Claim<'a> {
    /// This (layer, eacl, entry) never appears in `applied()`; `object`
    /// restricts the check to one object's composed policy.
    NeverApplied {
        lint: &'a Lint,
        object: Option<&'a str>,
        layer: PolicyLayer,
        eacl: usize,
        entry: usize,
    },
    /// No local-layer entry ever applies for this object (`GAA202`).
    NoLocalApplied { lint: &'a Lint, object: &'a str },
    /// Every request matching the pattern ends with final status NO
    /// (`GAA203`).
    StatusNo { lint: &'a Lint, object: &'a str },
    /// Every request matching the pattern has authorization status YES
    /// (`GAA204`).
    AuthorizationYes { lint: &'a Lint, object: &'a str },
    /// The gap right applies no entry anywhere and defaults to deny
    /// (`GAA401`); `value` has [`OTHER_VALUE`] already mapped to the
    /// request token.
    Gap {
        lint: &'a Lint,
        authority: &'a str,
        value: String,
    },
}

fn pattern_matches(pattern: &RightPattern, authority: &str, value: &str) -> bool {
    (pattern.authority == "*" || pattern.authority == authority)
        && (pattern.value == "*" || pattern.value == value)
}

/// Replays `lints` (as produced by [`crate::Analyzer::analyze`] on the same
/// `system`/`locals`) against a real evaluator built from `snapshot`.
/// `seed` drives the sampled-assignment fallback; exhaustive runs ignore it.
pub fn differential_check(
    system: &[Source],
    locals: &[Source],
    snapshot: &RegistrySnapshot,
    lints: &[Lint],
    seed: u64,
) -> DifferentialReport {
    // --- the deployment's vocabulary ---
    let all_entries: Vec<_> = system
        .iter()
        .chain(locals.iter())
        .flat_map(|s| s.eacls.iter())
        .flat_map(|e| e.entries.iter())
        .collect();

    let mut authorities: BTreeSet<String> = all_entries
        .iter()
        .map(|e| e.right.authority.clone())
        .filter(|a| a != "*")
        .collect();
    authorities.insert(OTHER_TOKEN.to_string());
    let mut values: BTreeSet<String> = all_entries
        .iter()
        .map(|e| e.right.value.clone())
        .filter(|v| v != "*")
        .collect();
    values.insert(OTHER_TOKEN.to_string());
    let alphabet: Vec<(String, String)> = authorities
        .iter()
        .flat_map(|a| values.iter().map(move |v| (a.clone(), v.clone())))
        .collect();

    // Registered pre-condition triples become independent booleans.
    let triples: Vec<(String, String, String)> = all_entries
        .iter()
        .flat_map(|e| e.pre.iter())
        .filter(|c| {
            c.cond_type != REDIRECT_COND_TYPE && snapshot.is_registered(&c.cond_type, &c.authority)
        })
        .map(|c| (c.cond_type.clone(), c.authority.clone(), c.value.clone()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    // --- the real evaluator ---
    let mut store = MemoryPolicyStore::new();
    store.set_system(
        system
            .iter()
            .flat_map(|s| s.eacls.iter().cloned())
            .collect(),
    );
    for source in locals {
        store.set_local(&source.name, source.eacls.clone());
    }

    type Assignment = HashMap<(String, String, String), bool>;
    let assignment: Arc<Mutex<Assignment>> = Arc::new(Mutex::new(HashMap::new()));
    let mut builder = GaaApiBuilder::new(Arc::new(store)).with_clock(Arc::new(VirtualClock::new()));
    let keys: BTreeSet<(String, String)> = triples
        .iter()
        .map(|(t, a, _)| (t.clone(), a.clone()))
        .collect();
    for (cond_type, authority) in keys {
        let map = Arc::clone(&assignment);
        let (t, a) = (cond_type.clone(), authority.clone());
        builder = builder.register(
            cond_type,
            authority,
            move |value: &str, _env: &EvalEnv<'_>| {
                let met = map
                    .lock()
                    .get(&(t.clone(), a.clone(), value.to_string()))
                    .copied()
                    .unwrap_or(true);
                if met {
                    EvalDecision::Met
                } else {
                    EvalDecision::NotMet
                }
            },
        );
    }
    let api = builder.build();

    // Per-object composed policies (composition is assignment-independent).
    let objects: Vec<String> = if locals.is_empty() {
        vec![OTHER_TOKEN.to_string()]
    } else {
        locals.iter().map(|s| s.name.clone()).collect()
    };
    let policies: Vec<_> = objects
        .iter()
        .map(|o| {
            api.get_object_policy_info(o)
                .expect("memory store cannot fail")
        })
        .collect();

    // Local EACL index base per source (lints index the layer-wide list).
    let mut local_base: HashMap<&str, usize> = HashMap::new();
    let mut base = 0usize;
    for source in locals {
        local_base.insert(source.name.as_str(), base);
        base += source.eacls.len();
    }

    // --- resolve lint claims ---
    let mut claims: Vec<Claim<'_>> = Vec::new();
    for lint in lints {
        match lint.code {
            "GAA201" => {
                let (Some(layer), Some(eacl), Some(entry)) = (lint.layer, lint.eacl, lint.entry)
                else {
                    continue;
                };
                let (object, eacl) = match layer {
                    PolicyLayer::System => (None, eacl),
                    PolicyLayer::Local => {
                        let Some(b) = local_base.get(lint.source.as_str()) else {
                            continue;
                        };
                        (Some(lint.source.as_str()), eacl - b)
                    }
                };
                claims.push(Claim::NeverApplied {
                    lint,
                    object,
                    layer,
                    eacl,
                    entry,
                });
            }
            "GAA202" => claims.push(Claim::NoLocalApplied {
                lint,
                object: &lint.source,
            }),
            "GAA203" if lint.pattern.is_some() => claims.push(Claim::StatusNo {
                lint,
                object: &lint.source,
            }),
            "GAA204" if lint.pattern.is_some() => claims.push(Claim::AuthorizationYes {
                lint,
                object: &lint.source,
            }),
            "GAA401" => {
                let Some(pattern) = &lint.pattern else {
                    continue;
                };
                claims.push(Claim::Gap {
                    lint,
                    authority: &pattern.authority,
                    value: if pattern.value == OTHER_VALUE {
                        OTHER_TOKEN.to_string()
                    } else {
                        pattern.value.clone()
                    },
                });
            }
            _ => {} // syntax tier, MAYBE surface, redirect loops: no runtime claim
        }
    }

    // --- the assignment space ---
    let exhaustive = triples.len() <= EXHAUSTIVE_LIMIT;
    let total_assignments = if exhaustive {
        1usize << triples.len()
    } else {
        SAMPLED_ASSIGNMENTS
    };
    let mut rng = StdRng::seed_from_u64(seed);

    let ctx = SecurityContext::new();
    let mut requests = 0usize;
    let mut violations: Vec<String> = Vec::new();

    // --- symbolic tier: prove claims on the decision DAGs ---
    // A claim the DAG certifies holds on ALL 2^k assignments at once;
    // only unproven claims fall back to concrete enumeration below.
    let mut pending: Vec<usize> = (0..claims.len()).collect();
    if exhaustive {
        let vars = VarTable::from_triples(triples.iter().cloned().collect());
        let mut dag = DecisionDag::new();
        let object_index = |name: &str| objects.iter().position(|o| o == name);
        pending = Vec::new();
        for (ci, claim) in claims.iter().enumerate() {
            let proved = match claim {
                Claim::NeverApplied {
                    object,
                    layer,
                    eacl,
                    entry,
                    ..
                } => {
                    let scope: Vec<usize> = match object {
                        Some(name) => object_index(name).into_iter().collect(),
                        None => (0..policies.len()).collect(),
                    };
                    !scope.is_empty()
                        && scope.iter().all(|&oi| {
                            alphabet.iter().all(|(a, v)| {
                                let root = compile_applies(
                                    &mut dag,
                                    &policies[oi],
                                    &vars,
                                    a,
                                    v,
                                    EntryRef {
                                        layer: *layer,
                                        eacl: *eacl,
                                        entry: *entry,
                                    },
                                );
                                dag.constant_bool(root) == Some(false)
                            })
                        })
                }
                Claim::NoLocalApplied { object, .. } => object_index(object).is_some_and(|oi| {
                    alphabet.iter().all(|(a, v)| {
                        let root = compile_layer_applies(
                            &mut dag,
                            &policies[oi],
                            &vars,
                            a,
                            v,
                            PolicyLayer::Local,
                        );
                        dag.constant_bool(root) == Some(false)
                    })
                }),
                // Authorization constant NO implies final status NO (the
                // request-result phase cannot resurrect a denial).
                Claim::StatusNo { lint, object } => {
                    let pattern = lint.pattern.as_ref().expect("claim requires pattern");
                    object_index(object).is_some_and(|oi| {
                        alphabet
                            .iter()
                            .filter(|(a, v)| pattern_matches(pattern, a, v))
                            .all(|(a, v)| {
                                let root = compile_decision(
                                    &mut dag,
                                    &policies[oi],
                                    &vars,
                                    a,
                                    v,
                                    GaaStatus::No,
                                );
                                dag.constant_status(root) == Some(GaaStatus::No)
                            })
                    })
                }
                Claim::AuthorizationYes { lint, object } => {
                    let pattern = lint.pattern.as_ref().expect("claim requires pattern");
                    object_index(object).is_some_and(|oi| {
                        alphabet
                            .iter()
                            .filter(|(a, v)| pattern_matches(pattern, a, v))
                            .all(|(a, v)| {
                                let root = compile_decision(
                                    &mut dag,
                                    &policies[oi],
                                    &vars,
                                    a,
                                    v,
                                    GaaStatus::No,
                                );
                                dag.constant_status(root) == Some(GaaStatus::Yes)
                            })
                    })
                }
                Claim::Gap {
                    authority, value, ..
                } => policies.iter().all(|policy| {
                    let decision =
                        compile_decision(&mut dag, policy, &vars, authority, value, GaaStatus::No);
                    dag.constant_status(decision) == Some(GaaStatus::No)
                        && [PolicyLayer::System, PolicyLayer::Local].iter().all(|l| {
                            let applies = compile_layer_applies(
                                &mut dag, policy, &vars, authority, value, *l,
                            );
                            dag.constant_bool(applies) == Some(false)
                        })
                }),
            };
            if !proved {
                pending.push(ci);
            }
        }

        // Cross-validate the compiler itself: replay a seeded slice of the
        // assignment space through the interpreter and require the DAG's
        // authorization status to match everywhere.
        let mut decision_roots: HashMap<(usize, usize), u32> = HashMap::new();
        let cross = total_assignments.min(CROSS_CHECK_ASSIGNMENTS);
        for sample in 0..cross {
            let index = if total_assignments <= CROSS_CHECK_ASSIGNMENTS {
                sample
            } else {
                rng.gen_range(0..total_assignments)
            };
            {
                let mut map = assignment.lock();
                map.clear();
                for (bit, triple) in triples.iter().enumerate() {
                    map.insert(triple.clone(), index >> bit & 1 == 1);
                }
            }
            for (oi, (object, policy)) in objects.iter().zip(&policies).enumerate() {
                for (ai, (authority, value)) in alphabet.iter().enumerate() {
                    let root = *decision_roots.entry((oi, ai)).or_insert_with(|| {
                        compile_decision(&mut dag, policy, &vars, authority, value, GaaStatus::No)
                    });
                    let symbolic = dag.eval_status(root, &mut |bit| {
                        if index >> bit & 1 == 1 {
                            GaaStatus::Yes
                        } else {
                            GaaStatus::No
                        }
                    });
                    let right = RightPattern::new(authority.clone(), value.clone());
                    let interpreted = api
                        .check_authorization(policy, &right, &ctx)
                        .authorization_status();
                    requests += 1;
                    if interpreted != symbolic {
                        violations.push(format!(
                            "symbolic cross-check: DAG says {symbolic}, interpreter says \
                             {interpreted} for right `{authority} {value}` on `{object}` \
                             (assignment {index})"
                        ));
                    }
                }
            }
        }
    }

    // --- concrete tier: enumerate/sample assignments for unproven claims ---
    let mut violated = vec![false; claims.len()];
    if !pending.is_empty() {
        for index in 0..total_assignments {
            {
                let mut map = assignment.lock();
                map.clear();
                for (bit, triple) in triples.iter().enumerate() {
                    let met = if exhaustive {
                        index >> bit & 1 == 1
                    } else {
                        rng.gen::<bool>()
                    };
                    map.insert(triple.clone(), met);
                }
            }
            for (object, policy) in objects.iter().zip(&policies) {
                for (authority, value) in &alphabet {
                    let right = RightPattern::new(authority.clone(), value.clone());
                    let result = api.check_authorization(policy, &right, &ctx);
                    requests += 1;
                    for &ci in &pending {
                        if violated[ci] {
                            continue;
                        }
                        if let Some(report) =
                            refute(&claims[ci], object, authority, value, &result, index)
                        {
                            violated[ci] = true;
                            violations.push(report);
                        }
                    }
                }
            }
        }
    }

    DifferentialReport {
        lints_checked: claims.len(),
        assignments: total_assignments,
        exhaustive,
        requests,
        violations,
    }
}

/// Returns a violation description when `result` refutes `claim` for this
/// `(object, right)` evaluation, `None` when the claim holds here.
fn refute(
    claim: &Claim<'_>,
    object: &str,
    authority: &str,
    value: &str,
    result: &AuthorizationResult,
    assignment: usize,
) -> Option<String> {
    match claim {
        Claim::NeverApplied {
            lint,
            object: scope,
            layer,
            eacl,
            entry,
        } => {
            if scope.is_some_and(|s| s != object) {
                return None;
            }
            let hit = result
                .applied()
                .iter()
                .any(|a| a.layer == *layer && a.eacl_index == *eacl && a.entry_index == *entry);
            hit.then(|| {
                format!(
                    "{}: entry claimed unreachable applied for right `{authority} {value}` \
                     on `{object}` (assignment {assignment}): {}",
                    lint.code, lint.message
                )
            })
        }
        Claim::NoLocalApplied { lint, object: o } => {
            if *o != object {
                return None;
            }
            let hit = result
                .applied()
                .iter()
                .any(|a| a.layer == PolicyLayer::Local);
            hit.then(|| {
                format!(
                    "{}: local entry applied under `stop` composition for right \
                     `{authority} {value}` on `{object}` (assignment {assignment})",
                    lint.code
                )
            })
        }
        Claim::StatusNo { lint, object: o } => {
            let pattern = lint.pattern.as_ref()?;
            if *o != object || !pattern_matches(pattern, authority, value) {
                return None;
            }
            (!result.status().is_no()).then(|| {
                format!(
                    "{}: status {} (expected NO) for right `{authority} {value}` on \
                     `{object}` (assignment {assignment}): {}",
                    lint.code,
                    result.status(),
                    lint.message
                )
            })
        }
        Claim::AuthorizationYes { lint, object: o } => {
            let pattern = lint.pattern.as_ref()?;
            if *o != object || !pattern_matches(pattern, authority, value) {
                return None;
            }
            (!result.authorization_status().is_yes()).then(|| {
                format!(
                    "{}: authorization status {} (expected YES) for right \
                     `{authority} {value}` on `{object}` (assignment {assignment}): {}",
                    lint.code,
                    result.authorization_status(),
                    lint.message
                )
            })
        }
        Claim::Gap {
            lint,
            authority: a,
            value: v,
        } => {
            if *a != authority || v != value {
                return None;
            }
            (!result.applied().is_empty() || !result.status().is_no()).then(|| {
                format!(
                    "{}: gap right `{authority} {value}` applied {} entries with status {} \
                     on `{object}` (assignment {assignment})",
                    lint.code,
                    result.applied().len(),
                    result.status()
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;

    fn src(name: &str, text: &str) -> Source {
        Source::parse(name, text).unwrap()
    }

    #[test]
    fn section_7_2_style_deployment_is_consistent() {
        // Mirrors the paper's §7.2 deployment: a system-wide CGI-exploit
        // screen plus per-object local policies.
        let system = src(
            "system",
            "eacl_mode narrow\n\
             neg_access_right apache *\n\
             pre_cond regex gnu *phf* *test-cgi*\n\
             rr_cond notify local on:failure/sysadmin\n\
             pos_access_right apache *\n",
        );
        let phf = src(
            "/cgi-bin/phf",
            "neg_access_right apache *\npre_cond accessid GROUP BadGuys\n\
             pos_access_right apache *\n",
        );
        let index = src("/index.html", "pos_access_right apache *\n");
        let snapshot = RegistrySnapshot::standard();
        let lints = Analyzer::with_snapshot(snapshot.clone())
            .analyze(std::slice::from_ref(&system), &[phf.clone(), index.clone()]);
        let report = differential_check(&[system], &[phf, index], &snapshot, &lints, 7);
        assert!(report.exhaustive);
        assert!(
            report.is_consistent(),
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn refutes_a_fabricated_claim() {
        // A hand-forged GAA203 on a grant the system does NOT deny must be
        // caught — this is the harness's own soundness check.
        let system = src("system", "eacl_mode narrow\npos_access_right apache *\n");
        let local = src("/x", "pos_access_right apache GET\n");
        let bogus = Lint::new(
            "GAA203",
            crate::LintSeverity::Warning,
            "/x",
            "fabricated".into(),
        )
        .at(PolicyLayer::Local, 0, Some(0), None)
        .with_pattern(RightPattern::new("apache", "GET"));
        let snapshot = RegistrySnapshot::standard();
        let report = differential_check(&[system], &[local], &snapshot, &[bogus], 7);
        assert_eq!(report.lints_checked, 1);
        assert!(!report.is_consistent());
    }

    #[test]
    fn real_lints_survive_on_a_defective_deployment() {
        let system = src("system", "eacl_mode narrow\nneg_access_right apache *\n");
        let local = src(
            "/x",
            "pos_access_right apache GET\npos_access_right sshd login\n",
        );
        let snapshot = RegistrySnapshot::standard();
        let lints = Analyzer::with_snapshot(snapshot.clone())
            .analyze(std::slice::from_ref(&system), std::slice::from_ref(&local));
        assert!(lints.iter().any(|l| l.code == "GAA203"));
        assert!(lints.iter().any(|l| l.code == "GAA401"));
        let report = differential_check(&[system], &[local], &snapshot, &lints, 11);
        assert!(
            report.is_consistent(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.lints_checked >= 2);
    }
}
