//! The slice tier (`gaa-lint slice`, `GAA9xx`): static per-request-cell
//! policy slicing, audited.
//!
//! The serving fast path ([`gaa_core::slice`]) evaluates, for each
//! `(object, right, identity-class)` request cell, only the entries whose
//! applies-diagram can reach TRUE under the class's outcome mask — after
//! proving the sliced composition decision-equivalent to the full one on
//! the hash-consed DAG. This pass runs the same analysis offline over the
//! whole deployment and reports what it means for scalability:
//!
//! * `GAA901` — **unsliceable entry**: every request cell's slice must
//!   include the entry. A wildcard right plus a condition with unbounded
//!   support — a free-form `expr` payload whose every distinct value is its
//!   own decision variable, or a condition type with no registered
//!   evaluator — keeps it alive in every cell, so per-request cost cannot
//!   be reduced below "evaluate this entry" no matter how the policy grows.
//! * `GAA902` — **entry dead in every slice**: in each cell whose right it
//!   matches, the applies-diagram is unreachable under both identity-class
//!   masks. Stronger than the per-deployment `GAA202`–`GAA204`
//!   ineffectiveness lints: those compare entries pairwise, this quantifies
//!   over every request shape and identity class at once.
//! * `GAA903` — **slice blowup**: some cell's proven slice still keeps at
//!   least [`SliceOptions::blowup_pct`] percent of a deployment with at
//!   least [`SliceOptions::min_entries`] entries — slicing is sound here
//!   but toothless, which is exactly the scaling hazard the tier exists to
//!   surface.
//!
//! Every finding is confirmed through the real interpreter before being
//! reported, the same bar as the `GAA7xx`/`GAA8xx` tiers: `GAA901` replays
//! a mask-consistent applies-witness and checks the entry really is in the
//! applied set of an unrelated request cell; `GAA902` fires falsification
//! probes (uniform mask-consistent assignments) and drops the claim if the
//! entry is ever observed applying or if removing it ever shifts a probed
//! status; `GAA903` replays full vs sliced composition at a
//! mask-consistent assignment and requires equal statuses. Claims that
//! fail confirmation are dropped and counted in [`SliceReport::dropped`] —
//! never reported.

use crate::lint::{Lint, LintSeverity};
use crate::snapshot::RegistrySnapshot;
use crate::symbolic::{describe_witness, vocabulary, witness_from, Deployment, Harness};
use gaa_core::dag::{compile_applies, DecisionDag, EntryRef, PartialAssignment, VarTable};
use gaa_core::{class_masks, slice_cell, CellSlice, GaaStatus, IdentityClass, REDIRECT_COND_TYPE};
use gaa_eacl::{ComposedPolicy, Eacl, EaclEntry, PolicyLayer};
use std::collections::HashSet;

/// Condition type whose value is a free-form per-request predicate: every
/// distinct payload is its own decision variable, so its support cannot be
/// bounded, precomputed, or indexed — the canonical unsliceable guard.
const EXPR_COND_TYPE: &str = "expr";

/// Tunables for the slice audit.
#[derive(Debug, Clone, Copy)]
pub struct SliceOptions {
    /// `GAA903` fires when a cell keeps at least this percentage of the
    /// deployment's entries…
    pub blowup_pct: usize,
    /// …and the deployment has at least this many entries (tiny policies
    /// trivially keep most of themselves and are not a scaling hazard).
    pub min_entries: usize,
}

impl Default for SliceOptions {
    fn default() -> Self {
        SliceOptions {
            blowup_pct: 50,
            min_entries: 16,
        }
    }
}

/// Result of [`analyze_slices`].
#[derive(Debug, Default)]
pub struct SliceReport {
    /// Confirmed findings, ready for rendering.
    pub lints: Vec<Lint>,
    /// Objects analyzed (named locals plus the unnamed-object bucket).
    pub objects: usize,
    /// Request cells sliced (object × authority × value × identity class).
    pub cells: usize,
    /// Cells whose slice passed the DAG equivalence proof.
    pub verified: usize,
    /// Cells where the proof failed — the serving path falls back to full
    /// evaluation there.
    pub unverified: usize,
    /// Findings confirmed by interpreter replay.
    pub confirmed: usize,
    /// Candidate claims dropped: replay contradicted them or no
    /// mask-consistent witness could be produced.
    pub dropped: usize,
}

impl SliceReport {
    /// The counters in `--json` `stats` order.
    #[must_use]
    pub fn stats(&self) -> [(&'static str, usize); 6] {
        [
            ("objects", self.objects),
            ("cells", self.cells),
            ("verified", self.verified),
            ("unverified", self.unverified),
            ("confirmed", self.confirmed),
            ("dropped", self.dropped),
        ]
    }
}

/// Per-entry bookkeeping accumulated over the cell sweep.
struct EntryFacts {
    reference: EntryRef,
    entry: EaclEntry,
    /// Kept (right matched and mask-reachable) in every cell so far.
    kept_everywhere: bool,
    /// Right matched at least one cell.
    matched_somewhere: bool,
    /// Kept in at least one cell.
    kept_somewhere: bool,
}

/// Runs the slice audit over a deployment.
#[must_use]
pub fn analyze_slices(
    deployment: &Deployment,
    snapshot: &RegistrySnapshot,
    options: SliceOptions,
) -> SliceReport {
    let vocab = vocabulary(&[deployment], snapshot);
    let vars = VarTable::from_triples(vocab.triples.clone());
    let harness = Harness::new(deployment, vars.triples());
    let mut report = SliceReport::default();

    for object in &vocab.objects {
        let policy = deployment.compose_for(object);
        let entries = enumerate(&policy);
        if entries.is_empty() {
            continue;
        }
        report.objects += 1;
        let total = entries.len();
        let mut dag = DecisionDag::new();
        let mut facts: Vec<EntryFacts> = entries
            .iter()
            .map(|(reference, entry)| EntryFacts {
                reference: *reference,
                entry: (*entry).clone(),
                kept_everywhere: true,
                matched_somewhere: false,
                kept_somewhere: false,
            })
            .collect();
        // The worst (largest-kept) cell, for GAA903.
        let mut blowup: Option<(String, String, IdentityClass, CellSlice)> = None;

        for authority in &vocab.authorities {
            for value in &vocab.values {
                for class in IdentityClass::ALL {
                    let cell = slice_cell(
                        &mut dag,
                        &policy,
                        &vars,
                        authority,
                        value,
                        class,
                        GaaStatus::No,
                    );
                    report.cells += 1;
                    if cell.verified {
                        report.verified += 1;
                    } else {
                        report.unverified += 1;
                    }
                    let dropped: HashSet<EntryRef> = cell.dropped.iter().copied().collect();
                    for fact in &mut facts {
                        let matched = fact.entry.right.matches(authority, value);
                        let kept = matched && !dropped.contains(&fact.reference);
                        fact.matched_somewhere |= matched;
                        fact.kept_somewhere |= kept;
                        fact.kept_everywhere &= kept;
                    }
                    let worst_so_far = blowup.as_ref().map_or(0, |(_, _, _, c)| c.kept_entries);
                    if cell.kept_entries > worst_so_far {
                        blowup = Some((authority.clone(), value.clone(), class, cell));
                    }
                }
            }
        }

        // GAA901: kept in every cell, with a condition of unbounded support.
        for fact in facts.iter().filter(|f| f.kept_everywhere) {
            let Some(unbounded) = fact.entry.pre.iter().find(|c| {
                c.cond_type.eq_ignore_ascii_case(EXPR_COND_TYPE)
                    || (c.cond_type != REDIRECT_COND_TYPE
                        && !snapshot.is_registered(&c.cond_type, &c.authority))
            }) else {
                continue;
            };
            let reason = if unbounded.cond_type.eq_ignore_ascii_case(EXPR_COND_TYPE) {
                "is a free-form predicate (every distinct payload is its own \
                 decision variable)"
            } else {
                "has no registered evaluator"
            };
            match confirm_unsliceable(&harness, &mut dag, &policy, &vars, fact) {
                Some(witness) => {
                    report.confirmed += 1;
                    report.lints.push(
                        Lint::new(
                            "GAA901",
                            LintSeverity::Warning,
                            object,
                            format!(
                                "unsliceable entry: every request cell's slice must include \
                                 it — pre-condition `{} {} {}` {}, so its support is \
                                 unbounded; witness: request («other» «other»), {} \
                                 (interpreter-confirmed applied)",
                                unbounded.cond_type,
                                unbounded.authority,
                                unbounded.value,
                                reason,
                                describe_witness(&witness),
                            ),
                        )
                        .at(
                            fact.reference.layer,
                            fact.reference.eacl,
                            Some(fact.reference.entry),
                            None,
                        ),
                    );
                }
                None => report.dropped += 1,
            }
        }

        // GAA902: matched somewhere, kept nowhere — dead in every slice.
        for fact in facts
            .iter()
            .filter(|f| f.matched_somewhere && !f.kept_somewhere)
        {
            if confirm_dead(
                &harness,
                &policy,
                &vars,
                &vocab.authorities,
                &vocab.values,
                fact,
            ) {
                report.confirmed += 1;
                report.lints.push(
                    Lint::new(
                        "GAA902",
                        LintSeverity::Warning,
                        object,
                        "entry is dead in every request cell: its applies-diagram is \
                         unreachable under both identity-class masks (anonymous and \
                         authenticated), so no request of any shape evaluates it; \
                         interpreter probes with and without the entry agree everywhere \
                         (interpreter-confirmed)"
                            .to_string(),
                    )
                    .at(
                        fact.reference.layer,
                        fact.reference.eacl,
                        Some(fact.reference.entry),
                        None,
                    ),
                );
            } else {
                report.dropped += 1;
            }
        }

        // GAA903: the worst cell keeps too much of a large deployment.
        if total >= options.min_entries {
            if let Some((authority, value, class, cell)) = blowup {
                if cell.kept_entries * 100 >= options.blowup_pct * total {
                    match confirm_blowup(&harness, &policy, &vars, &authority, &value, class, &cell)
                    {
                        Some(witness) => {
                            report.confirmed += 1;
                            report.lints.push(Lint::new(
                                "GAA903",
                                LintSeverity::Warning,
                                object,
                                format!(
                                    "slice blowup: cell ({authority} {value}, {}) keeps {} of \
                                     {total} entries ({}%) — slicing is proven sound here but \
                                     cannot contain per-request cost; full and sliced \
                                     compositions agree at {} (interpreter-confirmed)",
                                    class.label(),
                                    cell.kept_entries,
                                    cell.kept_entries * 100 / total,
                                    describe_witness(&witness),
                                ),
                            ));
                        }
                        None => report.dropped += 1,
                    }
                }
            }
        }
    }
    report
}

/// Every entry of the composition with its layer-relative reference.
fn enumerate(policy: &ComposedPolicy) -> Vec<(EntryRef, &EaclEntry)> {
    let mut out = Vec::new();
    let (mut sys, mut loc) = (0usize, 0usize);
    for (layer, eacl) in policy.layers() {
        let eacl_index = match layer {
            PolicyLayer::System => {
                sys += 1;
                sys - 1
            }
            PolicyLayer::Local => {
                loc += 1;
                loc - 1
            }
        };
        for (entry_index, entry) in eacl.entries.iter().enumerate() {
            out.push((
                EntryRef {
                    layer,
                    eacl: eacl_index,
                    entry: entry_index,
                },
                entry,
            ));
        }
    }
    out
}

/// A full, mask-consistent assignment: `base` wherever the class mask
/// allows it, else the first allowed outcome.
fn masked_uniform(vars: &VarTable, class: IdentityClass, base: GaaStatus) -> PartialAssignment {
    let masks = class_masks(vars, class);
    masks
        .iter()
        .map(|&mask| {
            let candidates = [base, GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe];
            candidates
                .into_iter()
                .find(|status| mask & outcome_bit(*status) != 0)
        })
        .collect()
}

fn outcome_bit(status: GaaStatus) -> u8 {
    match status {
        GaaStatus::Yes => gaa_core::dag::MASK_YES,
        GaaStatus::No => gaa_core::dag::MASK_NO,
        GaaStatus::Maybe => gaa_core::dag::MASK_MAYBE,
    }
}

/// `GAA901` confirmation: in the `(«other», «other»)` cell — a request
/// shape the policy never names — find a mask-consistent assignment under
/// which the entry applies, replay it, and check the interpreter reports
/// the entry in the applied set.
fn confirm_unsliceable(
    harness: &Harness,
    dag: &mut DecisionDag,
    policy: &ComposedPolicy,
    vars: &VarTable,
    fact: &EntryFacts,
) -> Option<crate::symbolic::Witness> {
    let other = crate::lint::OTHER_VALUE;
    for class in IdentityClass::ALL {
        let masks = class_masks(vars, class);
        let applies = compile_applies(dag, policy, vars, other, other, fact.reference);
        let Some(assignment) = dag.witness_bool_masked(applies, vars.len(), true, &masks) else {
            continue;
        };
        harness.set(vars.triples(), &assignment);
        let result = harness.result(policy, other, other);
        let applied = result.applied().iter().any(|a| {
            a.layer == fact.reference.layer
                && a.eacl_index == fact.reference.eacl
                && a.entry_index == fact.reference.entry
        });
        if applied {
            return Some(witness_from(vars, &assignment));
        }
    }
    None
}

/// `GAA902` confirmation: falsification probes. For both identity classes
/// and three uniform mask-consistent assignments, across every cell the
/// entry's right matches, the interpreter must (a) never report the entry
/// applied and (b) agree with the composition that simply omits the entry.
/// Any disagreement contradicts the claim and drops it.
fn confirm_dead(
    harness: &Harness,
    policy: &ComposedPolicy,
    vars: &VarTable,
    authorities: &[String],
    values: &[String],
    fact: &EntryFacts,
) -> bool {
    let without = remove_entry(policy, fact.reference);
    for class in IdentityClass::ALL {
        for base in [GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe] {
            let assignment = masked_uniform(vars, class, base);
            harness.set(vars.triples(), &assignment);
            for authority in authorities {
                for value in values {
                    if !fact.entry.right.matches(authority, value) {
                        continue;
                    }
                    let result = harness.result(policy, authority, value);
                    let applied = result.applied().iter().any(|a| {
                        a.layer == fact.reference.layer
                            && a.eacl_index == fact.reference.eacl
                            && a.entry_index == fact.reference.entry
                    });
                    if applied {
                        return false;
                    }
                    if result.authorization_status()
                        != harness.authorization(&without, authority, value)
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// `GAA903` confirmation: the slice must be proven, and full vs sliced
/// compositions must agree through the interpreter at a mask-consistent
/// assignment.
fn confirm_blowup(
    harness: &Harness,
    policy: &ComposedPolicy,
    vars: &VarTable,
    authority: &str,
    value: &str,
    class: IdentityClass,
    cell: &CellSlice,
) -> Option<crate::symbolic::Witness> {
    if !cell.verified {
        return None;
    }
    let assignment = masked_uniform(vars, class, GaaStatus::Yes);
    harness.set(vars.triples(), &assignment);
    if harness.authorization(policy, authority, value)
        != harness.authorization(&cell.policy, authority, value)
    {
        return None;
    }
    Some(witness_from(vars, &assignment))
}

/// The composition with one entry removed (layer structure and EACL modes
/// preserved).
fn remove_entry(policy: &ComposedPolicy, reference: EntryRef) -> ComposedPolicy {
    let mut system: Vec<Eacl> = Vec::new();
    let mut local: Vec<Eacl> = Vec::new();
    let (mut sys, mut loc) = (0usize, 0usize);
    for (layer, eacl) in policy.layers() {
        let eacl_index = match layer {
            PolicyLayer::System => {
                sys += 1;
                sys - 1
            }
            PolicyLayer::Local => {
                loc += 1;
                loc - 1
            }
        };
        let entries = eacl
            .entries
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                !(layer == reference.layer && eacl_index == reference.eacl && *i == reference.entry)
            })
            .map(|(_, e)| e.clone())
            .collect();
        let sliced = Eacl {
            mode: eacl.mode,
            entries,
        };
        match layer {
            PolicyLayer::System => system.push(sliced),
            PolicyLayer::Local => local.push(sliced),
        }
    }
    ComposedPolicy::compose(system, local)
}

// ---------------------------------------------------------------------------
// Slice cross-validation
// ---------------------------------------------------------------------------

/// Outcome of [`cross_validate_slices`].
#[derive(Debug, Clone)]
pub struct SliceCrossValidation {
    /// Request cells checked (object × authority × value × identity class).
    pub cells: usize,
    /// Cells whose slice passed the DAG equivalence proof and were
    /// evaluated through the sliced composition.
    pub verified: usize,
    /// Cells where the proof failed: the serving path falls back to full
    /// evaluation, so these were checked interpreter-vs-DAG only.
    pub fallback: usize,
    /// Interpreter `check_authorization` calls made.
    pub requests: usize,
    /// Any (cell, assignment) where the sliced interpreter, the full
    /// interpreter and the compiled DAG did not all agree. Empty = slicing
    /// is sound on this deployment.
    pub disagreements: Vec<String>,
}

impl SliceCrossValidation {
    /// True when all three evaluators agreed everywhere.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Maximum mask-consistent assignments enumerated exhaustively per cell.
const SLICE_VALIDATE_LIMIT: usize = 243;
/// Seeded sample count beyond the exhaustive limit.
const SLICE_VALIDATE_SAMPLES: usize = 32;

/// Differentially validates the slicing fast path against the ground
/// truth, per request cell and identity class: over every mask-consistent
/// assignment (exhaustive when the per-cell table is ≤ 243, `seed`-driven
/// sampling beyond), the interpreter on the **sliced** composition, the
/// interpreter on the **full** composition, and the compiled decision DAG
/// must agree on the authorization status. Unverified cells — where the
/// serving path falls back to full evaluation — are still checked
/// interpreter-vs-DAG, so the fallback leg is covered too.
#[must_use]
pub fn cross_validate_slices(
    deployment: &Deployment,
    snapshot: &RegistrySnapshot,
    seed: u64,
) -> SliceCrossValidation {
    use gaa_core::dag::compile_decision;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let vocab = vocabulary(&[deployment], snapshot);
    let vars = VarTable::from_triples(vocab.triples.clone());
    let harness = Harness::new(deployment, vars.triples());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = SliceCrossValidation {
        cells: 0,
        verified: 0,
        fallback: 0,
        requests: 0,
        disagreements: Vec::new(),
    };

    for object in &vocab.objects {
        let policy = deployment.compose_for(object);
        let mut dag = DecisionDag::new();
        for authority in &vocab.authorities {
            for value in &vocab.values {
                for class in IdentityClass::ALL {
                    let cell = slice_cell(
                        &mut dag,
                        &policy,
                        &vars,
                        authority,
                        value,
                        class,
                        GaaStatus::No,
                    );
                    report.cells += 1;
                    let serving = if cell.verified {
                        report.verified += 1;
                        &cell.policy
                    } else {
                        report.fallback += 1;
                        &policy
                    };
                    let root =
                        compile_decision(&mut dag, &policy, &vars, authority, value, GaaStatus::No);

                    // The per-variable outcomes the class mask allows.
                    let allowed: Vec<Vec<GaaStatus>> = class_masks(&vars, class)
                        .iter()
                        .map(|&mask| {
                            [GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe]
                                .into_iter()
                                .filter(|s| mask & outcome_bit(*s) != 0)
                                .collect()
                        })
                        .collect();
                    let total = allowed
                        .iter()
                        .try_fold(1usize, |acc, a| acc.checked_mul(a.len()));
                    let (count, exhaustive) = match total {
                        Some(t) if t <= SLICE_VALIDATE_LIMIT => (t, true),
                        _ => (SLICE_VALIDATE_SAMPLES, false),
                    };

                    for index in 0..count {
                        // Mixed-radix decode when exhaustive, seeded draw
                        // otherwise — either way every variable stays
                        // inside its class mask.
                        let mut radix = index;
                        let assignment: PartialAssignment = allowed
                            .iter()
                            .map(|choices| {
                                let pick = if exhaustive {
                                    let p = radix % choices.len();
                                    radix /= choices.len();
                                    p
                                } else {
                                    rng.gen_range(0..choices.len())
                                };
                                Some(choices[pick])
                            })
                            .collect();
                        harness.set(vars.triples(), &assignment);
                        let full = harness.authorization(&policy, authority, value);
                        let sliced = harness.authorization(serving, authority, value);
                        let compiled =
                            dag.eval_status(root, &mut |i| assignment[i].expect("full assignment"));
                        report.requests += 2;
                        if full != sliced || full != compiled {
                            report.disagreements.push(format!(
                                "`{authority} {value}` on `{object}` ({}, assignment {index}): \
                                 full={full} sliced={sliced} compiled={compiled}",
                                class.label(),
                            ));
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    fn deployment(system: &str, locals: &[(&str, &str)]) -> Deployment {
        let system = if system.is_empty() {
            vec![]
        } else {
            vec![Source::parse("system", system).unwrap()]
        };
        let locals = locals
            .iter()
            .map(|(name, text)| Source::parse(*name, text).unwrap())
            .collect();
        Deployment::new(system, locals)
    }

    fn snapshot() -> RegistrySnapshot {
        RegistrySnapshot::standard()
    }

    #[test]
    fn bare_expr_wildcard_entry_is_unsliceable() {
        let dep = deployment(
            "pos_access_right * *\npre_cond expr local payload\n\
             pos_access_right apache GET\n",
            &[],
        );
        let report = analyze_slices(&dep, &snapshot(), SliceOptions::default());
        let gaa901: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA901").collect();
        assert_eq!(gaa901.len(), 1, "{:?}", report.lints);
        assert!(gaa901[0].message.contains("interpreter-confirmed"));
        assert_eq!(report.dropped, 0);
        assert!(report.confirmed >= 1);
    }

    #[test]
    fn entry_below_wildcard_screen_is_dead_everywhere() {
        // The unconditional wildcard grant applies to every request, so the
        // entry below it can never be reached in any cell of any class.
        let dep = deployment(
            "",
            &[(
                "/doc",
                "pos_access_right * *\npos_access_right apache GET\n",
            )],
        );
        let report = analyze_slices(&dep, &snapshot(), SliceOptions::default());
        let gaa902: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA902").collect();
        assert_eq!(gaa902.len(), 1, "{:?}", report.lints);
        assert_eq!(gaa902[0].entry, Some(1));
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn live_guarded_entries_raise_nothing() {
        let dep = deployment(
            "neg_access_right apache *\npre_cond accessid GROUP BadGuys\n\
             pos_access_right apache *\npre_cond accessid USER *\n",
            &[("/doc", "pos_access_right apache GET\n")],
        );
        let report = analyze_slices(&dep, &snapshot(), SliceOptions::default());
        assert!(report.lints.is_empty(), "{:?}", report.lints);
        assert!(report.verified > 0);
    }

    #[test]
    fn blowup_fires_only_past_thresholds() {
        // 16 unconditional wildcard-right grants: every (apache *) cell
        // keeps the first... actually first-match keeps only the first
        // entry live; build 16 distinctly-guarded entries instead so all
        // stay kept.
        let mut text = String::new();
        for i in 0..16 {
            text.push_str(&format!(
                "pos_access_right apache *\npre_cond accessid GROUP g{i}\n"
            ));
        }
        let dep = deployment(&text, &[]);
        let report = analyze_slices(&dep, &snapshot(), SliceOptions::default());
        let gaa903: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA903").collect();
        assert_eq!(gaa903.len(), 1, "{:?}", report.lints);
        assert!(gaa903[0].message.contains("16 of 16"));

        // The same shape below the size floor is quiet.
        let small = deployment(
            "pos_access_right apache *\npre_cond accessid GROUP g0\n",
            &[],
        );
        let report = analyze_slices(&small, &snapshot(), SliceOptions::default());
        assert!(report.lints.is_empty(), "{:?}", report.lints);
    }
}
