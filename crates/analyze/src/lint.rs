//! The finding model: stable lint codes, severities, and locations.

use gaa_eacl::{PolicyLayer, RightPattern, Span};
use std::fmt;

/// Sentinel value used in a [`Lint::pattern`] to mean "any right value not
/// concretely named by the deployment's entries" (the completeness pass's
/// residual bucket).
pub const OTHER_VALUE: &str = "«other»";

/// How serious a finding is.
///
/// Ordered `Note < Warning < Error`, so `lints.iter().map(|l| l.severity).max()`
/// yields the gate-relevant worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintSeverity {
    /// Informational: worth knowing, never actionable on its own.
    Note,
    /// Probably a mistake, but the policy still means *something* coherent.
    Warning,
    /// The policy cannot mean what it says (dead deny, typo'd condition):
    /// the load gate refuses these by default.
    Error,
}

impl fmt::Display for LintSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintSeverity::Note => "note",
            LintSeverity::Warning => "warning",
            LintSeverity::Error => "error",
        })
    }
}

/// One analyzer finding.
///
/// ## Lint catalog
///
/// | code | severity | meaning |
/// |---|---|---|
/// | `GAA101` | warning | policy has no entries (everything falls to the default) |
/// | `GAA103` | warning | exact duplicate of an earlier entry |
/// | `GAA104` | error | unconditional deny-everything entry first (constant deny) |
/// | `GAA201` | warn/error | entry shadowed by an earlier entry (pattern and guard subsumed); error when polarities differ |
/// | `GAA202` | warning | local policy dead: system composition mode is `stop` |
/// | `GAA203` | warning | local entry ineffective: `narrow`-mode system entry unconditionally denies everything it could match |
/// | `GAA204` | warning | local deny ineffective: `expand`-mode system entry unconditionally grants everything it could match |
/// | `GAA301` | warning | condition has no registered evaluator — always `MAYBE` at request time |
/// | `GAA302` | error | unknown condition type/authority close to a registered name (likely typo) |
/// | `GAA303` | error | redirect chain loops between objects |
/// | `GAA401` | warning | request-space gap: no entry matches, silent default-deny |
/// | `GAA501` | error | semantic diff: a request region's status changes to YES (grant-widening) |
/// | `GAA502` | warning | semantic diff: a denied region becomes MAYBE (deny-narrowing) |
/// | `GAA503` | warning | semantic diff: a granted region becomes MAYBE (MAYBE-surface growth) |
/// | `GAA504` | note | semantic diff: a region's status changes to NO (restriction-tightening) |
/// | `GAA506` | error | symbolic invariant assertion violated (counterexample attached) |
/// | `GAA601` | error | code: `unwrap`/`expect`/`panic!` on the request path (worker-killing DoS primitive) |
/// | `GAA602` | error | code: raw `std::sync`/`parking_lot` primitive in a `gaa_race::sync`-migrated file |
/// | `GAA603` | warning | code: `Err` arm in the front end/glue that never reaches audit/degradation |
/// | `GAA604` | warning | code: `Ordering::` use without a `// ordering:` rationale comment |
/// | `GAA701` | warning | pattern subsumed by / equivalent to another pattern in the same set (dead weight) |
/// | `GAA702` | error/warning | pattern can never match: invalid `re:` (error), empty language (warning) |
/// | `GAA703` | warning | same literal guarded case-insensitively (glob) and case-sensitively (`re:`) — case-flipped requests split the dialects |
/// | `GAA704` | warning | percent-encoding bypass: a caught request survives encoding unmatched by the whole set (the NIMDA gap) |
/// | `GAA705` | note | crafted input amplifies glob matcher cost past the steps-per-byte threshold (measured) |
/// | `GAA801` | error/warning | site: raising `system_threat_level` widens access on an object (error when a level step reaches YES) |
/// | `GAA802` | warning | site: a `BadGuys` blacklist member is still granted on an object (blacklist does not dominate) |
/// | `GAA803` | warning/note | site: object anonymously reachable but not on the declared allowlist (note: stale allowlist entry) |
/// | `GAA804` | warning | site: policy serves an attack URL matching an IDS signature with no screening pre-condition (the static NIMDA gap) |
/// | `GAA805` | warning/note | site: htaccess chain and EACL deployment disagree on the same object (warning when htaccess is the only defense) |
/// | `GAA901` | warning | slice: unsliceable entry — a condition with unbounded support (free-form `expr` payload, or no registered evaluator) forces every request cell's slice to include it |
/// | `GAA902` | warning | slice: entry dead in *every* request cell under both identity-class masks (stronger than the pairwise `GAA202`–`GAA204`) |
/// | `GAA903` | warning | slice: slice-size blowup — a cell's proven slice keeps a threshold fraction of a large deployment, so slicing cannot contain per-request cost |
///
/// `GAA101`/`GAA103`/`GAA104` are folded in from the syntax tier
/// ([`gaa_eacl::validate`]); `GAA102`, that tier's unreachability check, is
/// superseded here by the more precise `GAA201` and never emitted by the
/// analyzer. The `GAA5xx` codes come from the symbolic tier
/// ([`crate::symbolic`]) and are emitted by `gaa-lint diff`, not by
/// [`crate::Analyzer`]. The `GAA7xx` codes come from the pattern tier
/// ([`crate::patterns`], `gaa-lint patterns`): every one is replayed
/// through the real matchers before being reported. The `GAA8xx` codes
/// come from the site tier ([`crate::site`], `gaa-lint site`): every one
/// is replayed through a real in-process server before being reported.
/// The `GAA9xx` codes come from the slice tier ([`crate::slice`],
/// `gaa-lint slice`): every one is confirmed through the real interpreter
/// at a mask-consistent witness before being reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable code, e.g. `"GAA201"`.
    pub code: &'static str,
    /// Severity tier.
    pub severity: LintSeverity,
    /// Name of the policy source the finding is anchored in (`"system"`, an
    /// object path, a file name) — or `"deployment"` for whole-deployment
    /// findings such as completeness gaps.
    pub source: String,
    /// Which layer the finding's EACL belongs to, when entry-anchored.
    pub layer: Option<PolicyLayer>,
    /// EACL index **within its layer's concatenated list** (the order the
    /// runtime consults them), when entry-anchored.
    pub eacl: Option<usize>,
    /// Entry index within the EACL (0-based, as in
    /// [`gaa_eacl::validate::Finding`]), when entry-anchored.
    pub entry: Option<usize>,
    /// Byte/line span in the source text, when the source was parsed from
    /// text (absent for findings on programmatically built policies).
    pub span: Option<Span>,
    /// The right pattern the finding's runtime claim quantifies over:
    /// the ineffective entry's pattern for `GAA202`–`GAA204`, the gap
    /// pattern for `GAA401` (value may be [`OTHER_VALUE`]). Wildcards (`*`)
    /// are allowed in either position. This is what the differential harness
    /// replays against the real evaluator.
    pub pattern: Option<RightPattern>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Actionable fix hint (`did you mean …`), when one exists.
    pub suggestion: Option<String>,
}

impl Lint {
    pub(crate) fn new(
        code: &'static str,
        severity: LintSeverity,
        source: &str,
        message: String,
    ) -> Self {
        Lint {
            code,
            severity,
            source: source.to_string(),
            layer: None,
            eacl: None,
            entry: None,
            span: None,
            pattern: None,
            message,
            suggestion: None,
        }
    }

    pub(crate) fn at(
        mut self,
        layer: PolicyLayer,
        eacl: usize,
        entry: Option<usize>,
        span: Option<Span>,
    ) -> Self {
        self.layer = Some(layer);
        self.eacl = Some(eacl);
        self.entry = entry;
        self.span = span;
        self
    }

    pub(crate) fn with_pattern(mut self, pattern: RightPattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    pub(crate) fn with_suggestion(mut self, suggestion: String) -> Self {
        self.suggestion = Some(suggestion);
        self
    }
}

impl fmt::Display for Lint {
    /// `severity[code]: source: [line N:] [eacl E entry M:] message`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}: ", self.severity, self.code, self.source)?;
        if let Some(span) = self.span {
            write!(f, "{span}: ")?;
        }
        if let (Some(eacl), Some(entry)) = (self.eacl, self.entry) {
            write!(f, "eacl {eacl} entry {entry}: ")?;
        }
        f.write_str(&self.message)?;
        if let Some(suggestion) = &self.suggestion {
            write!(f, " ({suggestion})")?;
        }
        Ok(())
    }
}

/// The worst severity present, or `None` for a clean report.
pub fn max_severity(lints: &[Lint]) -> Option<LintSeverity> {
    lints.iter().map(|l| l.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_eacl::Span;

    #[test]
    fn severity_ordering_drives_gating() {
        assert!(LintSeverity::Note < LintSeverity::Warning);
        assert!(LintSeverity::Warning < LintSeverity::Error);
        let lints = vec![
            Lint::new("GAA101", LintSeverity::Warning, "a", "w".into()),
            Lint::new("GAA201", LintSeverity::Error, "a", "e".into()),
        ];
        assert_eq!(max_severity(&lints), Some(LintSeverity::Error));
        assert_eq!(max_severity(&[]), None);
    }

    #[test]
    fn display_includes_location_and_suggestion() {
        let lint = Lint::new(
            "GAA302",
            LintSeverity::Error,
            "/cgi-bin/phf",
            "unknown condition type `acessid`".into(),
        )
        .at(
            gaa_eacl::PolicyLayer::Local,
            0,
            Some(3),
            Some(Span {
                line: 12,
                start: 100,
                end: 120,
            }),
        )
        .with_suggestion("did you mean `accessid`?".into());
        let text = lint.to_string();
        assert!(text.starts_with("error[GAA302]: /cgi-bin/phf: line 12: eacl 0 entry 3:"));
        assert!(text.contains("did you mean `accessid`?"));
    }
}
