//! Symbolic policy verification: semantic diff, equivalence, invariants.
//!
//! Built on the canonical decision DAGs of [`gaa_core::dag`]: a composed
//! deployment is compiled, per request cell, to a function from
//! condition-outcome variables (tri-valued, YES / NO / UNEVALUATED) to an
//! authorization status. Because the DAGs are reduced and hash-consed,
//! semantically equal deployments compile to identical roots inside a
//! shared arena — so equivalence is pointer comparison, and a *diff* is the
//! set of cells whose roots differ, refined per status transition with an
//! exact model count and a concrete witness assignment.
//!
//! Three verification surfaces are exported:
//!
//! * [`diff_deployments`] / [`diff_lints`] — `gaa-lint diff`: every
//!   `(request cell, transition)` region that changed, as `GAA5xx` lints
//!   (GAA501 grant-widening, GAA502 deny-narrowing, GAA503 MAYBE-surface
//!   growth, GAA504 restriction-tightening), each carrying a witness the
//!   real interpreter confirmed;
//! * [`parse_invariants`] / [`check_invariants`] — the `*.inv` assertion
//!   format (`deny PUT /admin/* when system_threat_level local =high`),
//!   checked symbolically with interpreter-confirmed counterexamples;
//! * [`diff_gate`] — a [`PolicyGate`] for hot-reload: it learns the
//!   deployed policy set from the retrieval stream and refuses any *update*
//!   that grant-widens its source or violates an invariant (`lint.diff_gate`
//!   in the server configuration; fail-closed via
//!   [`gaa_core::GatedPolicyStore`]).
//!
//! [`cross_validate`] closes the loop on the compiler itself: it compares
//! the interpreter, the symbolic DAG and the compiled fast-path evaluator
//! over the exhaustive condition-outcome truth table (tri-valued up to
//! 3^7 assignments, boolean up to 2^12, seeded samples beyond).
//!
//! All symbolic verdicts speak about the **authorization status** (§6
//! phases 1–3); request-result conditions carry side effects and stay with
//! the interpreter.

use crate::lint::{Lint, LintSeverity, OTHER_VALUE};
use crate::snapshot::RegistrySnapshot;
use crate::source::Source;
use gaa_audit::VirtualClock;
use gaa_core::dag::{collect_triples, compile_decision, DecisionDag, PartialAssignment, VarTable};
use gaa_core::{
    CompiledPolicy, EvalDecision, EvalEnv, GaaApi, GaaApiBuilder, GaaStatus, MemoryPolicyStore,
    PolicyGate, RightPattern, SecurityContext, REDIRECT_COND_TYPE,
};
use gaa_eacl::{ComposedPolicy, Condition, Eacl};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One side of a comparison: the system policy sources plus the per-object
/// local sources (named by object path), exactly what `gaa-lint` loads.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    /// System-wide policy sources (conventionally one, named `"system"`).
    pub system: Vec<Source>,
    /// Per-object local policy sources.
    pub locals: Vec<Source>,
}

impl Deployment {
    /// Bundles parsed sources into a deployment.
    #[must_use]
    pub fn new(system: Vec<Source>, locals: Vec<Source>) -> Self {
        Deployment { system, locals }
    }

    /// Every system-layer EACL, in source order.
    #[must_use]
    pub fn system_eacls(&self) -> Vec<Eacl> {
        self.system
            .iter()
            .flat_map(|s| s.eacls.iter().cloned())
            .collect()
    }

    /// The local-layer EACLs registered for `object` (empty when the
    /// object has no local policy).
    #[must_use]
    pub fn local_eacls(&self, object: &str) -> Vec<Eacl> {
        self.locals
            .iter()
            .filter(|s| s.name == object)
            .flat_map(|s| s.eacls.iter().cloned())
            .collect()
    }

    /// The composed policy an evaluator would see for `object`; objects
    /// with no local source get the system-only composition.
    #[must_use]
    pub fn compose_for(&self, object: &str) -> ComposedPolicy {
        ComposedPolicy::compose(self.system_eacls(), self.local_eacls(object))
    }
}

/// The shared enumeration universe of one or more deployments: request
/// alphabet (named tokens plus the `«other»` bucket per axis), object names
/// (plus the unnamed-object bucket), and the condition-outcome variables.
pub(crate) struct Vocabulary {
    pub(crate) authorities: Vec<String>,
    pub(crate) values: Vec<String>,
    pub(crate) objects: Vec<String>,
    pub(crate) triples: BTreeSet<(String, String, String)>,
}

pub(crate) fn vocabulary(deployments: &[&Deployment], snapshot: &RegistrySnapshot) -> Vocabulary {
    let mut authorities: BTreeSet<String> = BTreeSet::new();
    let mut values: BTreeSet<String> = BTreeSet::new();
    let mut objects: BTreeSet<String> = BTreeSet::new();
    let mut triples: BTreeSet<(String, String, String)> = BTreeSet::new();
    let is_registered = |t: &str, a: &str| snapshot.is_registered(t, a);
    for deployment in deployments {
        for source in deployment.system.iter().chain(deployment.locals.iter()) {
            for eacl in &source.eacls {
                collect_triples(eacl, &is_registered, &mut triples);
                for entry in &eacl.entries {
                    if entry.right.authority != "*" {
                        authorities.insert(entry.right.authority.clone());
                    }
                    if entry.right.value != "*" {
                        values.insert(entry.right.value.clone());
                    }
                }
            }
        }
        for local in &deployment.locals {
            objects.insert(local.name.clone());
        }
    }
    authorities.insert(OTHER_VALUE.to_string());
    values.insert(OTHER_VALUE.to_string());
    objects.insert(OTHER_VALUE.to_string());
    Vocabulary {
        authorities: authorities.into_iter().collect(),
        values: values.into_iter().collect(),
        objects: objects.into_iter().collect(),
        triples,
    }
}

/// A concrete condition-outcome witness: each constrained condition with
/// the outcome that exhibits the reported behavior (unconstrained
/// conditions may take any outcome).
pub type Witness = Vec<(Condition, GaaStatus)>;

pub(crate) fn witness_from(vars: &VarTable, assignment: &PartialAssignment) -> Witness {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|s| (vars.condition(i), s)))
        .collect()
}

pub(crate) fn describe_witness(witness: &Witness) -> String {
    if witness.is_empty() {
        return "any condition outcome".to_string();
    }
    witness
        .iter()
        .map(|(c, s)| format!("{} {} {}={s}", c.cond_type, c.authority, c.value))
        .collect::<Vec<_>>()
        .join(", ")
}

/// An interpreter harness whose registered pre-conditions answer from a
/// shared tri-valued assignment table (unknown triples default to Met) —
/// the ground truth every symbolic verdict is replayed against.
type AssignmentTable = Arc<Mutex<HashMap<(String, String, String), GaaStatus>>>;

pub(crate) struct Harness {
    api: GaaApi,
    assignment: AssignmentTable,
}

impl Harness {
    pub(crate) fn new(deployment: &Deployment, triples: &[(String, String, String)]) -> Self {
        let mut store = MemoryPolicyStore::new();
        store.set_system(deployment.system_eacls());
        for source in &deployment.locals {
            store.set_local(&source.name, source.eacls.clone());
        }
        let assignment: AssignmentTable = Arc::new(Mutex::new(HashMap::new()));
        let mut builder =
            GaaApiBuilder::new(Arc::new(store)).with_clock(Arc::new(VirtualClock::new()));
        let keys: BTreeSet<(String, String)> = triples
            .iter()
            .map(|(t, a, _)| (t.clone(), a.clone()))
            .collect();
        for (cond_type, authority) in keys {
            let map = Arc::clone(&assignment);
            let (t, a) = (cond_type.clone(), authority.clone());
            builder = builder.register(
                cond_type,
                authority,
                move |value: &str, _env: &EvalEnv<'_>| match map
                    .lock()
                    .get(&(t.clone(), a.clone(), value.to_string()))
                    .copied()
                {
                    Some(GaaStatus::Yes) | None => EvalDecision::Met,
                    Some(GaaStatus::No) => EvalDecision::NotMet,
                    Some(GaaStatus::Maybe) => EvalDecision::Unevaluated,
                },
            );
        }
        Harness {
            api: builder.build(),
            assignment,
        }
    }

    /// Installs an assignment; variables left `None` default to YES (Met).
    pub(crate) fn set(&self, triples: &[(String, String, String)], assignment: &PartialAssignment) {
        let mut map = self.assignment.lock();
        map.clear();
        for (i, triple) in triples.iter().enumerate() {
            let status = assignment
                .get(i)
                .copied()
                .flatten()
                .unwrap_or(GaaStatus::Yes);
            map.insert(triple.clone(), status);
        }
    }

    pub(crate) fn authorization(
        &self,
        policy: &ComposedPolicy,
        authority: &str,
        value: &str,
    ) -> GaaStatus {
        self.result(policy, authority, value).authorization_status()
    }

    /// The full authorization result (the slice tier inspects which entries
    /// applied, not just the status).
    pub(crate) fn result(
        &self,
        policy: &ComposedPolicy,
        authority: &str,
        value: &str,
    ) -> gaa_core::AuthorizationResult {
        self.api.check_authorization(
            policy,
            &RightPattern::new(authority, value),
            &SecurityContext::new(),
        )
    }
}

/// One changed region of the decision surface: a request cell whose
/// authorization status transitions `old → new` on `assignments` of the
/// possible condition outcomes, with a concrete witness.
#[derive(Debug, Clone)]
pub struct DiffRegion {
    /// Object whose composed policy changed (`«other»` = any object with
    /// no local policy).
    pub object: String,
    /// Request authority token (`«other»` = any unnamed authority).
    pub authority: String,
    /// Request value token (`«other»` = any unnamed value).
    pub value: String,
    /// Authorization status under the old deployment.
    pub old: GaaStatus,
    /// Authorization status under the new deployment.
    pub new: GaaStatus,
    /// Exact number of full condition-outcome assignments (out of
    /// `3^variables`) exhibiting this transition.
    pub assignments: u128,
    /// A concrete condition-outcome witness for the transition.
    pub witness: Witness,
    /// Whether the real interpreter reproduced both statuses at the
    /// witness (it always should; `false` flags a compiler bug).
    pub confirmed: bool,
}

/// Result of [`diff_deployments`].
#[derive(Debug, Clone)]
pub struct DeploymentDiff {
    /// True when every request cell compiled to the identical DAG root —
    /// the deployments are semantically equivalent.
    pub identical: bool,
    /// Changed regions, deterministically ordered by
    /// (object, authority, value, transition).
    pub regions: Vec<DiffRegion>,
    /// Size of the condition-outcome variable universe.
    pub variables: usize,
    /// Request cells compared (objects × authorities × values).
    pub cells: usize,
}

/// Transition enumeration order: most security-relevant first.
const TRANSITIONS: [(GaaStatus, GaaStatus); 6] = [
    (GaaStatus::No, GaaStatus::Yes),
    (GaaStatus::Maybe, GaaStatus::Yes),
    (GaaStatus::No, GaaStatus::Maybe),
    (GaaStatus::Yes, GaaStatus::Maybe),
    (GaaStatus::Yes, GaaStatus::No),
    (GaaStatus::Maybe, GaaStatus::No),
];

/// Compares two deployments symbolically: compiles every request cell of
/// both into one shared DAG arena over the union variable universe, then
/// reports each `(cell, transition)` region with an exact count and an
/// interpreter-confirmed witness. `identical` doubles as the `gaa-lint
/// equiv` verdict.
pub fn diff_deployments(
    old: &Deployment,
    new: &Deployment,
    snapshot: &RegistrySnapshot,
) -> DeploymentDiff {
    let voc = vocabulary(&[old, new], snapshot);
    let vars = VarTable::from_triples(voc.triples.clone());
    let mut dag = DecisionDag::new();
    let old_harness = Harness::new(old, vars.triples());
    let new_harness = Harness::new(new, vars.triples());

    let mut identical = true;
    let mut regions = Vec::new();
    let mut cells = 0usize;
    for object in &voc.objects {
        let old_policy = old.compose_for(object);
        let new_policy = new.compose_for(object);
        for authority in &voc.authorities {
            for value in &voc.values {
                cells += 1;
                let old_root = compile_decision(
                    &mut dag,
                    &old_policy,
                    &vars,
                    authority,
                    value,
                    GaaStatus::No,
                );
                let new_root = compile_decision(
                    &mut dag,
                    &new_policy,
                    &vars,
                    authority,
                    value,
                    GaaStatus::No,
                );
                if old_root == new_root {
                    continue;
                }
                identical = false;
                let pair = dag.pair_decision(old_root, new_root);
                for (from, to) in TRANSITIONS {
                    let count = dag.count_transition(pair, vars.len(), from, to);
                    if count == 0 {
                        continue;
                    }
                    let assignment = dag
                        .witness_transition(pair, vars.len(), from, to)
                        .expect("positive count implies a witness path");
                    old_harness.set(vars.triples(), &assignment);
                    let got_old = old_harness.authorization(&old_policy, authority, value);
                    new_harness.set(vars.triples(), &assignment);
                    let got_new = new_harness.authorization(&new_policy, authority, value);
                    regions.push(DiffRegion {
                        object: object.clone(),
                        authority: authority.clone(),
                        value: value.clone(),
                        old: from,
                        new: to,
                        assignments: count,
                        witness: witness_from(&vars, &assignment),
                        confirmed: got_old == from && got_new == to,
                    });
                }
            }
        }
    }
    DeploymentDiff {
        identical,
        regions,
        variables: vars.len(),
        cells,
    }
}

/// The `GAA5xx` code and severity a region reports as.
#[must_use]
pub fn region_code(region: &DiffRegion) -> (&'static str, LintSeverity) {
    match (region.old, region.new) {
        (_, GaaStatus::Yes) => ("GAA501", LintSeverity::Error),
        (GaaStatus::No, GaaStatus::Maybe) => ("GAA502", LintSeverity::Warning),
        (_, GaaStatus::Maybe) => ("GAA503", LintSeverity::Warning),
        (_, GaaStatus::No) => ("GAA504", LintSeverity::Note),
    }
}

/// Renders a diff as `GAA5xx` lints (one per region), ready for the
/// standard human/JSON renderers.
#[must_use]
pub fn diff_lints(diff: &DeploymentDiff) -> Vec<Lint> {
    let total = 3u128.pow(u32::try_from(diff.variables).unwrap_or(0));
    diff.regions
        .iter()
        .map(|region| {
            let (code, severity) = region_code(region);
            let label = match code {
                "GAA501" => "grant-widening",
                "GAA502" => "deny-narrowing",
                "GAA503" => "MAYBE-surface growth",
                _ => "restriction-tightening",
            };
            let message = format!(
                "{label}: right `{} {}` changes {}→{} for {} of {} condition outcome(s); \
                 witness: {}{}",
                region.authority,
                region.value,
                region.old,
                region.new,
                region.assignments,
                total,
                describe_witness(&region.witness),
                if region.confirmed {
                    " (interpreter-confirmed)"
                } else {
                    " (NOT confirmed by the interpreter — possible compiler defect)"
                },
            );
            Lint::new(code, severity, &region.object, message).with_pattern(RightPattern::new(
                region.authority.clone(),
                region.value.clone(),
            ))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

/// One `*.inv` assertion: for every request matching the right pattern on
/// every object matching the object pattern, under every condition
/// assignment consistent with the `when` atoms, the authorization status
/// must equal `expected`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// 1-based line in the `.inv` file (0 for programmatic invariants).
    pub line: usize,
    /// The assertion text, verbatim.
    pub text: String,
    /// Required status: `deny` → NO, `grant` → YES, `maybe` → MAYBE.
    pub expected: GaaStatus,
    /// Right authority token, or `*`.
    pub authority: String,
    /// Right value token, or `*`.
    pub value: String,
    /// Object pattern: exact path, `*`, or `/prefix/*`.
    pub object: String,
    /// Condition constraints: each `(condition, status)` fixes one
    /// condition-outcome variable (`!` atoms fix it to NO).
    pub when: Vec<(Condition, GaaStatus)>,
}

/// Parses the `*.inv` assertion format, one invariant per line:
///
/// ```text
/// # comments and blank lines are ignored
/// <deny|grant|maybe> [<authority>] <value> <object> [when <atom>[, <atom>]...]
/// ```
///
/// The object pattern is the last positional token (exact path, `*`, or
/// `/prefix/*`); with two positional tokens the authority defaults to `*`.
/// Each atom is `[!]<type> <authority> <value...>`, constraining that
/// condition's outcome to YES (or NO with the leading `!`).
///
/// ```text
/// deny apache PUT /admin/* when system_threat_level local =high
/// grant GET /index.html when accessid GROUP staff
/// maybe apache POST /upload when !accessid USER admin
/// ```
///
/// # Errors
///
/// Returns `line N: <reason>` for malformed lines.
pub fn parse_invariants(text: &str) -> Result<Vec<Invariant>, String> {
    let mut invariants = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let expected = match tokens[0] {
            "deny" => GaaStatus::No,
            "grant" => GaaStatus::Yes,
            "maybe" => GaaStatus::Maybe,
            other => {
                return Err(format!(
                    "line {line}: unknown verb `{other}` (expected deny, grant or maybe)"
                ))
            }
        };
        let when_at = tokens.iter().position(|t| *t == "when");
        let head = &tokens[1..when_at.unwrap_or(tokens.len())];
        let (authority, value, object) = match head {
            [value, object] => ("*".to_string(), (*value).to_string(), (*object).to_string()),
            [authority, value, object] => (
                (*authority).to_string(),
                (*value).to_string(),
                (*object).to_string(),
            ),
            _ => {
                return Err(format!(
                    "line {line}: expected `[<authority>] <value> <object>` before `when`"
                ))
            }
        };
        let mut when = Vec::new();
        if let Some(at) = when_at {
            let clause = tokens[at + 1..].join(" ");
            if clause.is_empty() {
                return Err(format!("line {line}: `when` with no atoms"));
            }
            for atom in clause.split(',') {
                let parts: Vec<&str> = atom.split_whitespace().collect();
                if parts.len() < 3 {
                    return Err(format!(
                        "line {line}: atom `{}` must be `[!]<type> <authority> <value>`",
                        atom.trim()
                    ));
                }
                let (cond_type, status) = match parts[0].strip_prefix('!') {
                    Some(stripped) => (stripped, GaaStatus::No),
                    None => (parts[0], GaaStatus::Yes),
                };
                when.push((
                    Condition::new(cond_type, parts[1], parts[2..].join(" ")),
                    status,
                ));
            }
        }
        invariants.push(Invariant {
            line,
            text: trimmed.to_string(),
            expected,
            authority,
            value,
            object,
            when,
        });
    }
    Ok(invariants)
}

/// A counterexample to an [`Invariant`].
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// The violated invariant.
    pub invariant: Invariant,
    /// Object on which it fails (`«other»` = any object with no local
    /// policy).
    pub object: String,
    /// Request authority of the failing cell.
    pub authority: String,
    /// Request value of the failing cell.
    pub value: String,
    /// The status actually reached (≠ the invariant's expected status).
    pub actual: GaaStatus,
    /// Condition outcomes exhibiting the violation (includes the `when`
    /// constraints).
    pub witness: Witness,
    /// Whether the interpreter reproduced `actual` at the witness.
    pub confirmed: bool,
}

impl InvariantViolation {
    /// One-line human description with the counterexample.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "line {}: `{}` violated: right `{} {}` on `{}` reaches {} under {}{}",
            self.invariant.line,
            self.invariant.text,
            self.authority,
            self.value,
            self.object,
            self.actual,
            describe_witness(&self.witness),
            if self.confirmed {
                " (interpreter-confirmed)"
            } else {
                " (NOT confirmed by the interpreter — possible compiler defect)"
            },
        )
    }
}

/// Folds invariant violations into the lint vocabulary as `GAA506` errors,
/// so `gaa-lint all` can merge the symbolic tier into one report. The
/// source is the object the assertion fails on; the message carries the
/// full counterexample description.
#[must_use]
pub fn violation_lints(violations: &[InvariantViolation]) -> Vec<Lint> {
    violations
        .iter()
        .map(|v| Lint::new("GAA506", LintSeverity::Error, &v.object, v.describe()))
        .collect()
}

fn object_matches(pattern: &str, name: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    match pattern.strip_suffix("/*") {
        Some(prefix) => name.starts_with(&format!("{prefix}/")),
        None => pattern == name,
    }
}

fn map_token<'a>(token: &'a str, alphabet: &[String]) -> &'a str {
    if token != "*" && !alphabet.iter().any(|t| t == token) {
        // A token no entry names behaves exactly like the «other» bucket.
        OTHER_VALUE
    } else {
        token
    }
}

/// Checks invariants against a deployment symbolically; every violation
/// carries an interpreter-confirmed counterexample.
///
/// # Errors
///
/// Returns a description when an invariant is malformed for this
/// deployment: a `when` atom naming a condition with no registered
/// evaluator (its outcome is the constant UNEVALUATED, so constraining it
/// to YES/NO can never be met), or contradictory atoms.
pub fn check_invariants(
    deployment: &Deployment,
    snapshot: &RegistrySnapshot,
    invariants: &[Invariant],
) -> Result<Vec<InvariantViolation>, String> {
    let mut voc = vocabulary(&[deployment], snapshot);
    for invariant in invariants {
        for (cond, _) in &invariant.when {
            if cond.cond_type == REDIRECT_COND_TYPE
                || !snapshot.is_registered(&cond.cond_type, &cond.authority)
            {
                return Err(format!(
                    "line {}: `when` names condition `{} {}` with no registered evaluator; \
                     its outcome is always UNEVALUATED and cannot be constrained",
                    invariant.line, cond.cond_type, cond.authority
                ));
            }
            voc.triples.insert((
                cond.cond_type.clone(),
                cond.authority.clone(),
                cond.value.clone(),
            ));
        }
    }
    let vars = VarTable::from_triples(voc.triples.clone());
    let mut dag = DecisionDag::new();
    let harness = Harness::new(deployment, vars.triples());
    let named: BTreeSet<&str> = deployment.locals.iter().map(|s| s.name.as_str()).collect();

    let mut violations = Vec::new();
    for invariant in invariants {
        // Fix the `when` outcomes; everything else stays symbolic.
        let mut constraint: PartialAssignment = vec![None; vars.len()];
        for (cond, status) in &invariant.when {
            let index = vars.index_of(cond).expect("when triples were added");
            if constraint[index].is_some_and(|existing| existing != *status) {
                return Err(format!(
                    "line {}: contradictory `when` atoms for `{} {} {}`",
                    invariant.line, cond.cond_type, cond.authority, cond.value
                ));
            }
            constraint[index] = Some(*status);
        }

        let mut objects: Vec<&str> = voc
            .objects
            .iter()
            .map(String::as_str)
            .filter(|o| *o != OTHER_VALUE && object_matches(&invariant.object, o))
            .collect();
        // The unnamed-object composition (system only) is in scope whenever
        // the pattern can cover an object with no local policy.
        let covers_unnamed = invariant.object == "*"
            || invariant.object.ends_with("/*")
            || !named.contains(invariant.object.as_str());
        if covers_unnamed {
            objects.push(OTHER_VALUE);
        }

        let authorities: Vec<&str> = if invariant.authority == "*" {
            voc.authorities.iter().map(String::as_str).collect()
        } else {
            vec![map_token(&invariant.authority, &voc.authorities)]
        };
        let values: Vec<&str> = if invariant.value == "*" {
            voc.values.iter().map(String::as_str).collect()
        } else {
            vec![map_token(&invariant.value, &voc.values)]
        };

        for object in objects {
            let policy = deployment.compose_for(object);
            for authority in &authorities {
                for value in &values {
                    let root =
                        compile_decision(&mut dag, &policy, &vars, authority, value, GaaStatus::No);
                    let restricted = dag.restrict(root, &constraint);
                    if dag.constant_status(restricted) == Some(invariant.expected) {
                        continue;
                    }
                    let (actual, assignment) = [GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe]
                        .into_iter()
                        .filter(|s| *s != invariant.expected)
                        .find_map(|s| {
                            dag.witness_status(restricted, vars.len(), s)
                                .map(|a| (s, a))
                        })
                        .expect("non-constant or wrong-constant DAG has a counterexample");
                    // Merge the when-constraints back into the witness.
                    let mut merged = assignment;
                    for (index, status) in constraint.iter().enumerate() {
                        if status.is_some() {
                            merged[index] = *status;
                        }
                    }
                    harness.set(vars.triples(), &merged);
                    let got = harness.authorization(&policy, authority, value);
                    violations.push(InvariantViolation {
                        invariant: invariant.clone(),
                        object: object.to_string(),
                        authority: (*authority).to_string(),
                        value: (*value).to_string(),
                        actual,
                        witness: witness_from(&vars, &merged),
                        confirmed: got == actual,
                    });
                }
            }
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Hot-reload gate
// ---------------------------------------------------------------------------

/// The retrieval-stream view the diff gate has learned so far.
#[derive(Default)]
struct GateView {
    system: Option<Vec<Eacl>>,
    locals: HashMap<String, Vec<Eacl>>,
}

impl GateView {
    fn deployment(&self) -> Deployment {
        let system = self
            .system
            .iter()
            .map(|eacls| Source::from_eacls("system", eacls.clone()))
            .collect();
        let mut names: Vec<&String> = self.locals.keys().collect();
        names.sort();
        let locals = names
            .into_iter()
            .map(|name| Source::from_eacls(name.clone(), self.locals[name].clone()))
            .collect();
        Deployment::new(system, locals)
    }

    fn record(&mut self, name: &str, eacls: &[Eacl]) {
        if name == "system" {
            self.system = Some(eacls.to_vec());
        } else {
            self.locals.insert(name.to_string(), eacls.to_vec());
        }
    }
}

/// A [`PolicyGate`] that refuses grant-widening or invariant-violating
/// policy *updates* at hot-reload time.
///
/// The gate learns the deployed policy set from the retrieval stream: the
/// first sighting of each source (the vetted initial deployment — run
/// `gaa-lint` in CI for that) establishes its baseline. When a source's
/// content *changes*, the gate substitutes the candidate into the learned
/// view and symbolically diffs the whole deployment before/after: any
/// GAA501 grant-widening region — or any violated invariant on the updated
/// view — vetoes the load. Wrap with [`gaa_core::GatedPolicyStore`] in
/// `Enforce` mode for the fail-closed deny + audit behavior
/// (`policy.lint_rejected`).
#[must_use]
pub fn diff_gate(snapshot: RegistrySnapshot, invariants: Vec<Invariant>) -> PolicyGate {
    let state: Mutex<GateView> = Mutex::new(GateView::default());
    Arc::new(move |name: &str, eacls: &[Eacl]| {
        let mut view = state.lock();
        let previous = if name == "system" {
            view.system.clone()
        } else {
            view.locals.get(name).cloned()
        };
        match previous {
            None => {
                view.record(name, eacls);
                Ok(())
            }
            Some(ref old) if old.as_slice() == eacls => Ok(()),
            Some(_) => {
                let old_deployment = view.deployment();
                let mut candidate = view.deployment();
                if name == "system" {
                    candidate.system = vec![Source::from_eacls("system", eacls.to_vec())];
                } else {
                    candidate.locals.retain(|s| s.name != name);
                    candidate
                        .locals
                        .push(Source::from_eacls(name, eacls.to_vec()));
                    candidate.locals.sort_by(|a, b| a.name.cmp(&b.name));
                }
                let diff = diff_deployments(&old_deployment, &candidate, &snapshot);
                let widened: Vec<String> = diff
                    .regions
                    .iter()
                    .filter(|r| region_code(r).0 == "GAA501")
                    .map(|r| {
                        format!(
                            "`{} {}` on `{}` {}→{} ({})",
                            r.authority,
                            r.value,
                            r.object,
                            r.old,
                            r.new,
                            describe_witness(&r.witness)
                        )
                    })
                    .collect();
                if !widened.is_empty() {
                    return Err(format!(
                        "GAA501: update grant-widens the deployment: {}",
                        widened.join("; ")
                    ));
                }
                if !invariants.is_empty() {
                    let violations = check_invariants(&candidate, &snapshot, &invariants)
                        .map_err(|e| format!("invariant check failed: {e}"))?;
                    if let Some(first) = violations.first() {
                        return Err(format!("invariant violated: {}", first.describe()));
                    }
                }
                view.record(name, eacls);
                Ok(())
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Compiler cross-validation
// ---------------------------------------------------------------------------

/// Outcome of [`cross_validate`].
#[derive(Debug, Clone)]
pub struct CrossValidationReport {
    /// Condition-outcome variables in the deployment.
    pub variables: usize,
    /// Assignments exercised.
    pub assignments: usize,
    /// Whether the assignment space was covered exhaustively.
    pub exhaustive: bool,
    /// Interpreter `check_authorization` calls made.
    pub requests: usize,
    /// Any (assignment, object, cell) where interpreter, symbolic DAG and
    /// compiled evaluator did not all agree. Empty = the compiler is sound
    /// on this deployment.
    pub disagreements: Vec<String>,
}

impl CrossValidationReport {
    /// True when all three evaluators agreed everywhere.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Maximum assignments enumerated exhaustively by [`cross_validate`].
const CROSS_VALIDATE_LIMIT: usize = 4096;
/// Seeded sample count beyond the exhaustive limits.
const CROSS_VALIDATE_SAMPLES: usize = 256;

/// Differentially validates the symbolic compiler **and** the compiled
/// fast-path evaluator against the real interpreter: for every
/// (assignment, object, request cell), the three must agree on the
/// authorization status.
///
/// Coverage is exhaustive over the tri-valued truth table when `3^k ≤
/// 4096` (k ≤ 7), exhaustive over the boolean (YES/NO) table when `2^k ≤
/// 4096` (k ≤ 12), and `seed`-driven tri-valued sampling beyond that.
pub fn cross_validate(
    deployment: &Deployment,
    snapshot: &RegistrySnapshot,
    seed: u64,
) -> CrossValidationReport {
    let voc = vocabulary(&[deployment], snapshot);
    let vars = VarTable::from_triples(voc.triples.clone());
    let harness = Harness::new(deployment, vars.triples());
    let mut dag = DecisionDag::new();

    let policies: Vec<(String, ComposedPolicy)> = voc
        .objects
        .iter()
        .map(|o| (o.clone(), deployment.compose_for(o)))
        .collect();
    let compiled: Vec<CompiledPolicy> = policies
        .iter()
        .map(|(_, p)| harness.api.compile_policy(p))
        .collect();
    let roots: Vec<Vec<u32>> = policies
        .iter()
        .map(|(_, policy)| {
            voc.authorities
                .iter()
                .flat_map(|a| {
                    voc.values
                        .iter()
                        .map(|v| compile_decision(&mut dag, policy, &vars, a, v, GaaStatus::No))
                        .collect::<Vec<_>>()
                })
                .collect()
        })
        .collect();

    let k = vars.len();
    let tri_total = 3usize.checked_pow(u32::try_from(k).unwrap_or(u32::MAX));
    let bool_total = 1usize.checked_shl(u32::try_from(k).unwrap_or(u32::MAX));
    #[derive(Clone, Copy)]
    enum Space {
        Tri(usize),
        Bool(usize),
        Sampled,
    }
    let space = match (tri_total, bool_total) {
        (Some(t), _) if t <= CROSS_VALIDATE_LIMIT => Space::Tri(t),
        (_, Some(b)) if b <= CROSS_VALIDATE_LIMIT => Space::Bool(b),
        _ => Space::Sampled,
    };
    let total = match space {
        Space::Tri(t) => t,
        Space::Bool(b) => b,
        Space::Sampled => CROSS_VALIDATE_SAMPLES,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let ctx = SecurityContext::new();
    let mut requests = 0usize;
    let mut disagreements = Vec::new();
    for index in 0..total {
        let assignment: PartialAssignment = (0..k)
            .map(|bit| {
                let status = match space {
                    Space::Tri(_) => [GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe]
                        [index / 3usize.pow(u32::try_from(bit).expect("small index")) % 3],
                    Space::Bool(_) => {
                        if index >> bit & 1 == 1 {
                            GaaStatus::Yes
                        } else {
                            GaaStatus::No
                        }
                    }
                    Space::Sampled => {
                        [GaaStatus::Yes, GaaStatus::No, GaaStatus::Maybe][rng.gen_range(0..3)]
                    }
                };
                Some(status)
            })
            .collect();
        harness.set(vars.triples(), &assignment);
        for (oi, (object, policy)) in policies.iter().enumerate() {
            for (ai, authority) in voc.authorities.iter().enumerate() {
                for (vi, value) in voc.values.iter().enumerate() {
                    let right = RightPattern::new(authority.clone(), value.clone());
                    let interpreted = harness
                        .api
                        .check_authorization(policy, &right, &ctx)
                        .authorization_status();
                    requests += 1;
                    let symbolic = dag
                        .eval_status(roots[oi][ai * voc.values.len() + vi], &mut |i| {
                            assignment[i].expect("full assignment")
                        });
                    let fast =
                        harness
                            .api
                            .check_authorization_compiled(&compiled[oi], &right, &ctx);
                    if interpreted != symbolic || interpreted != fast {
                        disagreements.push(format!(
                            "assignment {index}: `{authority} {value}` on `{object}`: \
                             interpreter={interpreted} symbolic={symbolic} compiled={fast}"
                        ));
                    }
                }
            }
        }
    }
    CrossValidationReport {
        variables: k,
        assignments: total,
        exhaustive: !matches!(space, Space::Sampled),
        requests,
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(name: &str, text: &str) -> Source {
        Source::parse(name, text).unwrap()
    }

    fn section_7_2() -> Deployment {
        Deployment::new(
            vec![src(
                "system",
                "eacl_mode narrow\n\
                 neg_access_right apache *\n\
                 pre_cond regex gnu *phf* *test-cgi*\n\
                 rr_cond notify local on:failure/sysadmin\n\
                 pos_access_right apache *\n",
            )],
            vec![
                src(
                    "/cgi-bin/phf",
                    "neg_access_right apache *\npre_cond accessid GROUP BadGuys\n\
                     pos_access_right apache *\n",
                ),
                src("/index.html", "pos_access_right apache *\n"),
            ],
        )
    }

    #[test]
    fn identical_deployments_are_equivalent() {
        let snapshot = RegistrySnapshot::standard();
        let diff = diff_deployments(&section_7_2(), &section_7_2(), &snapshot);
        assert!(diff.identical);
        assert!(diff.regions.is_empty());
    }

    #[test]
    fn refactored_deployment_stays_equivalent() {
        // Appending an unreachable duplicate grant does not change the
        // decision function — the DAGs coincide.
        let mut refactored = section_7_2();
        refactored.locals[1] = src(
            "/index.html",
            "pos_access_right apache *\npos_access_right apache GET\n",
        );
        let snapshot = RegistrySnapshot::standard();
        let diff = diff_deployments(&section_7_2(), &refactored, &snapshot);
        assert!(diff.identical, "regions: {:?}", diff.regions);
    }

    #[test]
    fn dropping_a_system_screen_is_grant_widening() {
        let mut widened = section_7_2();
        widened.system = vec![src(
            "system",
            "eacl_mode narrow\npos_access_right apache *\n",
        )];
        let snapshot = RegistrySnapshot::standard();
        let diff = diff_deployments(&section_7_2(), &widened, &snapshot);
        assert!(!diff.identical);
        let lints = diff_lints(&diff);
        let widening: Vec<&Lint> = lints.iter().filter(|l| l.code == "GAA501").collect();
        assert!(!widening.is_empty(), "lints: {lints:?}");
        // Every region's witness was reproduced by the real interpreter.
        for region in &diff.regions {
            assert!(region.confirmed, "unconfirmed region {region:?}");
        }
        assert_eq!(lints.iter().filter(|l| l.code == "GAA504").count(), 0);
    }

    #[test]
    fn tightening_reports_gaa504_notes() {
        let mut tightened = section_7_2();
        tightened
            .system
            .push(src("system-extra", "neg_access_right apache POST\n"));
        let snapshot = RegistrySnapshot::standard();
        let diff = diff_deployments(&section_7_2(), &tightened, &snapshot);
        assert!(!diff.identical);
        let lints = diff_lints(&diff);
        assert!(lints.iter().all(|l| l.code == "GAA504"), "lints: {lints:?}");
        assert!(lints.iter().any(|l| l.severity == LintSeverity::Note));
    }

    #[test]
    fn invariants_parse_and_hold() {
        let text = "# block exploit probes under high threat\n\
                    deny apache GET /cgi-bin/phf when accessid GROUP BadGuys\n\
                    grant apache GET /index.html when !regex gnu *phf* *test-cgi*\n";
        let invariants = parse_invariants(text).unwrap();
        assert_eq!(invariants.len(), 2);
        assert_eq!(invariants[0].expected, GaaStatus::No);
        assert_eq!(invariants[0].authority, "apache");
        assert_eq!(invariants[1].authority, "apache");
        assert_eq!(invariants[1].when[0].1, GaaStatus::No);
        let snapshot = RegistrySnapshot::standard();
        let violations = check_invariants(&section_7_2(), &snapshot, &invariants).unwrap();
        assert!(
            violations.is_empty(),
            "{:?}",
            violations.iter().map(|v| v.describe()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn violated_invariant_carries_a_confirmed_counterexample() {
        // /index.html has an unconditional grant, so demanding deny fails.
        let invariants = parse_invariants("deny apache GET /index.html\n").unwrap();
        let snapshot = RegistrySnapshot::standard();
        let violations = check_invariants(&section_7_2(), &snapshot, &invariants).unwrap();
        assert_eq!(violations.len(), 1);
        let violation = &violations[0];
        assert_eq!(violation.actual, GaaStatus::Yes);
        assert!(violation.confirmed, "{}", violation.describe());
        assert!(violation.describe().contains("GET"));
    }

    #[test]
    fn unregistered_when_atom_is_rejected() {
        let invariants = parse_invariants("deny apache GET * when nosuch local x\n").unwrap();
        let snapshot = RegistrySnapshot::standard();
        let err = check_invariants(&section_7_2(), &snapshot, &invariants).unwrap_err();
        assert!(err.contains("no registered evaluator"), "{err}");
    }

    #[test]
    fn diff_gate_accepts_baselines_and_refuses_widening_updates() {
        let snapshot = RegistrySnapshot::standard();
        let gate = diff_gate(snapshot, Vec::new());
        let deployment = section_7_2();
        let system = deployment.system_eacls();
        let phf = deployment.local_eacls("/cgi-bin/phf");
        // Baseline sightings pass.
        assert!(gate("system", &system).is_ok());
        assert!(gate("/cgi-bin/phf", &phf).is_ok());
        // Unchanged re-check passes.
        assert!(gate("/cgi-bin/phf", &phf).is_ok());
        // Dropping the BadGuys screen widens /cgi-bin/phf: refused.
        let widened = src("/cgi-bin/phf", "pos_access_right apache *\n").eacls;
        let err = gate("/cgi-bin/phf", &widened).unwrap_err();
        assert!(err.contains("GAA501"), "{err}");
        // The baseline is unchanged, so the original still passes.
        assert!(gate("/cgi-bin/phf", &phf).is_ok());
        // A tightening update is accepted and becomes the new baseline.
        let tightened = src("/cgi-bin/phf", "neg_access_right apache *\n").eacls;
        assert!(gate("/cgi-bin/phf", &tightened).is_ok());
        assert!(gate("/cgi-bin/phf", &phf).unwrap_err().contains("GAA501"));
    }

    #[test]
    fn diff_gate_enforces_invariants_on_updates() {
        let snapshot = RegistrySnapshot::standard();
        let invariants = parse_invariants("deny apache GET /secret\n").unwrap();
        let gate = diff_gate(snapshot, invariants);
        let deny = src("/secret", "neg_access_right apache *\n").eacls;
        assert!(gate("/secret", &deny).is_ok());
        // The update does not widen /secret relative to... it does widen;
        // use a non-widening but invariant-violating path: a guarded deny
        // that turns MAYBE — no. Grant update violates both; the GAA501
        // check fires first, which is fine. Use an invariant about MAYBE:
        let gate = diff_gate(
            RegistrySnapshot::standard(),
            parse_invariants("maybe apache GET /vault\n").unwrap(),
        );
        let maybe = src(
            "/vault",
            "pos_access_right apache *\npre_cond accessid USER admin\n",
        )
        .eacls;
        assert!(gate("/vault", &maybe).is_ok());
        // Tightening to a constant deny breaks the MAYBE invariant without
        // widening anything.
        let hard_deny = src("/vault", "neg_access_right apache *\n").eacls;
        let err = gate("/vault", &hard_deny).unwrap_err();
        assert!(err.contains("invariant violated"), "{err}");
    }

    #[test]
    fn cross_validation_is_exhaustive_and_consistent() {
        let snapshot = RegistrySnapshot::standard();
        let report = cross_validate(&section_7_2(), &snapshot, 7);
        assert!(report.exhaustive);
        assert!(report.variables >= 2);
        assert!(
            report.is_consistent(),
            "disagreements: {:?}",
            report.disagreements
        );
    }
}
