//! `gaa-lint` — lint an EACL deployment from the command line.
//!
//! ```text
//! gaa-lint [--json] [--deny-warnings] [--differential] [--seed N]
//!          [--no-default-registry] [--system FILE]... FILE...
//! ```
//!
//! Plain `FILE` arguments are object-local policies (the object name is
//! `/` + the file stem, so `phf.eacl` analyzes as object `/phf`);
//! `--system FILE` names system-wide policy files. Exit status: `0` clean
//! (or warnings without `--deny-warnings`), `1` findings at or above the
//! failing threshold, `2` usage or I/O errors.

use gaa_analyze::{
    differential_check, max_severity, render_human, render_json, Analyzer, LintSeverity,
    RegistrySnapshot, Source,
};
use std::path::Path;
use std::process::ExitCode;

struct Options {
    json: bool,
    deny_warnings: bool,
    differential: bool,
    seed: u64,
    default_registry: bool,
    system_files: Vec<String>,
    local_files: Vec<String>,
}

const USAGE: &str = "usage: gaa-lint [--json] [--deny-warnings] [--differential] [--seed N] \
                     [--no-default-registry] [--system FILE]... FILE...";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        json: false,
        deny_warnings: false,
        differential: false,
        seed: 0,
        default_registry: true,
        system_files: Vec::new(),
        local_files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--deny-warnings" => options.deny_warnings = true,
            "--differential" => options.differential = true,
            "--seed" => {
                let value = it.next().ok_or("--seed needs a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed value `{value}`"))?;
            }
            "--no-default-registry" => options.default_registry = false,
            "--system" => {
                let file = it.next().ok_or("--system needs a file argument")?;
                options.system_files.push(file.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`\n{USAGE}")),
            file => options.local_files.push(file.to_string()),
        }
    }
    if options.system_files.is_empty() && options.local_files.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(options)
}

/// The object name a local policy file stands for: `/` + file stem.
fn object_name(file: &str) -> String {
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| file.to_string());
    format!("/{stem}")
}

fn load(name: String, file: &str) -> Result<Source, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("gaa-lint: {file}: {e}"))?;
    Source::parse(name, &text).map_err(|e| format!("gaa-lint: {file}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let mut system = Vec::new();
    for file in &options.system_files {
        match load("system".to_string(), file) {
            Ok(source) => system.push(source),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::from(2);
            }
        }
    }
    let mut locals = Vec::new();
    for file in &options.local_files {
        match load(object_name(file), file) {
            Ok(source) => locals.push(source),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::from(2);
            }
        }
    }

    let analyzer = if options.default_registry {
        Analyzer::new()
    } else {
        Analyzer::without_registry()
    };
    let lints = analyzer.analyze(&system, &locals);

    if options.json {
        println!("{}", render_json(&lints));
    } else {
        print!("{}", render_human(&lints));
    }

    if options.differential {
        let snapshot = analyzer
            .snapshot()
            .cloned()
            .unwrap_or_else(RegistrySnapshot::default);
        let report = differential_check(&system, &locals, &snapshot, &lints, options.seed);
        if !options.json {
            eprintln!(
                "differential: {} claims checked over {} assignments{} ({} requests)",
                report.lints_checked,
                report.assignments,
                if report.exhaustive {
                    " (exhaustive)"
                } else {
                    " (sampled)"
                },
                report.requests
            );
        }
        if !report.is_consistent() {
            for violation in &report.violations {
                eprintln!("differential violation: {violation}");
            }
            return ExitCode::from(1);
        }
    }

    let failing = if options.deny_warnings {
        LintSeverity::Warning
    } else {
        LintSeverity::Error
    };
    match max_severity(&lints) {
        Some(worst) if worst >= failing => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}
