//! Whole-site attack-surface verification: the `GAA8xx` tier behind
//! `gaa-lint site`.
//!
//! The per-deployment tiers prove properties of one composed policy at a
//! time; this module closes over the *site*: every object in the served
//! tree, its `.htaccess` chain verdict, its composed EACL deployment, and
//! the IDS signature database, all compiled through the hash-consed
//! decision DAG ([`gaa_core::dag`]). Five site-global invariants are
//! checked:
//!
//! * **GAA801** — threat-level monotonicity: raising `system_threat_level`
//!   never widens access on any object (symbolic sweep over the enumerated
//!   levels, per identity scenario).
//! * **GAA802** — blacklist dominance: a `BadGuys` member is denied
//!   everywhere the deployment references the blacklist at all.
//! * **GAA803** — anonymous-surface map: objects reachable with no
//!   identity, diffed against the declared allowlist (stale entries are
//!   notes).
//! * **GAA804** — signature coverage gaps: attack URLs an object's policy
//!   would serve even though an IDS signature matches them — the static
//!   NIMDA gap, computed as a signature×policy product.
//! * **GAA805** — layered-defense disagreement: the htaccess chain and the
//!   EACL deployment decide the same object differently.
//!
//! ## Soundness: the environment model and witness replay
//!
//! Each candidate is found by *restricting* an object's decision DAG by a
//! concrete request environment (method, URL, client address, identity,
//! group memberships, threat level). Conditions the environment fully
//! determines — `accessid USER/GROUP/HOST`, `regex gnu`, `location`,
//! `system_threat_level` — are pinned to the exact outcome the runtime
//! evaluator computes for that environment (the two implementations share
//! code paths: [`threat_comparison`], [`glob_match_ci`],
//! [`signature_matches`], [`location_matches`]). Everything else (time
//! windows, thresholds, load expressions…) stays symbolic. A claim is
//! reported **only when the restricted DAG is constant**: then no
//! uncontrolled condition can change the outcome, so one concrete request
//! decides it. Every surviving claim is replayed through a real server
//! ([`SiteReplay`]) and dropped — and counted in
//! [`SiteReport::dropped`] — unless the observed status code reproduces
//! the claimed decision. Non-constant candidates whose widening is merely
//! *reachable* are likewise counted as dropped, never reported.

use crate::lint::{Lint, LintSeverity};
use crate::snapshot::RegistrySnapshot;
use crate::symbolic::{vocabulary, Deployment};
use gaa_conditions::location::location_matches;
use gaa_conditions::regex::signature_matches;
use gaa_core::dag::{
    compile_decision, threat_comparison, DecisionDag, PartialAssignment, VarTable,
    THREAT_COND_TYPE, THREAT_LEVELS,
};
use gaa_core::GaaStatus;
use gaa_eacl::RightPattern;
use gaa_ids::matcher::glob_match_ci;
use gaa_ids::signatures::Matcher;
use gaa_ids::SignatureDb;
use std::collections::BTreeSet;

/// The client address every witness request originates from (TEST-NET-2:
/// guaranteed not to collide with `HOST`/`location` patterns written for
/// real networks, and stable so findings are reproducible).
pub const BASELINE_CLIENT_IP: &str = "198.51.100.10";

/// The blacklist group name the paper's §7.2 deployment maintains via
/// `update_log` and that GAA802 quantifies over.
pub const BLACKLIST_GROUP: &str = "BadGuys";

/// The right authority the web-server glue requests (`apache METHOD`).
const AUTHORITY: &str = "apache";

/// The parseable request methods — the server's whole method space, so
/// sweeping these three is exhaustive, not sampled.
const METHODS: [&str; 3] = ["GET", "HEAD", "POST"];

/// Boolean condition outcomes as statuses.
fn status_of(met: bool) -> GaaStatus {
    if met {
        GaaStatus::Yes
    } else {
        GaaStatus::No
    }
}

/// Widening transitions for GAA801, worst first.
const WIDENINGS: [(GaaStatus, GaaStatus); 3] = [
    (GaaStatus::No, GaaStatus::Yes),
    (GaaStatus::Maybe, GaaStatus::Yes),
    (GaaStatus::No, GaaStatus::Maybe),
];

/// The htaccess chain's verdict for an anonymous baseline client, as the
/// site walker resolved it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtVerdict {
    /// No `.htaccess` governs the object — GAA805 has nothing to compare.
    Open,
    /// The chain allows the baseline client.
    Allow,
    /// The chain demands credentials (401).
    AuthRequired,
    /// The chain forbids the baseline client (403).
    Forbidden,
}

/// One servable object in the site tree.
#[derive(Debug, Clone)]
pub struct SiteObject {
    /// The Vfs path requests use (e.g. `/private/report.html`).
    pub path: String,
    /// The EACL object name its local policy is registered under (often
    /// `/` + file stem; equals `path` when no local policy exists).
    pub object: String,
    /// The htaccess chain's anonymous-baseline verdict.
    pub htaccess: HtVerdict,
}

/// The site under audit: the walked object list plus the declared
/// anonymous allowlist (paths expected to be reachable with no identity).
#[derive(Debug, Clone, Default)]
pub struct SiteSpec {
    /// Every servable object, in tree order.
    pub objects: Vec<SiteObject>,
    /// Declared anonymous-reachable paths (`site.allow`).
    pub allow_anonymous: BTreeSet<String>,
}

/// Which access-control stack a witness request replays through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// The GAA glue (EACL deployment, signature scan, threat monitor).
    Gaa,
    /// The `.htaccess` chain only.
    Htaccess,
}

/// A synthesized witness request for [`SiteReplay`] to execute.
#[derive(Debug, Clone)]
pub struct ReplayRequest {
    /// Stack to exercise.
    pub mode: ReplayMode,
    /// HTTP method.
    pub method: String,
    /// Raw request target (path, optionally `?query`).
    pub url: String,
    /// Client address.
    pub client_ip: String,
    /// Authenticated user (the replayer must make these credentials
    /// verifiable), or anonymous.
    pub user: Option<String>,
    /// `(group, member)` seeds for the shared group store.
    pub groups: Vec<(String, String)>,
    /// Threat-monitor level index into [`THREAT_LEVELS`].
    pub threat_level: usize,
    /// Whether the live signature scan runs during the replay.
    pub with_signatures: bool,
}

/// Replays a witness request through a real server and reports the
/// response status code (`None` = the request could not be served at all,
/// which always drops the claim).
///
/// The implementation lives with the server (`gaa_httpd::site`): this
/// crate sits below the web-server substrate in the dependency order, so
/// the verifier takes the replayer as a capability.
pub trait SiteReplay {
    /// Executes one request against a **fresh** server and returns the
    /// status code.
    fn replay(&self, request: &ReplayRequest) -> Option<u16>;
}

/// Result of [`audit_site`].
#[derive(Debug, Default)]
pub struct SiteReport {
    /// Confirmed findings, ready for rendering.
    pub lints: Vec<Lint>,
    /// Objects audited.
    pub objects: usize,
    /// Request cells compiled (objects × methods).
    pub cells: usize,
    /// Findings confirmed by server replay.
    pub confirmed: usize,
    /// Candidate claims dropped: replay contradicted them, or the
    /// restricted DAG was not constant so no single request could confirm
    /// them.
    pub dropped: usize,
}

impl SiteReport {
    /// The counters in `--json` `stats` order.
    #[must_use]
    pub fn stats(&self) -> [(&'static str, usize); 4] {
        [
            ("objects", self.objects),
            ("cells", self.cells),
            ("confirmed", self.confirmed),
            ("dropped", self.dropped),
        ]
    }
}

/// A concrete request environment: everything the model pins.
#[derive(Clone)]
struct Env {
    method: String,
    url: String,
    client_ip: String,
    user: Option<String>,
    /// `(group, member)` pairs the replay will seed.
    memberships: Vec<(String, String)>,
    /// `Some(level)` pins every well-formed threat condition;
    /// `None` leaves them symbolic (GAA801's sweep axis) but still pins
    /// malformed comparisons to their level-independent MAYBE.
    threat: Option<usize>,
}

impl Env {
    fn anonymous(method: &str, url: &str, threat: Option<usize>) -> Env {
        Env {
            method: method.to_string(),
            url: url.to_string(),
            client_ip: BASELINE_CLIENT_IP.to_string(),
            user: None,
            memberships: Vec::new(),
            threat,
        }
    }

    fn request_line(&self) -> String {
        format!("{} {} HTTP/1.1", self.method, self.url)
    }

    /// The outcome the runtime evaluator computes for this condition in
    /// this environment, or `None` for conditions the environment does not
    /// determine (those stay symbolic).
    fn pin(&self, cond_type: &str, authority: &str, value: &str) -> Option<GaaStatus> {
        if cond_type == THREAT_COND_TYPE {
            return match self.threat {
                Some(level) => Some(match threat_comparison(value, level) {
                    Some(true) => GaaStatus::Yes,
                    Some(false) => GaaStatus::No,
                    None => GaaStatus::Maybe,
                }),
                // Sweep axis: well-formed comparisons stay symbolic, but a
                // malformed one is MAYBE at *every* level, so pin it.
                None => match threat_comparison(value, 0) {
                    None => Some(GaaStatus::Maybe),
                    Some(_) => None,
                },
            };
        }
        match (cond_type, authority) {
            ("accessid", "USER") => Some(match &self.user {
                None => GaaStatus::Maybe,
                Some(user) if value == "*" || glob_match_ci(value, user) => GaaStatus::Yes,
                Some(_) => GaaStatus::No,
            }),
            ("accessid", "GROUP") => {
                let group = value.trim();
                let member = self.memberships.iter().any(|(g, m)| {
                    g == group && (Some(m.as_str()) == self.user.as_deref() || *m == self.client_ip)
                });
                Some(status_of(member))
            }
            ("accessid", "HOST") => {
                let matched = value.split_whitespace().any(|pat| {
                    self.client_ip.starts_with(pat) || glob_match_ci(pat, &self.client_ip)
                });
                Some(status_of(matched))
            }
            ("regex", "gnu") => Some(status_of(signature_matches(value, &self.request_line()))),
            ("location", _) => Some(status_of(location_matches(value, &self.client_ip))),
            _ => None,
        }
    }

    fn restriction(&self, vars: &VarTable) -> PartialAssignment {
        vars.triples()
            .iter()
            .map(|(t, a, v)| self.pin(t, a, v))
            .collect()
    }

    fn describe(&self) -> String {
        match &self.user {
            Some(user) => format!("user `{user}`"),
            None => "anonymous clients".to_string(),
        }
    }

    fn to_request(&self, mode: ReplayMode, with_signatures: bool) -> ReplayRequest {
        ReplayRequest {
            mode,
            method: self.method.clone(),
            url: self.url.clone(),
            client_ip: self.client_ip.clone(),
            user: self.user.clone(),
            groups: self.memberships.clone(),
            threat_level: self.threat.unwrap_or(0),
            with_signatures,
        }
    }
}

/// Status codes that confirm a symbolic decision.
fn expected_codes(status: GaaStatus) -> &'static [u16] {
    match status {
        GaaStatus::Yes => &[200],
        GaaStatus::No => &[403],
        // MAYBE translates to 401 (credentials could settle it) or 302
        // (a redirect condition is in play).
        GaaStatus::Maybe => &[401, 302],
    }
}

/// Identity scenarios for the GAA801 sweep: anonymous, plus one realized
/// user per distinct `accessid USER` pattern in the deployment (globs are
/// instantiated and checked against the real matcher).
fn identity_scenarios(vars: &VarTable) -> Vec<Option<String>> {
    let mut scenarios = vec![None];
    let mut seen = BTreeSet::new();
    for (cond_type, authority, value) in vars.triples() {
        if cond_type != "accessid" || authority != "USER" || value == "*" {
            continue;
        }
        let realized: String = value
            .chars()
            .map(|c| if c == '*' || c == '?' { 'u' } else { c })
            .collect();
        if !realized.is_empty() && glob_match_ci(value, &realized) && seen.insert(realized.clone())
        {
            scenarios.push(Some(realized));
        }
    }
    scenarios
}

/// A concrete query string guaranteed to trip `matcher`, when one can be
/// synthesized without guessing (glob patterns with interior wildcards are
/// skipped).
fn attack_query(matcher: &Matcher) -> Option<String> {
    match matcher {
        Matcher::UrlGlob(glob) => {
            let inner = glob.trim_matches('*');
            (!inner.is_empty() && !inner.contains('*') && !inner.contains('?'))
                .then(|| inner.to_string())
        }
        Matcher::InputLongerThan(limit) => Some("a".repeat(limit + 1)),
    }
}

struct Auditor<'a> {
    vars: &'a VarTable,
    dag: DecisionDag,
    replay: &'a dyn SiteReplay,
    lints: Vec<Lint>,
    confirmed: usize,
    dropped: usize,
}

impl Auditor<'_> {
    /// Replays one request and returns the observed code when it is among
    /// the expected set; `None` otherwise (caller drops the claim).
    fn observe(&self, request: &ReplayRequest, expect: &[u16]) -> Option<u16> {
        let code = self.replay.replay(request)?;
        expect.contains(&code).then_some(code)
    }

    fn record(&mut self, lint: Option<Lint>) {
        match lint {
            Some(lint) => {
                self.lints.push(lint);
                self.confirmed += 1;
            }
            None => self.dropped += 1,
        }
    }

    /// True when the pair diagram `lo → hi` admits any widening
    /// transition (used only to count unconfirmable candidates).
    fn widening_reachable(&mut self, lo: u32, hi: u32) -> bool {
        let pair = self.dag.pair_decision(lo, hi);
        WIDENINGS.iter().any(|&(from, to)| {
            self.dag
                .witness_transition(pair, self.vars.len(), from, to)
                .is_some()
        })
    }

    /// GAA801: for each identity scenario, slice the environment-restricted
    /// diagram at adjacent threat levels and flag widenings.
    fn check_threat_monotonicity(
        &mut self,
        object: &SiteObject,
        method: &str,
        root: u32,
        scenarios: &[Option<String>],
    ) {
        let mut reported: Vec<(usize, GaaStatus, GaaStatus)> = Vec::new();
        for scenario in scenarios {
            let mut env = Env::anonymous(method, &object.path, None);
            env.user.clone_from(scenario);
            let base = self.dag.restrict(root, &env.restriction(self.vars));
            for level in 0..THREAT_LEVELS.len() - 1 {
                let lo = self
                    .dag
                    .restrict(base, &self.vars.threat_restriction(level));
                let hi = self
                    .dag
                    .restrict(base, &self.vars.threat_restriction(level + 1));
                if lo == hi {
                    continue;
                }
                match (self.dag.constant_status(lo), self.dag.constant_status(hi)) {
                    (Some(from), Some(to)) if WIDENINGS.contains(&(from, to)) => {
                        if reported.contains(&(level, from, to)) {
                            continue;
                        }
                        reported.push((level, from, to));
                        let mut lo_env = env.clone();
                        lo_env.threat = Some(level);
                        let mut hi_env = env.clone();
                        hi_env.threat = Some(level + 1);
                        let observed = self
                            .observe(
                                &lo_env.to_request(ReplayMode::Gaa, false),
                                expected_codes(from),
                            )
                            .zip(self.observe(
                                &hi_env.to_request(ReplayMode::Gaa, false),
                                expected_codes(to),
                            ));
                        self.record(observed.map(|(lo_code, hi_code)| {
                            let severity = if to == GaaStatus::Yes {
                                LintSeverity::Error
                            } else {
                                LintSeverity::Warning
                            };
                            Lint::new(
                                "GAA801",
                                severity,
                                &object.path,
                                format!(
                                    "raising system_threat_level from `{}` to `{}` widens \
                                     `{AUTHORITY} {method}` from {from} to {to} for {} \
                                     (replayed: {lo_code} then {hi_code})",
                                    THREAT_LEVELS[level],
                                    THREAT_LEVELS[level + 1],
                                    env.describe(),
                                ),
                            )
                            .with_pattern(RightPattern::new(AUTHORITY, method))
                        }));
                    }
                    (Some(_), Some(_)) => {} // narrowing: the intended direction
                    _ => {
                        if self.widening_reachable(lo, hi) {
                            self.dropped += 1;
                        }
                    }
                }
            }
        }
    }

    /// GAA802: a blacklisted client must be denied everywhere.
    fn check_blacklist_dominance(&mut self, object: &SiteObject, method: &str, root: u32) {
        let mut env = Env::anonymous(method, &object.path, Some(0));
        env.memberships
            .push((BLACKLIST_GROUP.to_string(), BASELINE_CLIENT_IP.to_string()));
        let restricted = self.dag.restrict(root, &env.restriction(self.vars));
        match self.dag.constant_status(restricted) {
            Some(GaaStatus::Yes) => {
                let observed = self.observe(&env.to_request(ReplayMode::Gaa, false), &[200]);
                self.record(observed.map(|code| {
                    Lint::new(
                        "GAA802",
                        LintSeverity::Warning,
                        &object.path,
                        format!(
                            "blacklisted client (member of `{BLACKLIST_GROUP}`) is still \
                             granted `{AUTHORITY} {method}` (replayed: {code})"
                        ),
                    )
                    .with_pattern(RightPattern::new(AUTHORITY, method))
                }));
            }
            Some(_) => {}
            None => {
                if self
                    .dag
                    .witness_status(restricted, self.vars.len(), GaaStatus::Yes)
                    .is_some()
                {
                    self.dropped += 1;
                }
            }
        }
    }

    /// GAA803: anonymous surface vs the declared allowlist. Returns the
    /// anonymous baseline decision when it is constant, for GAA805 reuse.
    fn check_anonymous_surface(
        &mut self,
        object: &SiteObject,
        root: u32,
        spec: &SiteSpec,
    ) -> Option<GaaStatus> {
        let env = Env::anonymous("GET", &object.path, Some(0));
        let restricted = self.dag.restrict(root, &env.restriction(self.vars));
        let constant = self.dag.constant_status(restricted);
        let allowlisted = spec.allow_anonymous.contains(&object.path);
        match constant {
            Some(GaaStatus::Yes) if !allowlisted => {
                let observed = self.observe(&env.to_request(ReplayMode::Gaa, false), &[200]);
                self.record(observed.map(|code| {
                    Lint::new(
                        "GAA803",
                        LintSeverity::Warning,
                        &object.path,
                        format!(
                            "anonymously reachable with `{AUTHORITY} GET` but not on the \
                             declared allowlist (replayed: {code})"
                        ),
                    )
                    .with_pattern(RightPattern::new(AUTHORITY, "GET"))
                }));
            }
            Some(status) if allowlisted && status != GaaStatus::Yes => {
                let observed = self.observe(
                    &env.to_request(ReplayMode::Gaa, false),
                    expected_codes(status),
                );
                self.record(observed.map(|code| {
                    Lint::new(
                        "GAA803",
                        LintSeverity::Note,
                        &object.path,
                        format!(
                            "allowlisted but not anonymously reachable: `{AUTHORITY} GET` \
                             decides {status} (replayed: {code})"
                        ),
                    )
                }));
            }
            Some(_) => {}
            None => {
                if !allowlisted
                    && self
                        .dag
                        .witness_status(restricted, self.vars.len(), GaaStatus::Yes)
                        .is_some()
                {
                    self.dropped += 1;
                }
            }
        }
        constant
    }

    /// GAA803 (stale entries): allowlist paths matching no object at all.
    fn check_stale_allowlist(&mut self, spec: &SiteSpec) {
        let paths: BTreeSet<&str> = spec.objects.iter().map(|o| o.path.as_str()).collect();
        for entry in &spec.allow_anonymous {
            if paths.contains(entry.as_str()) {
                continue;
            }
            let env = Env::anonymous("GET", entry, Some(0));
            let observed = self.observe(&env.to_request(ReplayMode::Gaa, false), &[404]);
            self.record(observed.map(|code| {
                Lint::new(
                    "GAA803",
                    LintSeverity::Note,
                    entry,
                    format!(
                        "allowlist entry matches no object in the site tree (replayed: {code})"
                    ),
                )
            }));
        }
    }

    /// GAA804: the signature×policy product — attack URLs the policy
    /// would serve although an IDS signature matches them.
    fn check_signature_coverage(&mut self, object: &SiteObject, root: u32, db: &SignatureDb) {
        for signature in db.signatures() {
            let Some(query) = attack_query(&signature.matcher) else {
                continue;
            };
            let url = format!("{}?{query}", object.path);
            let env = Env::anonymous("GET", &url, Some(0));
            // The synthesized request must actually trip the signature —
            // otherwise the candidate proves nothing.
            if !signature.matches(&env.request_line(), query.len()) {
                continue;
            }
            let restricted = self.dag.restrict(root, &env.restriction(self.vars));
            match self.dag.constant_status(restricted) {
                Some(GaaStatus::Yes) => {
                    // Replay with the live scan on: if the deployment
                    // reacts dynamically (threat escalation, blacklisting),
                    // the replay contradicts the static claim and drops it.
                    let observed = self.observe(&env.to_request(ReplayMode::Gaa, true), &[200]);
                    self.record(observed.map(|code| {
                        Lint::new(
                            "GAA804",
                            LintSeverity::Warning,
                            &object.path,
                            format!(
                                "signature `{}` has no screening pre-condition here: policy \
                                 serves attack URL `{url}` (replayed with live signature \
                                 scan: {code})",
                                signature.id
                            ),
                        )
                        .with_pattern(RightPattern::new(AUTHORITY, "GET"))
                    }));
                }
                Some(_) => {} // screened: a pre-condition denies the URL
                None => {
                    if self
                        .dag
                        .witness_status(restricted, self.vars.len(), GaaStatus::Yes)
                        .is_some()
                    {
                        self.dropped += 1;
                    }
                }
            }
        }
    }

    /// GAA805: htaccess chain vs EACL deployment on the anonymous
    /// baseline (only meaningful when both layers are constant).
    fn check_layer_agreement(&mut self, object: &SiteObject, eacl: Option<GaaStatus>) {
        let env = Env::anonymous("GET", &object.path, Some(0));
        let (severity, ht_code, message) = match (object.htaccess, eacl) {
            (HtVerdict::Forbidden, Some(GaaStatus::Yes)) => (
                LintSeverity::Warning,
                403u16,
                "htaccess chain forbids what the EACL deployment grants",
            ),
            (HtVerdict::AuthRequired, Some(GaaStatus::Yes)) => (
                LintSeverity::Warning,
                401,
                "htaccess chain demands credentials the EACL deployment never asks for",
            ),
            (HtVerdict::Allow, Some(GaaStatus::No)) => (
                LintSeverity::Note,
                200,
                "EACL deployment denies what the htaccess chain allows",
            ),
            _ => return,
        };
        let eacl_status = eacl.expect("matched arms carry a constant status");
        let observed = self
            .observe(
                &env.to_request(ReplayMode::Gaa, false),
                expected_codes(eacl_status),
            )
            .zip(self.observe(&env.to_request(ReplayMode::Htaccess, false), &[ht_code]));
        self.record(observed.map(|(gaa_code, ht_observed)| {
            Lint::new(
                "GAA805",
                severity,
                &object.path,
                format!(
                    "{message} (`{AUTHORITY} GET`): layered defenses disagree \
                     (replayed: gaa {gaa_code}, htaccess {ht_observed})"
                ),
            )
            .with_pattern(RightPattern::new(AUTHORITY, "GET"))
        }));
    }
}

/// Audits the whole site: compiles every object × method cell of the
/// deployment through the decision DAG and checks GAA801–GAA805, replaying
/// every finding through `replay` before reporting it.
#[must_use]
pub fn audit_site(
    deployment: &Deployment,
    spec: &SiteSpec,
    snapshot: &RegistrySnapshot,
    db: Option<&SignatureDb>,
    replay: &dyn SiteReplay,
) -> SiteReport {
    let voc = vocabulary(&[deployment], snapshot);
    let vars = VarTable::from_triples(voc.triples.clone());
    let scenarios = identity_scenarios(&vars);
    let blacklist_used = voc
        .triples
        .iter()
        .any(|(t, a, v)| t == "accessid" && a == "GROUP" && v == BLACKLIST_GROUP);
    let mut auditor = Auditor {
        vars: &vars,
        dag: DecisionDag::new(),
        replay,
        lints: Vec::new(),
        confirmed: 0,
        dropped: 0,
    };

    for object in &spec.objects {
        let policy = deployment.compose_for(&object.object);
        for method in METHODS {
            let root = compile_decision(
                &mut auditor.dag,
                &policy,
                &vars,
                AUTHORITY,
                method,
                GaaStatus::No,
            );
            auditor.check_threat_monotonicity(object, method, root, &scenarios);
            if blacklist_used {
                auditor.check_blacklist_dominance(object, method, root);
            }
            if method == "GET" {
                let baseline = auditor.check_anonymous_surface(object, root, spec);
                if object.htaccess != HtVerdict::Open {
                    auditor.check_layer_agreement(object, baseline);
                }
                if let Some(db) = db {
                    auditor.check_signature_coverage(object, root, db);
                }
            }
        }
    }
    auditor.check_stale_allowlist(spec);

    SiteReport {
        lints: auditor.lints,
        objects: spec.objects.len(),
        cells: spec.objects.len() * METHODS.len(),
        confirmed: auditor.confirmed,
        dropped: auditor.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;
    use gaa_audit::{CollectingNotifier, VirtualClock};
    use gaa_conditions::catalog::{register_standard, StandardServices};
    use gaa_core::{GaaApiBuilder, MemoryPolicyStore, Param, SecurityContext};
    use gaa_ids::ThreatLevel;
    use std::sync::Arc;

    fn deployment(system: &str, locals: &[(&str, &str)]) -> Deployment {
        let system = if system.is_empty() {
            Vec::new()
        } else {
            vec![Source::parse("system".to_string(), system).expect("system parses")]
        };
        let locals = locals
            .iter()
            .map(|(name, text)| Source::parse((*name).to_string(), text).expect("local parses"))
            .collect();
        Deployment::new(system, locals)
    }

    fn spec(objects: &[(&str, &str, HtVerdict)], allow: &[&str]) -> SiteSpec {
        SiteSpec {
            objects: objects
                .iter()
                .map(|(path, object, htaccess)| SiteObject {
                    path: (*path).to_string(),
                    object: (*object).to_string(),
                    htaccess: *htaccess,
                })
                .collect(),
            allow_anonymous: allow.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// A replayer backed by the real interpreter stack (`register_standard`
    /// evaluators over real services) — the same semantics the HTTP server
    /// wires up, minus the transport. Gaa mode only; htaccess requests
    /// answer the expected verdict is unreachable (`None`).
    struct ApiReplay {
        deployment: Deployment,
        spec: SiteSpec,
    }

    impl SiteReplay for ApiReplay {
        fn replay(&self, request: &ReplayRequest) -> Option<u16> {
            if request.mode == ReplayMode::Htaccess {
                return None;
            }
            let services = StandardServices::new(
                Arc::new(VirtualClock::new()),
                Arc::new(CollectingNotifier::new()),
            );
            services.threat.set_level(match request.threat_level {
                0 => ThreatLevel::Low,
                1 => ThreatLevel::Medium,
                _ => ThreatLevel::High,
            });
            for (group, member) in &request.groups {
                services.groups.add(group, member);
            }
            let path = request.url.split('?').next().unwrap_or("").to_string();
            // The served tree is exactly the spec's object list: anything
            // else is a vfs miss, as the HTTP server would answer.
            if !self.spec.objects.iter().any(|o| o.path == path) {
                return Some(404);
            }
            let mut store = MemoryPolicyStore::new();
            store.set_system(self.deployment.system_eacls());
            for object in &self.spec.objects {
                store.set_local(&object.path, self.deployment.local_eacls(&object.object));
            }
            let api = register_standard(
                GaaApiBuilder::new(Arc::new(store)).with_clock(services.clock.clone()),
                &services,
            )
            .build();
            let mut ctx = SecurityContext::new()
                .with_client_ip(request.client_ip.clone())
                .with_object(path.clone())
                .with_param(Param::new("url", "apache", request.url.clone()))
                .with_param(Param::new(
                    "request_line",
                    "apache",
                    format!("{} {} HTTP/1.1", request.method, request.url),
                ))
                .with_param(Param::new("method", "apache", request.method.clone()));
            if let Some(user) = &request.user {
                ctx = ctx.with_user(user);
            }
            let policy = api.get_object_policy_info(&path).ok()?;
            let status = api
                .check_authorization(
                    &policy,
                    &RightPattern::new(AUTHORITY, &request.method),
                    &ctx,
                )
                .authorization_status();
            Some(match status {
                GaaStatus::Yes => 200,
                GaaStatus::No => 403,
                GaaStatus::Maybe => 401,
            })
        }
    }

    fn audit(deployment: &Deployment, spec: &SiteSpec, db: Option<&SignatureDb>) -> SiteReport {
        let replay = ApiReplay {
            deployment: deployment.clone(),
            spec: spec.clone(),
        };
        audit_site(deployment, spec, &RegistrySnapshot::standard(), db, &replay)
    }

    fn codes(report: &SiteReport) -> Vec<&'static str> {
        report.lints.iter().map(|l| l.code).collect()
    }

    #[test]
    fn lockdown_inversion_trips_threat_monotonicity() {
        // Granting ONLY at high threat inverts §7.1: raising the level
        // widens access. medium→high must flag NO→YES as an error.
        let d = deployment(
            "",
            &[(
                "/status",
                "pos_access_right apache *\npre_cond system_threat_level local =high\n",
            )],
        );
        let s = spec(&[("/status", "/status", HtVerdict::Open)], &[]);
        let report = audit(&d, &s, None);
        let gaa801: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA801").collect();
        assert_eq!(gaa801.len(), METHODS.len(), "{:?}", codes(&report));
        assert!(gaa801.iter().all(|l| l.severity == LintSeverity::Error));
        assert!(gaa801[0].message.contains("`medium` to `high`"));
        assert!(gaa801[0].message.contains("from NO to YES"));
        assert!(gaa801[0].message.contains("replayed: 403 then 200"));
        assert_eq!(report.confirmed, report.lints.len());
    }

    #[test]
    fn section_71_lockdown_is_monotone_and_clean() {
        // The paper's direction — deny at high — never widens.
        let d = deployment(
            "neg_access_right apache *\npre_cond system_threat_level local =high\n\n\
             pos_access_right apache *\n",
            &[],
        );
        let s = spec(&[("/index", "/index", HtVerdict::Open)], &["/index"]);
        let report = audit(&d, &s, None);
        assert!(!codes(&report).contains(&"GAA801"), "{:?}", codes(&report));
    }

    #[test]
    fn blacklist_gap_flagged_only_where_screen_is_missing() {
        // §7.2: /phf screens BadGuys, /index forgets to — GAA802 fires on
        // /index only.
        let d = deployment(
            "pos_access_right apache *\n",
            &[
                (
                    "/phf",
                    "neg_access_right apache *\npre_cond accessid GROUP BadGuys\n\n\
                     pos_access_right apache *\n",
                ),
                ("/index", "pos_access_right apache *\n"),
            ],
        );
        let s = spec(
            &[
                ("/index", "/index", HtVerdict::Open),
                ("/phf", "/phf", HtVerdict::Open),
            ],
            &["/index", "/phf"],
        );
        let report = audit(&d, &s, None);
        let gaa802: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA802").collect();
        assert!(!gaa802.is_empty());
        assert!(gaa802.iter().all(|l| l.source == "/index"));
    }

    #[test]
    fn anonymous_surface_diffs_against_allowlist() {
        let d = deployment(
            "",
            &[
                ("/open", "pos_access_right apache *\n"),
                (
                    "/secret",
                    "pos_access_right apache *\npre_cond accessid USER admin\n",
                ),
            ],
        );
        let s = spec(
            &[
                ("/open", "/open", HtVerdict::Open),
                ("/secret", "/secret", HtVerdict::Open),
            ],
            &["/secret", "/gone"],
        );
        let report = audit(&d, &s, None);
        let gaa803: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA803").collect();
        // /open: reachable but undeclared (warning). /gone: stale entry
        // matching no object (note, replayed 404). /secret: allowlisted
        // yet anonymous clients only reach MAYBE — a stale declaration
        // (note, replayed 401).
        assert!(gaa803
            .iter()
            .any(|l| l.source == "/open" && l.severity == LintSeverity::Warning));
        assert!(gaa803
            .iter()
            .any(|l| l.source == "/gone" && l.severity == LintSeverity::Note));
        assert!(gaa803.iter().any(|l| l.source == "/secret"
            && l.severity == LintSeverity::Note
            && l.message.contains("MAYBE")));
    }

    #[test]
    fn signature_product_finds_the_nimda_gap() {
        // /cover screens phf-style URLs; /index serves everything — the
        // signature×policy product must flag /index for every
        // synthesizable signature and keep /cover's screened ones quiet.
        let d = deployment(
            "",
            &[
                ("/index", "pos_access_right apache *\n"),
                (
                    "/cover",
                    "neg_access_right apache *\npre_cond regex gnu *phf* *test-cgi*\n\n\
                     pos_access_right apache *\n",
                ),
            ],
        );
        let s = spec(
            &[
                ("/index", "/index", HtVerdict::Open),
                ("/cover", "/cover", HtVerdict::Open),
            ],
            &["/index", "/cover"],
        );
        let db = SignatureDb::with_defaults();
        let report = audit(&d, &s, Some(&db));
        let gaa804: Vec<_> = report.lints.iter().filter(|l| l.code == "GAA804").collect();
        assert!(gaa804
            .iter()
            .any(|l| l.source == "/index" && l.message.contains("sig.phf")));
        assert!(!gaa804
            .iter()
            .any(|l| l.source == "/cover" && l.message.contains("sig.phf")));
        // The uncovered signatures still fire on /cover (e.g. traversal).
        assert!(gaa804
            .iter()
            .any(|l| l.source == "/cover" && l.message.contains("sig.traversal")));
    }

    #[test]
    fn unconfirmable_claims_are_dropped_and_counted() {
        // The grant hinges on a time window the environment cannot pin:
        // the anonymous surface is not constant, so nothing may be
        // reported — but the reachable widening must be counted.
        let d = deployment(
            "",
            &[(
                "/timed",
                "pos_access_right apache *\npre_cond time_window local 09:00-17:00\n",
            )],
        );
        let s = spec(&[("/timed", "/timed", HtVerdict::Open)], &[]);
        let report = audit(&d, &s, None);
        assert!(codes(&report).is_empty(), "{:?}", codes(&report));
        assert!(report.dropped > 0);
    }

    #[test]
    fn layer_disagreement_requires_a_real_htaccess_replay() {
        // The htaccess side of a GAA805 claim must be confirmed by a
        // htaccess-mode replay; ApiReplay cannot serve one, so the claim
        // drops rather than reports — zero false claims even when the
        // replayer is partial.
        let d = deployment("", &[("/report", "pos_access_right apache *\n")]);
        let s = spec(
            &[("/report", "/report", HtVerdict::Forbidden)],
            &["/report"],
        );
        let report = audit(&d, &s, None);
        assert!(!codes(&report).contains(&"GAA805"));
        assert!(report.dropped > 0);
    }

    /// Satellite cross-validation: the DAG threat model restricted to each
    /// enumerated level must agree with the real interpreter evaluating
    /// the same policy with the threat monitor set to that level.
    #[test]
    fn threat_slices_agree_with_interpreter_at_every_level() {
        let d = deployment(
            "neg_access_right apache *\npre_cond system_threat_level local =high\n\n\
             pos_access_right apache *\n",
            &[(
                "/page",
                "pos_access_right apache GET\npre_cond system_threat_level local <high\n",
            )],
        );
        let s = spec(&[("/page", "/page", HtVerdict::Open)], &["/page"]);
        let replay = ApiReplay {
            deployment: d.clone(),
            spec: s.clone(),
        };
        let voc = vocabulary(&[&d], &RegistrySnapshot::standard());
        let vars = VarTable::from_triples(voc.triples.clone());
        let mut dag = DecisionDag::new();
        let policy = d.compose_for("/page");
        let root = compile_decision(&mut dag, &policy, &vars, AUTHORITY, "GET", GaaStatus::No);
        let env = Env::anonymous("GET", "/page", None);
        let base = dag.restrict(root, &env.restriction(&vars));
        for (level, level_name) in THREAT_LEVELS.iter().enumerate() {
            let slice = dag.restrict(base, &vars.threat_restriction(level));
            let symbolic = dag
                .constant_status(slice)
                .expect("threat pins every condition in this policy");
            let request = ReplayRequest {
                mode: ReplayMode::Gaa,
                method: "GET".to_string(),
                url: "/page".to_string(),
                client_ip: BASELINE_CLIENT_IP.to_string(),
                user: None,
                groups: Vec::new(),
                threat_level: level,
                with_signatures: false,
            };
            let code = replay.replay(&request).expect("interpreter replays");
            assert_eq!(
                expected_codes(symbolic),
                expected_codes(match code {
                    200 => GaaStatus::Yes,
                    403 => GaaStatus::No,
                    _ => GaaStatus::Maybe,
                }),
                "level {level} ({level_name}): DAG says {symbolic}, interpreter answered {code}",
            );
        }
    }

    #[test]
    fn stats_counters_cover_every_replayed_finding() {
        let d = deployment("", &[("/open", "pos_access_right apache *\n")]);
        let s = spec(&[("/open", "/open", HtVerdict::Open)], &[]);
        let report = audit(&d, &s, None);
        assert_eq!(report.objects, 1);
        assert_eq!(report.cells, 3);
        assert_eq!(report.confirmed, report.lints.len());
        let stats = report.stats();
        assert_eq!(stats[0], ("objects", 1));
        assert_eq!(stats[2].0, "confirmed");
    }
}
