//! Registry snapshots: the analyzer's knowledge of which condition
//! evaluators a deployment registers.

use gaa_core::ConditionRegistry;
use std::collections::BTreeSet;

/// An immutable snapshot of the `(condition type, authority)` pairs that
/// have a registered evaluation routine.
///
/// The MAYBE-surface pass compares every policy condition against this to
/// predict which will be left unevaluated (and therefore `MAYBE`) at
/// request time. Lookup mirrors [`ConditionRegistry`]: an exact
/// `(type, authority)` hit, then a `(type, "*")` wildcard-authority
/// fallback.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    keys: BTreeSet<(String, String)>,
}

impl RegistrySnapshot {
    /// A snapshot from explicit `(type, authority)` keys.
    pub fn from_keys<I, T, A>(keys: I) -> Self
    where
        I: IntoIterator<Item = (T, A)>,
        T: Into<String>,
        A: Into<String>,
    {
        RegistrySnapshot {
            keys: keys
                .into_iter()
                .map(|(t, a)| (t.into(), a.into()))
                .collect(),
        }
    }

    /// A snapshot of a live registry (what the running server actually has).
    pub fn from_registry(registry: &ConditionRegistry) -> Self {
        RegistrySnapshot::from_keys(registry.registered_keys())
    }

    /// The standard catalog snapshot — exactly what
    /// [`gaa_conditions::register_standard`] installs.
    pub fn standard() -> Self {
        RegistrySnapshot::from_keys(gaa_conditions::standard_registered_keys())
    }

    /// Whether `(cond_type, authority)` resolves to an evaluator (exact or
    /// wildcard-authority).
    pub fn is_registered(&self, cond_type: &str, authority: &str) -> bool {
        self.keys
            .contains(&(cond_type.to_string(), authority.to_string()))
            || self
                .keys
                .contains(&(cond_type.to_string(), "*".to_string()))
    }

    /// Whether any authority is registered for `cond_type`.
    pub fn has_type(&self, cond_type: &str) -> bool {
        self.keys.iter().any(|(t, _)| t == cond_type)
    }

    /// All registered condition type names, deduplicated, sorted.
    pub fn types(&self) -> Vec<&str> {
        let mut types: Vec<&str> = self.keys.iter().map(|(t, _)| t.as_str()).collect();
        types.dedup();
        types
    }

    /// The authorities registered for `cond_type`, sorted.
    pub fn authorities_for(&self, cond_type: &str) -> Vec<&str> {
        self.keys
            .iter()
            .filter(|(t, _)| t == cond_type)
            .map(|(_, a)| a.as_str())
            .collect()
    }

    /// All `(type, authority)` keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = (&str, &str)> {
        self.keys.iter().map(|(t, a)| (t.as_str(), a.as_str()))
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_snapshot_matches_catalog() {
        let snapshot = RegistrySnapshot::standard();
        assert!(snapshot.is_registered("regex", "gnu"));
        assert!(snapshot.is_registered("accessid", "GROUP"));
        assert!(!snapshot.is_registered("redirect", "local"));
        assert!(!snapshot.is_registered("regex", "local"));
        assert_eq!(
            snapshot.authorities_for("accessid"),
            vec!["GROUP", "HOST", "USER"]
        );
    }

    #[test]
    fn wildcard_authority_falls_back() {
        let snapshot = RegistrySnapshot::from_keys([("custom", "*"), ("exact", "local")]);
        assert!(snapshot.is_registered("custom", "anything"));
        assert!(snapshot.is_registered("exact", "local"));
        assert!(!snapshot.is_registered("exact", "other"));
        assert!(snapshot.has_type("custom"));
        assert!(!snapshot.has_type("missing"));
        assert_eq!(snapshot.len(), 2);
        assert!(!snapshot.is_empty());
    }
}
