//! Named policy sources: the unit the analyzer consumes.

use gaa_eacl::{parse_eacl_list_spanned, CondPhase, Eacl, EaclSpans, ParseEaclError, Span};

/// A named list of EACLs, optionally with source-text spans.
///
/// A source corresponds to one policy artifact: the system-wide policy file
/// (conventionally named `"system"`), or one object's local policy (named by
/// the object path, e.g. `"/cgi-bin/phf"`). Names matter: the redirect-loop
/// pass resolves redirect targets against local source names, and the load
/// gate reports rejections per source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Source {
    /// Source name (`"system"`, an object path, or a file name).
    pub name: String,
    /// The EACLs, in evaluation order.
    pub eacls: Vec<Eacl>,
    /// Per-EACL span tables, parallel to `eacls` — empty when the policies
    /// were built programmatically rather than parsed from text.
    pub spans: Vec<EaclSpans>,
}

impl Source {
    /// Parses `text` as an EACL list, keeping spans for lint locations.
    ///
    /// # Errors
    ///
    /// Returns the parser's located error on malformed input.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, ParseEaclError> {
        let spanned = parse_eacl_list_spanned(text)?;
        let mut eacls = Vec::with_capacity(spanned.len());
        let mut spans = Vec::with_capacity(spanned.len());
        for s in spanned {
            eacls.push(s.eacl);
            spans.push(s.spans);
        }
        Ok(Source {
            name: name.into(),
            eacls,
            spans,
        })
    }

    /// Wraps already-parsed EACLs (no span information).
    pub fn from_eacls(name: impl Into<String>, eacls: Vec<Eacl>) -> Self {
        Source {
            name: name.into(),
            eacls,
            spans: Vec::new(),
        }
    }

    /// The span of entry `entry` (its access-right line) in EACL `eacl`,
    /// when known.
    pub fn entry_span(&self, eacl: usize, entry: usize) -> Option<Span> {
        self.spans
            .get(eacl)
            .and_then(|s| s.entries.get(entry))
            .map(|e| e.right)
    }

    /// The span of condition `index` in the `phase` block of the given
    /// entry, when known.
    pub fn condition_span(
        &self,
        eacl: usize,
        entry: usize,
        phase: CondPhase,
        index: usize,
    ) -> Option<Span> {
        self.spans
            .get(eacl)
            .and_then(|s| s.entries.get(entry))
            .and_then(|e| e.condition(phase, index))
    }

    /// Total number of entries across all EACLs in this source.
    pub fn entry_count(&self) -> usize {
        self.eacls.iter().map(|e| e.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsed_source_keeps_spans() {
        let text = "eacl_mode narrow\nneg_access_right apache *\npre_cond regex gnu *phf*\n";
        let source = Source::parse("system", text).unwrap();
        assert_eq!(source.eacls.len(), 1);
        assert_eq!(source.spans.len(), 1);
        let span = source.entry_span(0, 0).unwrap();
        assert_eq!(&text[span.start..span.end], "neg_access_right apache *");
        let cond = source.condition_span(0, 0, CondPhase::Pre, 0).unwrap();
        assert_eq!(&text[cond.start..cond.end], "pre_cond regex gnu *phf*");
        assert_eq!(source.entry_count(), 1);
    }

    #[test]
    fn programmatic_source_has_no_spans() {
        let source = Source::from_eacls("/x", vec![Eacl::new()]);
        assert!(source.spans.is_empty());
        assert_eq!(source.entry_span(0, 0), None);
    }
}
