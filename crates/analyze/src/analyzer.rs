//! Deployment-level analysis orchestration.

use crate::lint::Lint;
use crate::passes;
use crate::snapshot::RegistrySnapshot;
use crate::source::Source;
use gaa_eacl::{CompositionMode, PolicyLayer};

/// The composition mode a deployment's system policies resolve to: the
/// first system EACL that declares one wins, else the `narrow` default —
/// exactly the rule [`gaa_eacl::ComposedPolicy::compose`] applies at
/// request time.
pub fn resolved_mode(system: &[Source]) -> CompositionMode {
    passes::resolved_mode(system)
}

/// The whole-deployment static analyzer.
///
/// Feed it the system-wide policy sources and the per-object local sources
/// and it reports [`Lint`]s across five passes:
///
/// 1. **syntax** — [`gaa_eacl::validate`] findings folded in per EACL
///    (`GAA101`/`GAA103`/`GAA104`);
/// 2. **shadowing** — entries unreachable under ordered first-match
///    evaluation (`GAA201`), including the composition-aware cross-layer
///    variants (`GAA202`–`GAA204`);
/// 3. **MAYBE surface** — conditions no registered evaluator will ever
///    resolve (`GAA301`), and likely typos of registered names (`GAA302`);
/// 4. **redirect loops** — adaptive-redirection chains between the
///    analyzed objects that cycle (`GAA303`);
/// 5. **completeness** — request-space gaps that silently fall through to
///    the default deny (`GAA401`).
///
/// ```rust
/// use gaa_analyze::{Analyzer, Source};
///
/// let system = Source::parse("system", "eacl_mode stop\npos_access_right apache GET\n")?;
/// let local = Source::parse("/obj", "neg_access_right apache GET\n")?;
/// let lints = Analyzer::new().analyze(&[system], &[local]);
/// // The local deny is dead under `stop` composition.
/// assert!(lints.iter().any(|l| l.code == "GAA202"));
/// # Ok::<(), gaa_eacl::ParseEaclError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    snapshot: Option<RegistrySnapshot>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// An analyzer assuming the standard condition catalog
    /// ([`RegistrySnapshot::standard`]) is registered.
    pub fn new() -> Self {
        Analyzer {
            snapshot: Some(RegistrySnapshot::standard()),
        }
    }

    /// An analyzer checking against an explicit registry snapshot.
    pub fn with_snapshot(snapshot: RegistrySnapshot) -> Self {
        Analyzer {
            snapshot: Some(snapshot),
        }
    }

    /// An analyzer with no registry knowledge: the MAYBE-surface pass
    /// (`GAA301`/`GAA302`) is skipped entirely rather than flagging every
    /// condition.
    pub fn without_registry() -> Self {
        Analyzer { snapshot: None }
    }

    /// The snapshot this analyzer checks conditions against, if any.
    pub fn snapshot(&self) -> Option<&RegistrySnapshot> {
        self.snapshot.as_ref()
    }

    /// Runs the per-source passes (syntax, shadowing, MAYBE surface) on one
    /// source in isolation — what the policy-store load gate uses, since it
    /// sees one artifact at a time.
    pub fn analyze_source(&self, source: &Source, layer: PolicyLayer) -> Vec<Lint> {
        let mut lints = self.source_passes(source, layer, 0);
        if layer == PolicyLayer::Local {
            // A self-loop redirect needs no second source to be wrong.
            lints.extend(passes::redirect_lints(std::slice::from_ref(source)));
        }
        lints
    }

    /// Runs every pass over a whole deployment: system sources plus one
    /// source per object's local policy. Lints come back grouped by pass
    /// (syntax and per-source findings first, then cross-layer, redirect,
    /// and completeness findings).
    pub fn analyze(&self, system: &[Source], locals: &[Source]) -> Vec<Lint> {
        let mut lints = Vec::new();
        let mut base = 0usize;
        for source in system {
            lints.extend(self.source_passes(source, PolicyLayer::System, base));
            base += source.eacls.len();
        }
        let mut base = 0usize;
        for source in locals {
            lints.extend(self.source_passes(source, PolicyLayer::Local, base));
            base += source.eacls.len();
        }
        lints.extend(passes::cross_layer_lints(system, locals));
        lints.extend(passes::redirect_lints(locals));
        lints.extend(passes::completeness_lints(
            system,
            locals,
            passes::resolved_mode(system),
        ));
        lints
    }

    fn source_passes(&self, source: &Source, layer: PolicyLayer, base: usize) -> Vec<Lint> {
        let mut lints = passes::syntax_lints(source, layer, base);
        lints.extend(passes::shadow_lints(source, layer, base));
        if let Some(snapshot) = &self.snapshot {
            lints.extend(passes::surface_lints(source, layer, base, snapshot));
        }
        lints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_eacl::PolicyLayer;

    fn src(name: &str, text: &str) -> Source {
        Source::parse(name, text).unwrap()
    }

    #[test]
    fn clean_deployment_has_no_lints() {
        let system = src(
            "system",
            "eacl_mode narrow\n\
             neg_access_right apache *\n\
             pre_cond system_threat_level local =high\n\
             pos_access_right apache *\n",
        );
        let local = src(
            "/index.html",
            "pos_access_right apache *\npre_cond accessid GROUP staff\n",
        );
        let lints = Analyzer::new().analyze(&[system], &[local]);
        assert!(lints.is_empty(), "unexpected lints: {lints:?}");
    }

    #[test]
    fn shadowed_deny_is_an_error_with_location() {
        let local = src("/x", "pos_access_right * *\nneg_access_right apache GET\n");
        let lints = Analyzer::new().analyze_source(&local, PolicyLayer::Local);
        let shadow = lints.iter().find(|l| l.code == "GAA201").unwrap();
        assert_eq!(shadow.severity, crate::LintSeverity::Error);
        assert_eq!(shadow.entry, Some(1));
        assert_eq!(shadow.span.unwrap().line, 2);
    }

    #[test]
    fn stop_mode_marks_locals_dead() {
        let system = src("system", "eacl_mode stop\npos_access_right apache *\n");
        let local = src("/x", "neg_access_right apache *\n");
        let lints = Analyzer::new().analyze(&[system], &[local]);
        assert!(lints.iter().any(|l| l.code == "GAA202"));
        // The dead deny is not also reported as narrowed/expanded away.
        assert!(!lints
            .iter()
            .any(|l| l.code == "GAA203" || l.code == "GAA204"));
    }

    #[test]
    fn narrow_unconditional_system_deny_voids_local_grants() {
        let system = src("system", "eacl_mode narrow\nneg_access_right apache *\n");
        let local = src("/x", "pos_access_right apache GET\n");
        let lints = Analyzer::new().analyze(&[system], &[local]);
        let lint = lints.iter().find(|l| l.code == "GAA203").unwrap();
        let pattern = lint.pattern.as_ref().unwrap();
        assert_eq!(pattern.authority, "apache");
        assert_eq!(pattern.value, "GET");
    }

    #[test]
    fn expand_unconditional_system_grant_voids_local_denies() {
        let system = src("system", "eacl_mode expand\npos_access_right apache *\n");
        let local = src("/x", "neg_access_right apache GET\n");
        let lints = Analyzer::new().analyze(&[system], &[local]);
        assert!(lints.iter().any(|l| l.code == "GAA204"));
    }

    #[test]
    fn expand_grant_with_competing_system_eacl_is_not_flagged() {
        // A second system EACL matching the same rights can still contribute
        // NO/MAYBE, so the local deny is not provably ineffective.
        let mut system = src("system", "eacl_mode expand\npos_access_right apache *\n");
        let second = src(
            "system2",
            "neg_access_right apache *\npre_cond system_threat_level local =high\n",
        );
        system.eacls.extend(second.eacls);
        system.spans.extend(second.spans);
        let local = src("/x", "neg_access_right apache GET\n");
        let lints = Analyzer::new().analyze(&[system], &[local]);
        assert!(!lints.iter().any(|l| l.code == "GAA204"));
    }

    #[test]
    fn completeness_gap_reports_deployment_pattern() {
        let system = src("system", "eacl_mode narrow\npos_access_right apache GET\n");
        let local = src("/x", "pos_access_right sshd login\n");
        let lints = Analyzer::new().analyze(&[system], &[local]);
        // (apache, login), (sshd, GET) and both «other» buckets are gaps.
        let gaps: Vec<_> = lints.iter().filter(|l| l.code == "GAA401").collect();
        assert_eq!(gaps.len(), 4);
        assert!(gaps.iter().all(|l| l.source == "deployment"));
    }

    #[test]
    fn without_registry_skips_surface_pass() {
        let local = src(
            "/x",
            "pos_access_right apache *\npre_cond nonsense local 1\n",
        );
        let with = Analyzer::new().analyze_source(&local, PolicyLayer::Local);
        let without = Analyzer::without_registry().analyze_source(&local, PolicyLayer::Local);
        assert!(with.iter().any(|l| l.code == "GAA301"));
        assert!(!without.iter().any(|l| l.code.starts_with("GAA30")));
    }

    #[test]
    fn typo_gets_a_suggestion() {
        let local = src(
            "/x",
            "pos_access_right apache *\npre_cond acessid USER alice\n",
        );
        let lints = Analyzer::new().analyze_source(&local, PolicyLayer::Local);
        let typo = lints.iter().find(|l| l.code == "GAA302").unwrap();
        assert!(typo.suggestion.as_ref().unwrap().contains("accessid"));
    }

    #[test]
    fn redirect_self_loop_found_in_single_source() {
        let local = src(
            "/obj",
            "pos_access_right apache *\npre_cond redirect local http://replica.example.org/obj\n",
        );
        let lints = Analyzer::new().analyze_source(&local, PolicyLayer::Local);
        assert!(lints.iter().any(|l| l.code == "GAA303"));
    }

    #[test]
    fn local_eacl_indexes_are_layer_global() {
        let a = src("/a", "pos_access_right apache *\n");
        let b = src("/b", "pos_access_right * *\npos_access_right apache GET\n");
        let lints = Analyzer::new().analyze(&[], &[a, b]);
        let shadow = lints.iter().find(|l| l.code == "GAA201").unwrap();
        // /b's first (and only) EACL is index 1 in the layer-wide list.
        assert_eq!(shadow.eacl, Some(1));
        assert_eq!(shadow.source, "/b");
    }
}
