//! # gaa-analyze — composition-aware static analysis for EACL deployments
//!
//! The paper (§2) calls for "an automated tool to ensure policy correctness
//! and consistency" and leaves it to future work. `gaa-eacl`'s
//! [`validate`](gaa_eacl::validate) module covers the per-EACL syntax tier;
//! this crate is the rest of that tool: a **whole-deployment** analyzer
//! that understands the §2.1 composition modes (`expand` / `narrow` /
//! `stop`), the runtime's first-match + guard-fall-through entry selection,
//! and the registered condition catalog.
//!
//! ## Pieces
//!
//! * [`Analyzer`] — runs the passes over named [`Source`]s and returns
//!   [`Lint`]s with stable `GAA0xx` codes (catalog on [`Lint`]);
//! * [`RegistrySnapshot`] — the condition-evaluator vocabulary the
//!   MAYBE-surface pass checks against;
//! * [`render_human`] / [`render_json`] — report renderers (the JSON one is
//!   hand-written; the workspace carries no `serde_json`);
//! * [`differential_check`] — replays every reachability lint against a
//!   real `gaa-core` evaluator over enumerated request/condition spaces;
//! * [`lint_gate`] — the [`gaa_core::GatedPolicyStore`] callback that makes
//!   the server refuse to load Error-level policies;
//! * [`symbolic`] — the decision-DAG tier: [`diff_deployments`] /
//!   [`diff_lints`] (`gaa-lint diff`, GAA5xx codes), [`check_invariants`]
//!   (`*.inv` assertions), [`diff_gate`] (hot-reload update vetting) and
//!   [`cross_validate`] (compiler soundness vs the interpreter);
//! * [`code`] — the one tier that lints *Rust source* rather than policies:
//!   concurrency-hygiene rules (`GAA6xx`) over the serving core, run as
//!   `gaa-lint code`;
//! * [`patterns`] — the pattern-set tier (`GAA7xx`): subsumption, dead
//!   patterns, case-dialect gaps, percent-encoding bypasses, and measured
//!   matcher-cost amplification over the deployment's `regex` condition
//!   values and the signature database, every claim replayed through the
//!   real matchers before it is reported (`gaa-lint patterns`);
//! * the `gaa-lint` binary — the command-line front end.
//!
//! ## Example
//!
//! ```rust
//! use gaa_analyze::{Analyzer, Source};
//!
//! # fn main() -> Result<(), gaa_eacl::ParseEaclError> {
//! let system = Source::parse("system", "eacl_mode narrow\nneg_access_right apache *\n")?;
//! let local = Source::parse("/index.html", "pos_access_right apache GET\n")?;
//! let lints = Analyzer::new().analyze(&[system], &[local]);
//! // The unconditional system-wide deny voids the local grant under `narrow`.
//! assert!(lints.iter().any(|l| l.code == "GAA203"));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod analyzer;
pub mod code;
mod differential;
mod gate;
mod lint;
mod passes;
pub mod patterns;
mod render;
pub mod site;
pub mod slice;
mod snapshot;
mod source;
pub mod symbolic;

pub use analyzer::{resolved_mode, Analyzer};
pub use differential::{
    differential_check, DifferentialReport, CROSS_CHECK_ASSIGNMENTS, EXHAUSTIVE_LIMIT,
    SAMPLED_ASSIGNMENTS,
};
pub use gate::lint_gate;
pub use lint::{max_severity, Lint, LintSeverity, OTHER_VALUE};
pub use patterns::{lint_patterns, PatternReport};
pub use render::{render_human, render_json, render_json_with, summary, JSON_SCHEMA_VERSION};
pub use site::{
    audit_site, HtVerdict, ReplayMode, ReplayRequest, SiteObject, SiteReplay, SiteReport, SiteSpec,
    BASELINE_CLIENT_IP, BLACKLIST_GROUP,
};
pub use slice::{
    analyze_slices, cross_validate_slices, SliceCrossValidation, SliceOptions, SliceReport,
};
pub use snapshot::RegistrySnapshot;
pub use source::Source;
pub use symbolic::{
    check_invariants, cross_validate, diff_deployments, diff_gate, diff_lints, parse_invariants,
    region_code, violation_lints, CrossValidationReport, Deployment, DeploymentDiff, DiffRegion,
    Invariant, InvariantViolation, Witness,
};
