//! The policy-store load gate: refuse to serve defective policies.
//!
//! [`gaa_core::GatedPolicyStore`] takes an opaque callback so `gaa-core`
//! never depends on this crate; [`lint_gate`] is the canonical callback —
//! it runs the per-source passes (syntax, shadowing, MAYBE surface, local
//! redirect self-loops) on every artifact the store hands out and vetoes
//! those at or above a severity threshold.

use crate::analyzer::Analyzer;
use crate::lint::{max_severity, LintSeverity};
use crate::source::Source;
use gaa_core::PolicyGate;
use gaa_eacl::{Eacl, PolicyLayer};
use std::sync::Arc;

/// Builds a [`PolicyGate`] that lints each policy source as it is loaded.
///
/// By convention (shared with [`gaa_core::GatedPolicyStore`]) the system
/// layer is gated under the source name `"system"`; any other name is an
/// object's local policy. `deny_warnings` lowers the veto threshold from
/// [`LintSeverity::Error`] to [`LintSeverity::Warning`].
///
/// Only the per-source passes run here — the gate sees one artifact at a
/// time, so deployment-wide findings (cross-layer shadowing, completeness)
/// belong to `gaa-lint` / [`Analyzer::analyze`], not the load path.
pub fn lint_gate(analyzer: Analyzer, deny_warnings: bool) -> PolicyGate {
    let threshold = if deny_warnings {
        LintSeverity::Warning
    } else {
        LintSeverity::Error
    };
    Arc::new(move |source_name: &str, eacls: &[Eacl]| {
        let layer = if source_name == "system" {
            PolicyLayer::System
        } else {
            PolicyLayer::Local
        };
        let source = Source::from_eacls(source_name, eacls.to_vec());
        let lints = analyzer.analyze_source(&source, layer);
        match max_severity(&lints) {
            Some(worst) if worst >= threshold => {
                let shown: Vec<String> = lints
                    .iter()
                    .filter(|l| l.severity >= threshold)
                    .map(|l| format!("{}: {}", l.code, l.message))
                    .collect();
                Err(shown.join("; "))
            }
            _ => Ok(()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_core::{GatedPolicyStore, MemoryPolicyStore, PolicyError, PolicyStore};
    use gaa_eacl::parse_eacl;
    use std::sync::Arc;

    fn store_with(local: &str) -> MemoryPolicyStore {
        let mut store = MemoryPolicyStore::new();
        store.set_local("/x", vec![parse_eacl(local).unwrap()]);
        store
    }

    #[test]
    fn gate_passes_clean_policies() {
        let store = store_with("pos_access_right apache *\npre_cond accessid USER alice\n");
        let gated = GatedPolicyStore::new(Arc::new(store), lint_gate(Analyzer::new(), false));
        assert_eq!(gated.local_policies("/x").unwrap().len(), 1);
    }

    #[test]
    fn gate_rejects_error_lints_with_codes() {
        // A shadowed deny is a GAA201 error.
        let store = store_with("pos_access_right * *\nneg_access_right apache GET\n");
        let gated = GatedPolicyStore::new(Arc::new(store), lint_gate(Analyzer::new(), false));
        let err = gated.local_policies("/x").unwrap_err();
        match err {
            PolicyError::Rejected {
                source_name,
                reason,
            } => {
                assert_eq!(source_name, "/x");
                assert!(reason.contains("GAA201"), "reason: {reason}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn deny_warnings_lowers_the_threshold() {
        // An unregistered (but not typo'd) condition is only a warning.
        let store = store_with("pos_access_right apache *\npre_cond nonsense local 1\n");
        let lenient = GatedPolicyStore::new(
            Arc::new(store_with(
                "pos_access_right apache *\npre_cond nonsense local 1\n",
            )),
            lint_gate(Analyzer::new(), false),
        );
        assert!(lenient.local_policies("/x").is_ok());
        let strict = GatedPolicyStore::new(Arc::new(store), lint_gate(Analyzer::new(), true));
        let err = strict.local_policies("/x").unwrap_err();
        assert!(matches!(err, PolicyError::Rejected { .. }));
    }
}
