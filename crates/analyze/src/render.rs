//! Human-readable and JSON renderers for lint reports.
//!
//! The JSON encoder is hand-written: the workspace's vendored `serde` is
//! derive-only (no `serde_json`), and the output here is a flat,
//! fully-known shape.

use crate::lint::{max_severity, Lint, LintSeverity};
use gaa_eacl::PolicyLayer;
use std::fmt::Write as _;

/// Renders one lint per line (via [`Lint`]'s `Display`) plus a trailing
/// summary line, e.g. `policy check: 2 errors, 3 warnings`.
pub fn render_human(lints: &[Lint]) -> String {
    let mut out = String::new();
    for lint in lints {
        let _ = writeln!(out, "{lint}");
    }
    let _ = writeln!(out, "policy check: {}", summary(lints));
    out
}

/// The one-line totals summary, e.g. `1 error, 2 warnings` or `clean`.
pub fn summary(lints: &[Lint]) -> String {
    if lints.is_empty() {
        return "clean".to_string();
    }
    let count = |s: LintSeverity| lints.iter().filter(|l| l.severity == s).count();
    let mut parts = Vec::new();
    for (n, singular) in [
        (count(LintSeverity::Error), "error"),
        (count(LintSeverity::Warning), "warning"),
        (count(LintSeverity::Note), "note"),
    ] {
        if n > 0 {
            parts.push(format!("{n} {singular}{}", if n == 1 { "" } else { "s" }));
        }
    }
    parts.join(", ")
}

/// Renders the report as a JSON document:
///
/// ```json
/// {"max_severity": "error", "lints": [{"code": "GAA201", ...}]}
/// ```
///
/// Absent optional fields render as `null`; spans expand to `line`,
/// `start`, `end`.
pub fn render_json(lints: &[Lint]) -> String {
    let mut out = String::from("{\"max_severity\":");
    match max_severity(lints) {
        Some(s) => {
            out.push('"');
            let _ = write!(out, "{s}");
            out.push('"');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"lints\":[");
    for (i, lint) in lints.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_lint(&mut out, lint);
    }
    out.push_str("]}");
    out
}

fn encode_lint(out: &mut String, lint: &Lint) {
    out.push('{');
    field_str(out, "code", Some(lint.code));
    out.push(',');
    field_str(out, "severity", Some(&lint.severity.to_string()));
    out.push(',');
    field_str(out, "source", Some(&lint.source));
    out.push(',');
    field_str(
        out,
        "layer",
        lint.layer.map(|l| match l {
            PolicyLayer::System => "system",
            PolicyLayer::Local => "local",
        }),
    );
    out.push(',');
    field_num(out, "eacl", lint.eacl);
    out.push(',');
    field_num(out, "entry", lint.entry);
    out.push(',');
    field_num(out, "line", lint.span.map(|s| s.line));
    out.push(',');
    field_num(out, "start", lint.span.map(|s| s.start));
    out.push(',');
    field_num(out, "end", lint.span.map(|s| s.end));
    out.push_str(",\"pattern\":");
    match &lint.pattern {
        Some(p) => {
            out.push('{');
            field_str(out, "authority", Some(&p.authority));
            out.push(',');
            field_str(out, "value", Some(&p.value));
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push(',');
    field_str(out, "message", Some(&lint.message));
    out.push(',');
    field_str(out, "suggestion", lint.suggestion.as_deref());
    out.push('}');
}

fn field_str(out: &mut String, key: &str, value: Option<&str>) {
    let _ = write!(out, "\"{key}\":");
    match value {
        Some(v) => {
            out.push('"');
            escape_into(out, v);
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

fn field_num(out: &mut String, key: &str, value: Option<usize>) {
    match value {
        Some(v) => {
            let _ = write!(out, "\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, "\"{key}\":null");
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_eacl::RightPattern;

    fn sample() -> Vec<Lint> {
        vec![
            Lint::new(
                "GAA401",
                LintSeverity::Warning,
                "deployment",
                "no entry matches rights `sshd login`".into(),
            )
            .with_pattern(RightPattern::new("sshd", "login")),
            Lint::new(
                "GAA302",
                LintSeverity::Error,
                "/x",
                "unknown condition type `acessid` — \"quoted\"".into(),
            )
            .with_suggestion("did you mean `accessid`?".into()),
        ]
    }

    #[test]
    fn human_report_has_summary_line() {
        let report = render_human(&sample());
        assert!(report.contains("warning[GAA401]: deployment:"));
        assert!(report.ends_with("policy check: 1 error, 1 warning\n"));
        assert_eq!(render_human(&[]), "policy check: clean\n");
    }

    #[test]
    fn json_escapes_and_nulls() {
        let json = render_json(&sample());
        assert!(json.starts_with("{\"max_severity\":\"error\","));
        assert!(json.contains("\"pattern\":{\"authority\":\"sshd\",\"value\":\"login\"}"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"layer\":null"));
        assert!(json.contains("\"suggestion\":\"did you mean `accessid`?\""));
        assert_eq!(render_json(&[]), "{\"max_severity\":null,\"lints\":[]}");
    }
}
