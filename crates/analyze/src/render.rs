//! Human-readable and JSON renderers for lint reports.
//!
//! The JSON encoder is hand-written: the workspace's vendored `serde` is
//! derive-only (no `serde_json`), and the output here is a flat,
//! fully-known shape.

use crate::lint::{max_severity, Lint, LintSeverity};
use gaa_eacl::PolicyLayer;
use std::fmt::Write as _;

/// Renders one lint per line (via [`Lint`]'s `Display`) plus a trailing
/// summary line, e.g. `policy check: 2 errors, 3 warnings`.
pub fn render_human(lints: &[Lint]) -> String {
    let mut out = String::new();
    for lint in lints {
        let _ = writeln!(out, "{lint}");
    }
    let _ = writeln!(out, "policy check: {}", summary(lints));
    out
}

/// The one-line totals summary, e.g. `1 error, 2 warnings` or `clean`.
pub fn summary(lints: &[Lint]) -> String {
    if lints.is_empty() {
        return "clean".to_string();
    }
    let count = |s: LintSeverity| lints.iter().filter(|l| l.severity == s).count();
    let mut parts = Vec::new();
    for (n, singular) in [
        (count(LintSeverity::Error), "error"),
        (count(LintSeverity::Warning), "warning"),
        (count(LintSeverity::Note), "note"),
    ] {
        if n > 0 {
            parts.push(format!("{n} {singular}{}", if n == 1 { "" } else { "s" }));
        }
    }
    parts.join(", ")
}

/// Version of the JSON report shape emitted by [`render_json`]. Bumped on
/// any incompatible change so scripted consumers can pin what they parse.
/// Version 2 added the `GAA70x` pattern-tier codes to the code vocabulary
/// (`gaa-lint patterns --json`); the field shape is unchanged, but
/// consumers keying on an exhaustive code list must update. Version 3
/// added the `GAA8xx` site-tier codes, the optional top-level `stats`
/// object ([`render_json_with`]), and the `gaa-lint all` tier envelope.
/// Version 4 added the `GAA9xx` slice-tier codes (`gaa-lint slice --json`
/// and its row in the `all` envelope); the field shape is unchanged.
pub const JSON_SCHEMA_VERSION: usize = 4;

/// Renders the report as a JSON document:
///
/// ```json
/// {"schema_version": 2, "max_severity": "error", "lints": [{"code": "GAA201", ...}]}
/// ```
///
/// The output is deterministic and machine-stable: findings are sorted by
/// `(source, span position, code)` regardless of pass emission order, keys
/// appear in a fixed order, and the document is tagged with
/// [`JSON_SCHEMA_VERSION`]. Absent optional fields render as `null`; spans
/// expand to `line`, `start`, `end`.
pub fn render_json(lints: &[Lint]) -> String {
    render_json_with(lints, &[])
}

/// [`render_json`] plus a `stats` object of named counters (emitted after
/// `max_severity`, before `lints`, in the order given). The site tier uses
/// this to surface its replay bookkeeping — objects audited, request cells
/// compiled, findings confirmed, unconfirmed claims dropped — in `--json`.
/// An empty `stats` slice omits the object entirely, so the version-2
/// document shape is a strict subset.
pub fn render_json_with(lints: &[Lint], stats: &[(&str, usize)]) -> String {
    let mut sorted: Vec<&Lint> = lints.iter().collect();
    sorted.sort_by(|a, b| {
        let span_key = |l: &Lint| match l.span {
            // Spanless findings (whole-deployment, programmatic sources)
            // sort after located ones within their source.
            Some(s) => (0usize, s.line, s.start),
            None => (1usize, 0, 0),
        };
        a.source
            .cmp(&b.source)
            .then_with(|| span_key(a).cmp(&span_key(b)))
            .then_with(|| a.code.cmp(b.code))
    });
    let mut out = String::new();
    let _ = write!(out, "{{\"schema_version\":{JSON_SCHEMA_VERSION},");
    out.push_str("\"max_severity\":");
    match max_severity(lints) {
        Some(s) => {
            out.push('"');
            let _ = write!(out, "{s}");
            out.push('"');
        }
        None => out.push_str("null"),
    }
    if !stats.is_empty() {
        out.push_str(",\"stats\":{");
        for (i, (key, value)) in stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{value}");
        }
        out.push('}');
    }
    out.push_str(",\"lints\":[");
    for (i, lint) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_lint(&mut out, lint);
    }
    out.push_str("]}");
    out
}

fn encode_lint(out: &mut String, lint: &Lint) {
    out.push('{');
    field_str(out, "code", Some(lint.code));
    out.push(',');
    field_str(out, "severity", Some(&lint.severity.to_string()));
    out.push(',');
    field_str(out, "source", Some(&lint.source));
    out.push(',');
    field_str(
        out,
        "layer",
        lint.layer.map(|l| match l {
            PolicyLayer::System => "system",
            PolicyLayer::Local => "local",
        }),
    );
    out.push(',');
    field_num(out, "eacl", lint.eacl);
    out.push(',');
    field_num(out, "entry", lint.entry);
    out.push(',');
    field_num(out, "line", lint.span.map(|s| s.line));
    out.push(',');
    field_num(out, "start", lint.span.map(|s| s.start));
    out.push(',');
    field_num(out, "end", lint.span.map(|s| s.end));
    out.push_str(",\"pattern\":");
    match &lint.pattern {
        Some(p) => {
            out.push('{');
            field_str(out, "authority", Some(&p.authority));
            out.push(',');
            field_str(out, "value", Some(&p.value));
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push(',');
    field_str(out, "message", Some(&lint.message));
    out.push(',');
    field_str(out, "suggestion", lint.suggestion.as_deref());
    out.push('}');
}

fn field_str(out: &mut String, key: &str, value: Option<&str>) {
    let _ = write!(out, "\"{key}\":");
    match value {
        Some(v) => {
            out.push('"');
            escape_into(out, v);
            out.push('"');
        }
        None => out.push_str("null"),
    }
}

fn field_num(out: &mut String, key: &str, value: Option<usize>) {
    match value {
        Some(v) => {
            let _ = write!(out, "\"{key}\":{v}");
        }
        None => {
            let _ = write!(out, "\"{key}\":null");
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_eacl::RightPattern;

    fn sample() -> Vec<Lint> {
        vec![
            Lint::new(
                "GAA401",
                LintSeverity::Warning,
                "deployment",
                "no entry matches rights `sshd login`".into(),
            )
            .with_pattern(RightPattern::new("sshd", "login")),
            Lint::new(
                "GAA302",
                LintSeverity::Error,
                "/x",
                "unknown condition type `acessid` — \"quoted\"".into(),
            )
            .with_suggestion("did you mean `accessid`?".into()),
        ]
    }

    #[test]
    fn human_report_has_summary_line() {
        let report = render_human(&sample());
        assert!(report.contains("warning[GAA401]: deployment:"));
        assert!(report.ends_with("policy check: 1 error, 1 warning\n"));
        assert_eq!(render_human(&[]), "policy check: clean\n");
    }

    #[test]
    fn json_escapes_and_nulls() {
        let json = render_json(&sample());
        assert!(json.starts_with("{\"schema_version\":4,\"max_severity\":\"error\","));
        assert!(json.contains("\"pattern\":{\"authority\":\"sshd\",\"value\":\"login\"}"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"layer\":null"));
        assert!(json.contains("\"suggestion\":\"did you mean `accessid`?\""));
        assert_eq!(
            render_json(&[]),
            "{\"schema_version\":4,\"max_severity\":null,\"lints\":[]}"
        );
    }

    #[test]
    fn json_stats_object_preserves_order_and_is_omitted_when_empty() {
        let json = render_json_with(&[], &[("objects", 3), ("dropped", 0)]);
        assert_eq!(
            json,
            "{\"schema_version\":4,\"max_severity\":null,\
             \"stats\":{\"objects\":3,\"dropped\":0},\"lints\":[]}"
        );
        assert_eq!(render_json_with(&[], &[]), render_json(&[]));
    }

    #[test]
    fn json_output_is_sorted_and_emission_order_independent() {
        use gaa_eacl::Span;
        let span = |line, start| Span {
            line,
            start,
            end: start + 1,
        };
        let lints = vec![
            Lint::new("GAA401", LintSeverity::Warning, "deployment", "gap".into()),
            Lint::new("GAA302", LintSeverity::Error, "/b", "typo".into()).at(
                PolicyLayer::Local,
                0,
                Some(0),
                Some(span(9, 80)),
            ),
            Lint::new("GAA201", LintSeverity::Warning, "/b", "shadowed".into()).at(
                PolicyLayer::Local,
                0,
                Some(1),
                Some(span(2, 10)),
            ),
            Lint::new("GAA101", LintSeverity::Warning, "/a", "empty".into()),
        ];
        let json = render_json(&lints);
        let mut reversed = lints.clone();
        reversed.reverse();
        assert_eq!(json, render_json(&reversed));
        let pos = |code: &str| json.find(code).unwrap_or_else(|| panic!("{code} missing"));
        // Sorted by source, then span position (spanless last), then code.
        assert!(pos("GAA101") < pos("GAA201"));
        assert!(pos("GAA201") < pos("GAA302"));
        assert!(pos("GAA302") < pos("GAA401"));
    }
}
