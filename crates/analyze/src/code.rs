//! `GAA6xx`: static source-code lints for the concurrent serving core.
//!
//! The symbolic tiers (`GAA1xx`–`GAA5xx`) verify *policies*; this tier
//! verifies the *implementation* hygiene rules that the `gaa-race` model
//! checker relies on, so CI catches regressions before any schedule is
//! explored:
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | `GAA601` | error | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` on the request path — a malformed request must never kill a worker |
//! | `GAA602` | error | raw `std::sync`/`parking_lot` primitive in a shim-migrated file — the model checker cannot schedule what it cannot see |
//! | `GAA603` | warning | an `Err` match arm in the front end / glue whose body neither audits, degrades, propagates, nor exits — silently swallowed failure |
//! | `GAA604` | warning | an `Ordering::` use without a nearby `// ordering:` rationale comment — every memory-ordering choice must be argued |
//!
//! The rules are deliberately line-based heuristics (no syntax tree, no
//! new dependencies): precise enough to hold the current codebase at zero
//! findings, honest enough to be suppressible where they misfire — a
//! `// gaa-lint: allow(GAA6xx)` comment on the offending line or the line
//! directly above silences one finding. Test modules (everything from the
//! first `#[cfg(test)]` onward) are exempt.
//!
//! File scope is part of the rule definitions below: `GAA601` guards the
//! request path, `GAA602`/`GAA604` guard the files migrated onto
//! `gaa_race::sync`, `GAA603` guards the error funnels in `tcp.rs` and
//! `glue.rs`.

use crate::lint::{Lint, LintSeverity};
use std::path::{Path, PathBuf};

/// Files forming the request path: a panic here turns one bad request
/// into a dead worker (a DoS primitive), so all failures must be `Result`s.
const REQUEST_PATH_FILES: &[&str] = &[
    "crates/httpd/src/tcp.rs",
    "crates/httpd/src/reactor.rs",
    "crates/httpd/src/timer.rs",
    "crates/httpd/src/glue.rs",
    "crates/httpd/src/server.rs",
    "crates/core/src/cache.rs",
];

/// Files migrated onto the `gaa_race::sync` shim: raw primitives here are
/// invisible to the model checker (and to the race detector's
/// happens-before analysis).
const SHIM_MIGRATED_FILES: &[&str] = &[
    "crates/core/src/cache.rs",
    "crates/ids/src/threat.rs",
    "crates/audit/src/degrade.rs",
    "crates/audit/src/notify.rs",
    "crates/audit/src/export.rs",
    "crates/conditions/src/identity.rs",
    "crates/conditions/src/regex.rs",
    "crates/conditions/src/multipattern.rs",
    "crates/ids/src/matcher.rs",
    "crates/ids/src/signatures.rs",
    "crates/httpd/src/tcp.rs",
    "crates/httpd/src/reactor.rs",
    "crates/httpd/src/timer.rs",
    "crates/swarm/src/node.rs",
    "crates/swarm/src/transport.rs",
];

/// Files whose `Err` arms must reach the audit/degradation funnel.
const ERR_AUDIT_FILES: &[&str] = &[
    "crates/httpd/src/tcp.rs",
    "crates/httpd/src/reactor.rs",
    "crates/httpd/src/glue.rs",
];

/// How many lines after an `Err(` arm may contain its handling.
const ERR_WINDOW: usize = 10;

/// `std::sync` names that are fine in migrated files: ownership and
/// channel types carry no scheduling decisions, and `Ordering` is the
/// *argument* to the shim's atomics.
const ALLOWED_SYNC_TOKENS: &[&str] = &["Arc", "Weak", "mpsc", "Ordering", "OnceLock", "LazyLock"];

/// Lints one source file's text. `relative` is the workspace-relative
/// path (used both for rule scoping and as the finding's source label).
pub fn lint_code(relative: &str, text: &str) -> Vec<Lint> {
    let mut lints = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let request_path = REQUEST_PATH_FILES.contains(&relative);
    let migrated = SHIM_MIGRATED_FILES.contains(&relative);
    let err_audited = ERR_AUDIT_FILES.contains(&relative);

    for (index, raw) in lines.iter().enumerate() {
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break; // test modules are exempt from all GAA6xx rules
        }
        let line = strip_comment(raw);
        let code_text = line.trim();
        if code_text.is_empty() {
            continue;
        }
        let allowed = |code: &str| is_allowed(&lines, index, code);
        let lineno = index + 1;

        if request_path && !allowed("GAA601") {
            for needle in [".unwrap(", ".expect(", "panic!(", "unreachable!(", "todo!("] {
                if code_text.contains(needle) {
                    lints.push(code_lint(
                        "GAA601",
                        LintSeverity::Error,
                        relative,
                        format!(
                            "{relative}:{lineno}: `{}` on the request path — one malformed \
                             request must not kill a worker; return a Result and let the \
                             front end answer 4xx/5xx",
                            needle.trim_matches(['.', '('])
                        ),
                    ));
                }
            }
        }

        if migrated && !allowed("GAA602") {
            if code_text.contains("parking_lot") {
                lints.push(code_lint(
                    "GAA602",
                    LintSeverity::Error,
                    relative,
                    format!(
                        "{relative}:{lineno}: raw `parking_lot` primitive in a shim-migrated \
                         file — use `gaa_race::sync` so the model checker can schedule it"
                    ),
                ));
            } else if code_text.contains("std::sync") && has_forbidden_sync_token(code_text) {
                lints.push(code_lint(
                    "GAA602",
                    LintSeverity::Error,
                    relative,
                    format!(
                        "{relative}:{lineno}: raw `std::sync` primitive in a shim-migrated \
                         file — use `gaa_race::sync` so the model checker can schedule it"
                    ),
                ));
            }
        }

        if err_audited
            && !allowed("GAA603")
            && code_text.contains("Err(")
            && code_text.contains("=>")
            && !err_arm_is_handled(&lines, index)
        {
            lints.push(code_lint(
                "GAA603",
                LintSeverity::Warning,
                relative,
                format!(
                    "{relative}:{lineno}: `Err` arm neither audits, degrades, propagates, \
                     nor exits within {ERR_WINDOW} lines — failures on this path must \
                     reach the audit/degradation funnel"
                ),
            ));
        }

        if migrated
            && !allowed("GAA604")
            && code_text.contains("Ordering::")
            && !has_ordering_rationale(&lines, index)
        {
            lints.push(code_lint(
                "GAA604",
                LintSeverity::Warning,
                relative,
                format!(
                    "{relative}:{lineno}: `Ordering::` use without a nearby `// ordering:` \
                     comment — state the required ordering and why it is the weakest \
                     correct one"
                ),
            ));
        }
    }
    lints
}

/// Lints every scoped file under `root` (the workspace checkout). Missing
/// files are themselves findings: the rule tables must track the tree.
pub fn lint_workspace_code(root: &Path) -> Vec<Lint> {
    let mut all: Vec<&str> = REQUEST_PATH_FILES
        .iter()
        .chain(SHIM_MIGRATED_FILES)
        .chain(ERR_AUDIT_FILES)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    let mut lints = Vec::new();
    for relative in all {
        let path: PathBuf = root.join(relative);
        match std::fs::read_to_string(&path) {
            Ok(text) => lints.extend(lint_code(relative, &text)),
            Err(e) => lints.push(code_lint(
                "GAA602",
                LintSeverity::Error,
                relative,
                format!("{relative}: scoped file unreadable ({e}) — fix the GAA6xx rule tables"),
            )),
        }
    }
    lints
}

fn code_lint(code: &'static str, severity: LintSeverity, source: &str, message: String) -> Lint {
    Lint::new(code, severity, source, message)
}

/// Strips a trailing `//` comment (good enough: string literals containing
/// `//` are rare in this codebase and only risk false *negatives*).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(at) => &line[..at],
        None => line,
    }
}

fn is_allowed(lines: &[&str], index: usize, code: &str) -> bool {
    let marker = "gaa-lint: allow(";
    for probe in [Some(index), index.checked_sub(1)].into_iter().flatten() {
        if let Some(at) = lines[probe].find(marker) {
            let rest = &lines[probe][at + marker.len()..];
            if let Some(end) = rest.find(')') {
                if rest[..end].split(',').any(|c| c.trim() == code) {
                    return true;
                }
            }
        }
    }
    false
}

fn has_forbidden_sync_token(line: &str) -> bool {
    for token in ["Mutex", "RwLock", "Condvar", "Barrier"] {
        if line.contains(token) {
            return true;
        }
    }
    // Atomic types (`AtomicU64`, …) but not the lowercase `atomic` module
    // path itself — importing `std::sync::atomic::Ordering` is allowed.
    if line.contains("Atomic") {
        return true;
    }
    // A bare module import (`use std::sync::atomic;`) smuggles everything.
    let mentions_allowed = ALLOWED_SYNC_TOKENS.iter().any(|t| line.contains(t));
    !mentions_allowed
}

/// An `Err` arm counts as handled when its window reaches the audit or
/// degradation funnel, propagates the error, or exits the loop/function —
/// or when it is a single-line classification arm (`Err(_) => value,`)
/// whose meaning the surrounding `match` assigns.
fn err_arm_is_handled(lines: &[&str], index: usize) -> bool {
    let first = strip_comment(lines[index]);
    // Single-line expression arm: the error is mapped to a value.
    if !first.contains('{') && first.trim_end().ends_with(',') {
        return true;
    }
    let end = (index + ERR_WINDOW).min(lines.len());
    lines[index..end].iter().any(|line| {
        let line = strip_comment(line);
        [
            "audit", "degrad", "record", "rejected", "note_", "break", "return", "?;",
        ]
        .iter()
        .any(|token| line.contains(token))
    })
}

/// Looks for a `// ordering:` rationale on the same line or above it,
/// scanning upward through comment blocks and at most six code lines (a
/// multi-line statement, or one comment covering a short run of loads).
fn has_ordering_rationale(lines: &[&str], index: usize) -> bool {
    let mut code_lines = 0;
    let mut i = index;
    loop {
        if lines[i].contains("// ordering:") || lines[i].contains("//! ordering:") {
            return true;
        }
        if i == 0 {
            return false;
        }
        i -= 1;
        if !lines[i].trim_start().starts_with("//") {
            code_lines += 1;
            if code_lines > 6 {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQUEST_FILE: &str = "crates/httpd/src/tcp.rs";
    const MIGRATED_ONLY: &str = "crates/ids/src/threat.rs";

    #[test]
    fn unwrap_on_request_path_is_gaa601() {
        let lints = lint_code(REQUEST_FILE, "fn f() { x.unwrap(); }\n");
        assert!(lints.iter().any(|l| l.code == "GAA601"), "{lints:?}");
        // Same text outside the request path is fine.
        assert!(lint_code("crates/eacl/src/parse.rs", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn raw_sync_in_migrated_file_is_gaa602() {
        for bad in [
            "use parking_lot::Mutex;",
            "use std::sync::Mutex;",
            "use std::sync::atomic::{AtomicU64, Ordering};",
            "use std::sync::atomic;",
        ] {
            let lints = lint_code(MIGRATED_ONLY, bad);
            assert!(
                lints.iter().any(|l| l.code == "GAA602"),
                "`{bad}` must be flagged: {lints:?}"
            );
        }
        for good in [
            "use std::sync::Arc;",
            "use std::sync::atomic::Ordering;",
            "use std::sync::mpsc::sync_channel;",
            "use gaa_race::sync::Mutex;",
        ] {
            assert!(
                lint_code(MIGRATED_ONLY, good).is_empty(),
                "`{good}` must pass"
            );
        }
    }

    #[test]
    fn swallowed_err_arm_is_gaa603_and_funnel_reaching_arms_pass() {
        let swallowed =
            "match r {\n    Err(e) => {\n        let x = 1;\n        let _ = x;\n    }\n}\n";
        let lints = lint_code(REQUEST_FILE, swallowed);
        assert!(lints.iter().any(|l| l.code == "GAA603"), "{lints:?}");
        let audited = "match r {\n    Err(e) => {\n        audit.record(e);\n    }\n}\n";
        assert!(lint_code(REQUEST_FILE, audited).is_empty());
        let classification = "let ok = match r {\n    Err(_) => true,\n};\n";
        assert!(lint_code(REQUEST_FILE, classification).is_empty());
    }

    #[test]
    fn undocumented_ordering_is_gaa604() {
        let bare = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }";
        // gaa-lint's own fixture: suppress the GAA602 the type name trips.
        let text = format!("// gaa-lint: allow(GAA602)\n{bare}");
        let lints = lint_code(MIGRATED_ONLY, &text);
        assert!(lints.iter().any(|l| l.code == "GAA604"), "{lints:?}");
        let documented =
            format!("// gaa-lint: allow(GAA602)\n// ordering: Relaxed — statistic.\n{bare}");
        assert!(lint_code(MIGRATED_ONLY, &documented).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_test_modules_are_exempt() {
        let allowed = "x.unwrap(); // gaa-lint: allow(GAA601)\n";
        assert!(lint_code(REQUEST_FILE, allowed).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(lint_code(REQUEST_FILE, in_tests).is_empty());
    }

    /// The real workspace holds at zero findings — this is the same check
    /// `gaa-lint code` runs in CI, enforced here so `cargo test` alone
    /// catches regressions.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let lints = lint_workspace_code(&root);
        assert!(
            lints.is_empty(),
            "GAA6xx findings in the workspace:\n{}",
            lints
                .iter()
                .map(|l| format!("{} [{}] {}", l.code, l.severity, l.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
