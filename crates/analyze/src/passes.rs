//! The analysis passes: syntax fold, shadowing/reachability, MAYBE surface,
//! redirect loops, and completeness.
//!
//! Every pass is a pure function from sources to [`Lint`]s. Soundness of the
//! reachability claims rests on one assumption, which the differential
//! harness (see [`crate::differential`]) re-validates against the real
//! evaluator: **condition evaluation is deterministic within a request** —
//! two occurrences of the same `(type, authority, value)` triple evaluate
//! identically while one request is decided.

use crate::lint::{Lint, LintSeverity, OTHER_VALUE};
use crate::snapshot::RegistrySnapshot;
use crate::source::Source;
use gaa_core::REDIRECT_COND_TYPE;
use gaa_eacl::validate::{validate_spanned, FindingKind, Severity};
use gaa_eacl::{
    AccessRight, CompositionMode, CondPhase, Eacl, EaclEntry, Polarity, PolicyLayer, RightPattern,
    SpannedEacl,
};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// `outer` matches every `(authority, value)` pair `inner` matches.
pub(crate) fn covers(outer: &AccessRight, inner: &AccessRight) -> bool {
    token_covers(&outer.authority, &inner.authority) && token_covers(&outer.value, &inner.value)
}

fn token_covers(outer: &str, inner: &str) -> bool {
    outer == "*" || outer == inner
}

/// Some concrete right matches both patterns.
pub(crate) fn intersects(a: &AccessRight, b: &AccessRight) -> bool {
    token_intersects(&a.authority, &b.authority) && token_intersects(&a.value, &b.value)
}

fn token_intersects(x: &str, y: &str) -> bool {
    x == "*" || y == "*" || x == y
}

/// Every pre-condition of `earlier` also appears in `later` — so whenever
/// `earlier`'s guard fails (some condition NOT met), `later`'s guard fails
/// too, and whenever `earlier`'s guard passes, `earlier` applied first.
fn pre_subset(earlier: &EaclEntry, later: &EaclEntry) -> bool {
    earlier.pre.iter().all(|c| later.pre.contains(c))
}

// ---- syntax tier (folded from gaa-eacl's per-EACL validator) ----

/// Folds [`gaa_eacl::validate`] findings into lints, skipping
/// [`FindingKind::Unreachable`] (superseded by the more precise `GAA201`).
pub(crate) fn syntax_lints(source: &Source, layer: PolicyLayer, eacl_base: usize) -> Vec<Lint> {
    let mut lints = Vec::new();
    for (li, eacl) in source.eacls.iter().enumerate() {
        let findings = match source.spans.get(li) {
            Some(spans) => validate_spanned(&SpannedEacl {
                eacl: eacl.clone(),
                spans: spans.clone(),
            }),
            None => gaa_eacl::validate::validate(eacl),
        };
        for finding in findings {
            if finding.kind == FindingKind::Unreachable {
                continue;
            }
            let severity = match finding.severity {
                Severity::Warning => LintSeverity::Warning,
                Severity::Error => LintSeverity::Error,
            };
            lints.push(
                Lint::new(finding.kind.code(), severity, &source.name, finding.message).at(
                    layer,
                    eacl_base + li,
                    finding.entry,
                    finding.span,
                ),
            );
        }
    }
    lints
}

// ---- shadowing / reachability within one EACL (GAA201) ----

/// Dead entries under ordered first-match evaluation: entry `j` can never
/// apply when an earlier entry `i` has a subsuming right pattern and a
/// pre-condition subset. For every request matching `j`, either `i` applied
/// first, or `i`'s guard failed on a condition `j`'s guard shares.
pub(crate) fn shadow_lints(source: &Source, layer: PolicyLayer, eacl_base: usize) -> Vec<Lint> {
    let mut lints = Vec::new();
    for (li, eacl) in source.eacls.iter().enumerate() {
        for j in 1..eacl.entries.len() {
            let later = &eacl.entries[j];
            let Some((i, earlier)) = eacl.entries[..j]
                .iter()
                .enumerate()
                .find(|(_, e)| covers(&e.right, &later.right) && pre_subset(e, later))
            else {
                continue;
            };
            let (severity, consequence) = if earlier.right.polarity == later.right.polarity {
                (LintSeverity::Warning, "the entry is redundant")
            } else if later.right.polarity == Polarity::Negative {
                (
                    LintSeverity::Error,
                    "the deny it expresses is silently lost",
                )
            } else {
                (
                    LintSeverity::Error,
                    "the grant it expresses is silently lost",
                )
            };
            lints.push(
                Lint::new(
                    "GAA201",
                    severity,
                    &source.name,
                    format!(
                        "entry {j} (`{}`) can never apply: entry {i} (`{}`) matches every \
                         right it matches and its pre-conditions are a subset — first match \
                         wins, so {consequence}",
                        later.right, earlier.right
                    ),
                )
                .at(layer, eacl_base + li, Some(j), source.entry_span(li, j)),
            );
        }
    }
    lints
}

// ---- cross-layer reachability after composition (GAA202/203/204) ----

/// The composition mode the runtime will resolve: the first system EACL
/// declaring one, else the `Narrow` default (mirrors
/// [`gaa_eacl::ComposedPolicy::compose`]).
pub(crate) fn resolved_mode(system: &[Source]) -> CompositionMode {
    system
        .iter()
        .flat_map(|s| s.eacls.iter())
        .find_map(|e| e.mode)
        .unwrap_or(CompositionMode::Narrow)
}

/// An entry whose guard can never fail: an empty pre-block evaluates to
/// `YES` unconditionally.
fn always_applies(entry: &EaclEntry) -> bool {
    entry.pre.is_empty()
}

/// No entry before `index` in `eacl` could apply to a request matching
/// `target` — so for those requests, entry `index` is the first match.
fn first_match_for(eacl: &Eacl, index: usize, target: &AccessRight) -> bool {
    !eacl.entries[..index]
        .iter()
        .any(|e| intersects(&e.right, target))
}

/// Cross-layer lints over the composed deployment. `system` and `locals`
/// are the pre-composition lists — under `stop` the runtime drops locals at
/// compose time, which is exactly what `GAA202` reports.
pub(crate) fn cross_layer_lints(system: &[Source], locals: &[Source]) -> Vec<Lint> {
    let mode = resolved_mode(system);
    let mut lints = Vec::new();

    if mode == CompositionMode::Stop {
        let mut local_base = 0usize;
        for source in locals {
            if source.entry_count() > 0 {
                lints.push(
                    Lint::new(
                        "GAA202",
                        LintSeverity::Warning,
                        &source.name,
                        "local policy is dead: the system-wide policy declares composition \
                         mode `stop`, which discards local policies at composition time"
                            .to_string(),
                    )
                    .at(
                        PolicyLayer::Local,
                        local_base,
                        Some(0),
                        source.entry_span(0, 0),
                    ),
                );
            }
            local_base += source.eacls.len();
        }
        return lints;
    }

    // Flatten the system layer once, keeping global EACL indexes.
    let system_eacls: Vec<&Eacl> = system.iter().flat_map(|s| s.eacls.iter()).collect();

    let mut local_base = 0usize;
    for source in locals {
        for (li, eacl) in source.eacls.iter().enumerate() {
            'entries: for (lj, local_entry) in eacl.entries.iter().enumerate() {
                for (si, sys_eacl) in system_eacls.iter().enumerate() {
                    for (se, sys_entry) in sys_eacl.entries.iter().enumerate() {
                        if !always_applies(sys_entry)
                            || !covers(&sys_entry.right, &local_entry.right)
                            || !first_match_for(sys_eacl, se, &local_entry.right)
                        {
                            continue;
                        }
                        let lint = match (mode, sys_entry.right.polarity, local_entry) {
                            // Narrow: an unconditional system deny absorbs
                            // everything — the final status is NO for every
                            // request this local entry matches.
                            (CompositionMode::Narrow, Polarity::Negative, _) => Some((
                                "GAA203",
                                format!(
                                    "local entry {lj} (`{}`) is ineffective: system entry \
                                     {se} of system EACL {si} (`{}`) unconditionally denies \
                                     every right it matches under `narrow` composition \
                                     (its request-result actions still fire)",
                                    local_entry.right, sys_entry.right
                                ),
                            )),
                            // Expand: an unconditional system grant wins the
                            // disjunction — but only if no other system EACL
                            // can contribute a non-YES for these requests.
                            (CompositionMode::Expand, Polarity::Positive, l)
                                if l.right.polarity == Polarity::Negative
                                    && !system_eacls.iter().enumerate().any(|(oi, other)| {
                                        oi != si
                                            && other
                                                .entries
                                                .iter()
                                                .any(|e| intersects(&e.right, &local_entry.right))
                                    }) =>
                            {
                                Some((
                                    "GAA204",
                                    format!(
                                        "local entry {lj} (`{}`) never affects the decision: \
                                         system entry {se} of system EACL {si} (`{}`) \
                                         unconditionally grants every right it matches under \
                                         `expand` composition (its request-result actions \
                                         still fire)",
                                        local_entry.right, sys_entry.right
                                    ),
                                ))
                            }
                            _ => None,
                        };
                        if let Some((code, message)) = lint {
                            lints.push(
                                Lint::new(code, LintSeverity::Warning, &source.name, message)
                                    .at(
                                        PolicyLayer::Local,
                                        local_base + li,
                                        Some(lj),
                                        source.entry_span(li, lj),
                                    )
                                    .with_pattern(RightPattern::new(
                                        local_entry.right.authority.clone(),
                                        local_entry.right.value.clone(),
                                    )),
                            );
                            continue 'entries;
                        }
                    }
                }
            }
        }
        local_base += source.eacls.len();
    }
    lints
}

// ---- MAYBE surface (GAA301/302) ----

/// Classic Levenshtein distance (small strings only).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut current = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let substitution = prev[j] + usize::from(ca != cb);
            current.push(substitution.min(prev[j + 1] + 1).min(current[j] + 1));
        }
        prev = current;
    }
    prev[b.len()]
}

/// The closest candidate within edit distance 2, if any.
fn closest<'a>(target: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .filter(|c| *c != target)
        .map(|c| (edit_distance(target, c), c))
        .filter(|(d, _)| *d <= 2)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// Conditions with no registered evaluator: they will be left unevaluated
/// and surface as `MAYBE` at request time. A near-miss against the registry
/// (edit distance ≤ 2) upgrades to a typo error (`GAA302`); the `redirect`
/// type is exempt — it is resolved by the server's answer-code path, never
/// by the registry.
pub(crate) fn surface_lints(
    source: &Source,
    layer: PolicyLayer,
    eacl_base: usize,
    snapshot: &RegistrySnapshot,
) -> Vec<Lint> {
    let mut lints = Vec::new();
    for (li, eacl) in source.eacls.iter().enumerate() {
        for (ei, entry) in eacl.entries.iter().enumerate() {
            for phase in CondPhase::all() {
                for (ci, cond) in entry.block(phase).iter().enumerate() {
                    if cond.cond_type == REDIRECT_COND_TYPE
                        || snapshot.is_registered(&cond.cond_type, &cond.authority)
                    {
                        continue;
                    }
                    let span = source.condition_span(li, ei, phase, ci);
                    let location = (layer, eacl_base + li, Some(ei), span);
                    let lint = if snapshot.has_type(&cond.cond_type) {
                        // Right type, wrong authority.
                        let authorities = snapshot.authorities_for(&cond.cond_type);
                        match closest(&cond.authority, authorities.iter().copied()) {
                            Some(fix) => Lint::new(
                                "GAA302",
                                LintSeverity::Error,
                                &source.name,
                                format!(
                                    "condition `{} {}` names an unregistered authority",
                                    cond.cond_type, cond.authority
                                ),
                            )
                            .with_suggestion(format!("did you mean authority `{fix}`?")),
                            None => Lint::new(
                                "GAA301",
                                LintSeverity::Warning,
                                &source.name,
                                format!(
                                    "no evaluator registered for `{} {}`; the condition will \
                                     evaluate to MAYBE at request time (registered \
                                     authorities for `{}`: {})",
                                    cond.cond_type,
                                    cond.authority,
                                    cond.cond_type,
                                    authorities.join(", ")
                                ),
                            ),
                        }
                    } else {
                        match closest(&cond.cond_type, snapshot.types().into_iter()) {
                            Some(fix) => Lint::new(
                                "GAA302",
                                LintSeverity::Error,
                                &source.name,
                                format!(
                                    "unknown condition type `{}` in {} block",
                                    cond.cond_type,
                                    phase.keyword()
                                ),
                            )
                            .with_suggestion(format!("did you mean `{fix}`?")),
                            None => Lint::new(
                                "GAA301",
                                LintSeverity::Warning,
                                &source.name,
                                format!(
                                    "no evaluator registered for `{} {}`; the condition will \
                                     evaluate to MAYBE at request time ({} block)",
                                    cond.cond_type,
                                    cond.authority,
                                    phase.keyword()
                                ),
                            ),
                        }
                    };
                    let (layer, eacl_idx, entry_idx, span) = location;
                    lints.push(lint.at(layer, eacl_idx, entry_idx, span));
                }
            }
        }
    }
    lints
}

// ---- redirect loops (GAA303) ----

/// Extracts the object path from a redirect target: for a URL the path
/// component (`http://replica/obj` → `/obj`), otherwise the value verbatim.
pub(crate) fn redirect_target_path(value: &str) -> String {
    match value.find("://") {
        Some(scheme_end) => {
            let rest = &value[scheme_end + 3..];
            match rest.find('/') {
                Some(slash) => rest[slash..].to_string(),
                None => "/".to_string(),
            }
        }
        None => value.to_string(),
    }
}

/// Redirect chains between the analyzed objects that can never resolve
/// because they loop. Edges outside the analyzed set (external replicas)
/// are ignored — only targets naming another analyzed source count.
pub(crate) fn redirect_lints(locals: &[Source]) -> Vec<Lint> {
    let names: BTreeSet<&str> = locals.iter().map(|s| s.name.as_str()).collect();
    // Adjacency plus one lint anchor per edge.
    let mut edges: Vec<(String, String, Lint)> = Vec::new();
    let mut adjacency: HashMap<&str, Vec<String>> = HashMap::new();
    let mut local_base = 0usize;
    for source in locals {
        for (li, eacl) in source.eacls.iter().enumerate() {
            for (ei, entry) in eacl.entries.iter().enumerate() {
                for phase in CondPhase::all() {
                    for (ci, cond) in entry.block(phase).iter().enumerate() {
                        if cond.cond_type != REDIRECT_COND_TYPE {
                            continue;
                        }
                        let target = redirect_target_path(&cond.value);
                        if !names.contains(target.as_str()) {
                            continue;
                        }
                        let lint = Lint::new(
                            "GAA303",
                            LintSeverity::Error,
                            &source.name,
                            format!(
                                "redirect target `{}` (object `{target}`) leads back to \
                                 `{}` — the redirect chain loops and can never resolve",
                                cond.value, source.name
                            ),
                        )
                        .at(
                            PolicyLayer::Local,
                            local_base + li,
                            Some(ei),
                            source.condition_span(li, ei, phase, ci),
                        );
                        adjacency
                            .entry(source.name.as_str())
                            .or_default()
                            .push(target.clone());
                        edges.push((source.name.clone(), target, lint));
                    }
                }
            }
        }
        local_base += source.eacls.len();
    }

    // An edge u -> v is part of a loop iff u is reachable from v.
    let reachable = |from: &str, to: &str| -> bool {
        let mut queue: VecDeque<&str> = VecDeque::from([from]);
        let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
        while let Some(node) = queue.pop_front() {
            if node == to {
                return true;
            }
            for next in adjacency.get(node).into_iter().flatten() {
                if seen.insert(next.as_str()) {
                    queue.push_back(next.as_str());
                }
            }
        }
        false
    };
    edges
        .into_iter()
        .filter(|(u, v, _)| reachable(v, u))
        .map(|(_, _, lint)| lint)
        .collect()
}

// ---- completeness (GAA401) ----

/// Request-space gaps: `(authority, value)` combinations drawn from the
/// deployment's own vocabulary that no effective entry matches — requests
/// for them fall through to the silent default (deny).
///
/// The alphabet is the concrete (non-`*`) authorities and values mentioned
/// by **any** entry (including `stop`-dropped locals: the artifacts name
/// those rights, so the deployment clearly cares about them), plus an
/// [`OTHER_VALUE`] bucket per authority for values no entry names. Matching
/// runs against the **effective** entries only (locals excluded under
/// `stop`).
pub(crate) fn completeness_lints(
    system: &[Source],
    locals: &[Source],
    mode: CompositionMode,
) -> Vec<Lint> {
    let all_entries: Vec<&EaclEntry> = system
        .iter()
        .chain(locals.iter())
        .flat_map(|s| s.eacls.iter())
        .flat_map(|e| e.entries.iter())
        .collect();
    let effective: Vec<&EaclEntry> = if mode == CompositionMode::Stop {
        system
            .iter()
            .flat_map(|s| s.eacls.iter())
            .flat_map(|e| e.entries.iter())
            .collect()
    } else {
        all_entries.clone()
    };
    if effective.is_empty() {
        // GAA101 (empty policy) already covers the degenerate case.
        return Vec::new();
    }

    let authorities: BTreeSet<&str> = all_entries
        .iter()
        .map(|e| e.right.authority.as_str())
        .filter(|a| *a != "*")
        .collect();
    let values: BTreeSet<&str> = all_entries
        .iter()
        .map(|e| e.right.value.as_str())
        .filter(|v| *v != "*")
        .collect();

    let matches_gap = |right: &AccessRight, authority: &str, value: Option<&str>| -> bool {
        let authority_ok = right.authority == "*" || right.authority == authority;
        let value_ok = match value {
            Some(v) => right.value == "*" || right.value == v,
            // The residual bucket: only a wildcard value reaches it.
            None => right.value == "*",
        };
        authority_ok && value_ok
    };

    let mut lints = Vec::new();
    for authority in &authorities {
        let candidates = values.iter().map(|v| Some(*v)).chain(std::iter::once(None));
        for value in candidates {
            if effective
                .iter()
                .any(|e| matches_gap(&e.right, authority, value))
            {
                continue;
            }
            let (shown, pattern_value) = match value {
                Some(v) => (format!("`{authority} {v}`"), v.to_string()),
                None => (
                    format!("`{authority} <any value not named by an entry>`"),
                    OTHER_VALUE.to_string(),
                ),
            };
            lints.push(
                Lint::new(
                    "GAA401",
                    LintSeverity::Warning,
                    "deployment",
                    format!(
                        "no entry matches rights {shown} — such requests fall through to \
                         the silent default decision (deny)"
                    ),
                )
                .with_pattern(RightPattern::new(authority.to_string(), pattern_value)),
            );
        }
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("accessid", "accessid"), 0);
        assert_eq!(edit_distance("acessid", "accessid"), 1);
        assert_eq!(edit_distance("regex", "expr"), 4);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn closest_requires_small_distance() {
        let candidates = ["accessid", "regex", "notify"];
        assert_eq!(
            closest("acessid", candidates.iter().copied()),
            Some("accessid")
        );
        assert_eq!(closest("totally_new", candidates.iter().copied()), None);
        // An exact match is not a typo.
        assert_eq!(closest("regex", ["regex"].iter().copied()), None);
    }

    #[test]
    fn redirect_target_path_strips_scheme_and_host() {
        assert_eq!(
            redirect_target_path("http://replica1.example.org/obj"),
            "/obj"
        );
        assert_eq!(redirect_target_path("http://host"), "/");
        assert_eq!(redirect_target_path("/already/a/path"), "/already/a/path");
    }

    fn redirecting(name: &str, target: &str) -> Source {
        Source::parse(
            name,
            &format!("pos_access_right apache GET\npre_cond redirect local {target}\n"),
        )
        .unwrap()
    }

    #[test]
    fn three_object_redirect_cycle_flags_every_hop() {
        // /a -> /b -> /c -> /a: the loop spans three objects, so no single
        // pairwise check can see it — every edge must come back GAA303.
        let locals = [
            redirecting("/a", "http://mirror.example.org/b"),
            redirecting("/b", "/c"),
            redirecting("/c", "/a"),
        ];
        let lints = redirect_lints(&locals);
        assert_eq!(lints.len(), 3, "{lints:?}");
        for (lint, name) in lints.iter().zip(["/a", "/b", "/c"]) {
            assert_eq!(lint.code, "GAA303");
            assert_eq!(lint.severity, LintSeverity::Error);
            assert_eq!(lint.source, name);
            // Anchored at the redirect condition's own line.
            assert_eq!(lint.span.map(|s| s.line), Some(2));
        }
    }

    #[test]
    fn self_redirect_is_a_loop() {
        let locals = [redirecting(
            "/selfloop",
            "http://replica.example.org/selfloop",
        )];
        let lints = redirect_lints(&locals);
        assert_eq!(lints.len(), 1, "{lints:?}");
        assert_eq!(lints[0].code, "GAA303");
        assert_eq!(lints[0].source, "/selfloop");
    }

    #[test]
    fn acyclic_and_external_redirects_stay_clean() {
        // /a -> /b -> external replica: a chain that resolves is fine.
        let locals = [
            redirecting("/a", "/b"),
            redirecting("/b", "http://replica.example.org/mirror"),
        ];
        assert!(redirect_lints(&locals).is_empty());
    }

    #[test]
    fn pattern_cover_and_intersect() {
        let star = AccessRight::positive("*", "*");
        let apache = AccessRight::positive("apache", "*");
        let get = AccessRight::positive("apache", "GET");
        assert!(covers(&star, &get));
        assert!(covers(&apache, &get));
        assert!(!covers(&get, &apache));
        assert!(intersects(&apache, &star));
        assert!(!intersects(
            &AccessRight::positive("sshd", "*"),
            &AccessRight::positive("apache", "GET")
        ));
    }
}
