//! Property tests for the condition evaluators: sliding windows vs a
//! brute-force recount, time windows vs an explicit hour walk, CIDR
//! matching vs bit arithmetic, and glob/NFA cross-checks on signature
//! workloads.

use gaa_audit::{Clock, Timestamp, VirtualClock};
use gaa_conditions::location::{location_matches, LocationPattern};
use gaa_conditions::time::TimeWindow;
use gaa_conditions::ThresholdTracker;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    /// The sliding-window count equals a brute-force recount over the raw
    /// event log, for any event timing pattern and any window length.
    #[test]
    fn threshold_window_matches_bruteforce(
        gaps_ms in proptest::collection::vec(0u64..5_000, 1..40),
        window_s in 1u64..20,
    ) {
        let clock = VirtualClock::new();
        let tracker = ThresholdTracker::new(Arc::new(clock.clone()));
        let mut event_times = Vec::new();
        for gap in &gaps_ms {
            clock.advance(Duration::from_millis(*gap));
            tracker.record("m", "subject");
            event_times.push(clock.now().as_millis());
        }
        let window = Duration::from_secs(window_s);
        let now = clock.now().as_millis();
        let cutoff = now.saturating_sub(window.as_millis() as u64);
        let expected = event_times.iter().filter(|&&t| t >= cutoff).count();
        prop_assert_eq!(tracker.count("m", "subject", window), expected);
    }

    /// Window pruning is permanent: counting with a small window never
    /// resurrects events for a later bigger-window query... it must NOT
    /// prune events still inside the bigger window. (Regression guard: the
    /// prune cutoff must be per-query, not destructive beyond its own
    /// window.)
    #[test]
    fn small_window_query_does_not_destroy_later_counts(
        n in 1usize..20,
    ) {
        let clock = VirtualClock::new();
        let tracker = ThresholdTracker::new(Arc::new(clock.clone()));
        for _ in 0..n {
            tracker.record("m", "s");
            clock.advance(Duration::from_secs(1));
        }
        // All events are within the last n seconds.
        let tiny = tracker.count("m", "s", Duration::from_millis(1));
        prop_assert!(tiny <= 1);
        // If pruning used the tiny window destructively, this would now be
        // wrong. It must still see everything within n+1 seconds.
        let wide = tracker.count("m", "s", Duration::from_secs(n as u64 + 1));
        prop_assert_eq!(wide, n, "destructive prune");
    }

    /// TimeWindow::contains agrees with a brute-force membership walk.
    #[test]
    fn time_window_matches_walk(start in 0u32..24, end in 0u32..25, hour in 0u32..24) {
        let spec = format!("{start}-{end}");
        if let Some(window) = TimeWindow::parse(&spec) {
            let expected = if start < end {
                hour >= start && hour < end
            } else if start == end {
                false
            } else {
                hour >= start || hour < end
            };
            prop_assert_eq!(window.contains(hour, 3), expected, "{}@{}", spec, hour);
        }
    }

    /// CIDR matching agrees with explicit u32 mask arithmetic.
    #[test]
    fn cidr_matches_bit_arithmetic(net in any::<u32>(), bits in 0u8..=32, addr in any::<u32>()) {
        let net_ip = std::net::Ipv4Addr::from(net);
        let addr_ip = std::net::Ipv4Addr::from(addr);
        let pattern = LocationPattern::parse(&format!("{net_ip}/{bits}")).expect("valid cidr");
        let mask: u32 = if bits == 0 { 0 } else { u32::MAX << (32 - u32::from(bits)) };
        let expected = (net & mask) == (addr & mask);
        prop_assert_eq!(pattern.matches(&addr_ip.to_string()), expected);
    }

    /// location_matches never panics on arbitrary pattern lists and IPs.
    #[test]
    fn location_matches_never_panics(value in "\\PC{0,48}", ip in "\\PC{0,24}") {
        let _ = location_matches(&value, &ip);
    }

    /// A /32 pattern matches exactly its own address.
    #[test]
    fn slash_32_is_exact(addr in any::<u32>(), other in any::<u32>()) {
        let a = std::net::Ipv4Addr::from(addr).to_string();
        let b = std::net::Ipv4Addr::from(other).to_string();
        let p = LocationPattern::parse(&a).expect("addr parses");
        prop_assert_eq!(p.matches(&b), a == b);
    }

    /// Glob signatures: `*needle*` matches exactly the substring relation.
    #[test]
    fn star_wrapped_glob_is_substring(
        needle in "[a-z]{1,6}",
        haystack in "[a-z/?.]{0,30}",
    ) {
        let matched = gaa_conditions::regex::signature_matches(
            &format!("*{needle}*"),
            &haystack,
        );
        prop_assert_eq!(matched, haystack.contains(&needle));
    }
}

#[test]
fn threshold_evaluator_is_pure_wrt_env_time() {
    // The evaluator counts against the tracker's clock, not env.now — a
    // spoofed context timestamp cannot hide recent failures.
    use gaa_conditions::threshold::threshold_evaluator;
    use gaa_core::{EvalDecision, EvalEnv, SecurityContext};

    let clock = VirtualClock::new();
    let tracker = ThresholdTracker::new(Arc::new(clock.clone()));
    for _ in 0..5 {
        tracker.record("failed_logins", "1.2.3.4");
    }
    let eval = threshold_evaluator(tracker);
    let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
    // env.now far in the "future" — irrelevant.
    let env = EvalEnv::pre(&ctx, Timestamp::from_millis(u64::MAX / 2));
    assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::Met);
}
