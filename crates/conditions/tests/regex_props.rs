//! Property tests for the Thompson-NFA regex engine: agreement with a naive
//! backtracking reference implementation on randomly generated patterns, and
//! robustness against arbitrary pattern input.

use gaa_conditions::Regex;
use proptest::prelude::*;

/// Reference matcher: straightforward exponential backtracking over the same
/// dialect subset (literals from a small alphabet, `.`, `*`, `?`, `|`,
/// groups). Slow but obviously correct on tiny inputs.
mod reference {
    #[derive(Debug, Clone)]
    pub enum Ast {
        Literal(char),
        Any,
        Concat(Vec<Ast>),
        Alternate(Box<Ast>, Box<Ast>),
        Star(Box<Ast>),
        Optional(Box<Ast>),
    }

    impl Ast {
        /// All suffix offsets of `input` reachable after matching self
        /// against a prefix.
        pub fn match_prefix(&self, input: &[char]) -> Vec<usize> {
            match self {
                Ast::Literal(c) => {
                    if input.first() == Some(c) {
                        vec![1]
                    } else {
                        vec![]
                    }
                }
                Ast::Any => {
                    if input.is_empty() {
                        vec![]
                    } else {
                        vec![1]
                    }
                }
                Ast::Concat(parts) => {
                    let mut offsets = vec![0usize];
                    for part in parts {
                        let mut next = Vec::new();
                        for &off in &offsets {
                            for n in part.match_prefix(&input[off..]) {
                                if !next.contains(&(off + n)) {
                                    next.push(off + n);
                                }
                            }
                        }
                        offsets = next;
                        if offsets.is_empty() {
                            break;
                        }
                    }
                    offsets
                }
                Ast::Alternate(a, b) => {
                    let mut out = a.match_prefix(input);
                    for n in b.match_prefix(input) {
                        if !out.contains(&n) {
                            out.push(n);
                        }
                    }
                    out
                }
                Ast::Star(inner) => {
                    let mut out = vec![0usize];
                    let mut frontier = vec![0usize];
                    while !frontier.is_empty() {
                        let mut next = Vec::new();
                        for &off in &frontier {
                            for n in inner.match_prefix(&input[off..]) {
                                let total = off + n;
                                if n > 0 && !out.contains(&total) {
                                    out.push(total);
                                    next.push(total);
                                }
                            }
                        }
                        frontier = next;
                    }
                    out
                }
                Ast::Optional(inner) => {
                    let mut out = vec![0usize];
                    for n in inner.match_prefix(input) {
                        if !out.contains(&n) {
                            out.push(n);
                        }
                    }
                    out
                }
            }
        }

        /// Unanchored search, like `Regex::is_match` without anchors.
        pub fn is_match(&self, text: &str) -> bool {
            let chars: Vec<char> = text.chars().collect();
            (0..=chars.len()).any(|start| !self.match_prefix(&chars[start..]).is_empty())
        }

        /// Renders back to pattern syntax (grouping every composite).
        pub fn to_pattern(&self) -> String {
            match self {
                Ast::Literal(c) => c.to_string(),
                Ast::Any => ".".to_string(),
                Ast::Concat(parts) => parts.iter().map(Ast::to_pattern).collect(),
                Ast::Alternate(a, b) => {
                    format!("({}|{})", a.to_pattern(), b.to_pattern())
                }
                Ast::Star(inner) => format!("({})*", inner.to_pattern()),
                Ast::Optional(inner) => format!("({})?", inner.to_pattern()),
            }
        }
    }
}

use reference::Ast;

fn ast(depth: u32) -> BoxedStrategy<Ast> {
    let leaf = prop_oneof![
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Ast::Literal),
        Just(Ast::Any),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Ast::Concat),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Ast::Alternate(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Ast::Star(Box::new(a))),
            inner.prop_map(|a| Ast::Optional(Box::new(a))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The NFA engine agrees with the backtracking reference on every
    /// generated (pattern, input) pair.
    #[test]
    fn nfa_agrees_with_reference(
        pattern_ast in ast(3),
        input in "[abc]{0,8}",
    ) {
        let pattern = pattern_ast.to_pattern();
        let compiled = Regex::new(&pattern)
            .unwrap_or_else(|e| panic!("generated pattern `{pattern}` failed to compile: {e}"));
        let expected = pattern_ast.is_match(&input);
        let actual = compiled.is_match(&input);
        prop_assert_eq!(
            actual, expected,
            "pattern `{}` vs input `{}`", pattern, input
        );
    }

    /// Compilation never panics on arbitrary input (errors are fine).
    #[test]
    fn compile_never_panics(pattern in "\\PC{0,40}") {
        let _ = Regex::new(&pattern);
    }

    /// Matching never panics and terminates on arbitrary (valid pattern,
    /// arbitrary input) pairs.
    #[test]
    fn match_never_panics(pattern_ast in ast(2), input in "\\PC{0,40}") {
        let pattern = pattern_ast.to_pattern();
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&input);
        }
    }

    /// A literal pattern matches exactly when it is a substring.
    #[test]
    fn literal_patterns_are_substring_search(
        needle in "[abc]{1,5}",
        haystack in "[abc]{0,12}",
    ) {
        let re = Regex::new(&needle).expect("literal compiles");
        prop_assert_eq!(re.is_match(&haystack), haystack.contains(&needle));
    }

    /// Anchored ^pat$ agrees with the reference's whole-string match (a
    /// prefix match from position 0 that consumes the entire input).
    #[test]
    fn full_anchoring_matches_whole_string(
        pattern_ast in ast(2),
        input in "[abc]{0,6}",
    ) {
        let inner = pattern_ast.to_pattern();
        let re = Regex::new(&format!("^{inner}$")).expect("anchored compiles");
        let chars: Vec<char> = input.chars().collect();
        let expected = pattern_ast.match_prefix(&chars).contains(&chars.len());
        prop_assert_eq!(re.is_match(&input), expected, "pattern ^{}$ input {}", inner, input);
    }
}
