//! The `time_window` condition: time-of-day and day-of-week restrictions.
//!
//! §1: "More restrictive organizational policies may be enforced after
//! hours"; §2 lists time among the adaptive constraints whose allowable
//! values "can change in the event of possible security attacks".
//!
//! Value syntax: `<start>-<end>` in 24-hour clock, optionally with a day
//! restriction: `9-17@mon-fri` or `0-24@sat,sun`. The window is
//! half-open `[start, end)`; `18-6` wraps around midnight. `0-24` means
//! all day.

use gaa_core::{EvalDecision, EvalEnv};

/// Day-of-week index, 0 = Sunday … 6 = Saturday (matching
/// [`Timestamp::day_of_week`](gaa_audit::Timestamp::day_of_week)).
fn day_index(name: &str) -> Option<u32> {
    match name.to_ascii_lowercase().as_str() {
        "sun" | "sunday" => Some(0),
        "mon" | "monday" => Some(1),
        "tue" | "tuesday" => Some(2),
        "wed" | "wednesday" => Some(3),
        "thu" | "thursday" => Some(4),
        "fri" | "friday" => Some(5),
        "sat" | "saturday" => Some(6),
        _ => None,
    }
}

/// A parsed time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeWindow {
    start_hour: u32,
    end_hour: u32,
    /// Allowed days (bitmask over 0..7); `None` means any day.
    days: Option<u8>,
}

impl TimeWindow {
    /// Parses `9-17`, `18-6`, `9-17@mon-fri`, `0-24@sat,sun`.
    /// Returns `None` on malformed input.
    pub fn parse(value: &str) -> Option<TimeWindow> {
        let value = value.trim();
        let (hours, days) = match value.split_once('@') {
            Some((h, d)) => (h, Some(d)),
            None => (value, None),
        };
        let (start, end) = hours.split_once('-')?;
        let start_hour: u32 = start.trim().parse().ok()?;
        let end_hour: u32 = end.trim().parse().ok()?;
        if start_hour > 24 || end_hour > 24 {
            return None;
        }
        let days = match days {
            None => None,
            Some(spec) => {
                let mut mask = 0u8;
                for part in spec.split(',') {
                    let part = part.trim();
                    if let Some((from, to)) = part.split_once('-') {
                        let from = day_index(from)?;
                        let to = day_index(to)?;
                        // Inclusive range, possibly wrapping the week.
                        let mut d = from;
                        loop {
                            mask |= 1 << d;
                            if d == to {
                                break;
                            }
                            d = (d + 1) % 7;
                        }
                    } else {
                        mask |= 1 << day_index(part)?;
                    }
                }
                if mask == 0 {
                    return None;
                }
                Some(mask)
            }
        };
        Some(TimeWindow {
            start_hour,
            end_hour,
            days,
        })
    }

    /// Is the given hour/day inside the window?
    pub fn contains(&self, hour: u32, day: u32) -> bool {
        if let Some(mask) = self.days {
            if mask & (1 << day) == 0 {
                return false;
            }
        }
        if self.start_hour == self.end_hour {
            // Degenerate: 0-length window, except 0-0 == whole day by the
            // 0-24 convention only when written 0-24.
            return false;
        }
        if self.start_hour < self.end_hour {
            hour >= self.start_hour && hour < self.end_hour
        } else {
            // Wraps midnight, e.g. 18-6.
            hour >= self.start_hour || hour < self.end_hour
        }
    }
}

/// Builds the `time_window` evaluator against the API clock (or the
/// context's pinned time).
pub fn time_window_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| {
        let Some(window) = TimeWindow::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let now = env.now;
        if window.contains(now.hour_of_day(), now.day_of_week()) {
            EvalDecision::Met
        } else {
            EvalDecision::NotMet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::SecurityContext;

    #[test]
    fn simple_window() {
        let w = TimeWindow::parse("9-17").unwrap();
        assert!(!w.contains(8, 1));
        assert!(w.contains(9, 1));
        assert!(w.contains(16, 1));
        assert!(!w.contains(17, 1)); // half-open
        assert!(!w.contains(23, 1));
    }

    #[test]
    fn wrapping_window() {
        let w = TimeWindow::parse("18-6").unwrap();
        assert!(w.contains(18, 1));
        assert!(w.contains(23, 1));
        assert!(w.contains(0, 1));
        assert!(w.contains(5, 1));
        assert!(!w.contains(6, 1));
        assert!(!w.contains(12, 1));
    }

    #[test]
    fn whole_day() {
        let w = TimeWindow::parse("0-24").unwrap();
        for hour in 0..24 {
            assert!(w.contains(hour, 3), "hour {hour}");
        }
    }

    #[test]
    fn day_restrictions() {
        let w = TimeWindow::parse("9-17@mon-fri").unwrap();
        assert!(w.contains(10, 1)); // Monday
        assert!(w.contains(10, 5)); // Friday
        assert!(!w.contains(10, 6)); // Saturday
        assert!(!w.contains(10, 0)); // Sunday

        let w = TimeWindow::parse("0-24@sat,sun").unwrap();
        assert!(w.contains(3, 0));
        assert!(w.contains(3, 6));
        assert!(!w.contains(3, 2));
    }

    #[test]
    fn wrapping_day_range() {
        let w = TimeWindow::parse("0-24@fri-mon").unwrap();
        assert!(w.contains(1, 5)); // Fri
        assert!(w.contains(1, 6)); // Sat
        assert!(w.contains(1, 0)); // Sun
        assert!(w.contains(1, 1)); // Mon
        assert!(!w.contains(1, 3)); // Wed
    }

    #[test]
    fn malformed_windows() {
        assert_eq!(TimeWindow::parse("25-3"), None);
        assert_eq!(TimeWindow::parse("9"), None);
        assert_eq!(TimeWindow::parse("a-b"), None);
        assert_eq!(TimeWindow::parse("9-17@noday"), None);
        assert_eq!(TimeWindow::parse(""), None);
    }

    #[test]
    fn evaluator_uses_env_time() {
        let eval = time_window_evaluator();
        let ctx = SecurityContext::new();
        // Epoch (Thursday 00:00) + 10 hours = Thursday 10:00.
        let ten_am = Timestamp::from_millis(10 * 3_600_000);
        let env = EvalEnv::pre(&ctx, ten_am);
        assert_eq!(eval("9-17", &env), EvalDecision::Met);
        assert_eq!(eval("11-17", &env), EvalDecision::NotMet);
        assert_eq!(eval("9-17@thu", &env), EvalDecision::Met);
        assert_eq!(eval("9-17@fri", &env), EvalDecision::NotMet);
        assert_eq!(eval("bogus", &env), EvalDecision::Unevaluated);
    }
}
