//! Session tracking and the `terminate_session` / `disable_account`
//! response actions.
//!
//! §1's countermeasure list: "terminating the session, logging the user off
//! the system, disabling local account". The web server issues a session
//! token after successful Basic authentication; later requests present the
//! token instead of credentials. The [`SessionRegistry`] is the shared
//! service those tokens live in — and response actions can revoke them:
//!
//! * `rr_cond terminate_session local on:failure/user/info:<why>` — log the
//!   offending principal off everywhere (all their sessions die);
//! * `rr_cond disable_account local on:failure/<group>/info:<why>` — add
//!   the user to a disabled-accounts group (enforced by an `accessid GROUP`
//!   deny entry), so they cannot log back in either.

use crate::actions::ActionSpec;
use crate::identity::GroupStore;
use gaa_audit::log::{AuditLog, AuditRecord, AuditSeverity};
use gaa_audit::time::{Clock, Timestamp};
use gaa_core::{EvalDecision, EvalEnv, Outcome};
use gaa_eacl::CondPhase;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A live session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The authenticated principal.
    pub user: String,
    /// When the session was created.
    pub created: Timestamp,
    /// Last time the session was presented.
    pub last_seen: Timestamp,
}

struct RegistryState {
    sessions: HashMap<String, Session>,
}

/// Shared session store with token issuance, validation, idle expiry, and
/// per-user termination.
///
/// Tokens are opaque strings derived from a seeded counter (deterministic in
/// tests; uniqueness, not unguessability, is what the simulation needs —
/// a production store would mint random tokens).
#[derive(Clone)]
pub struct SessionRegistry {
    state: Arc<Mutex<RegistryState>>,
    counter: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    idle_timeout: Duration,
}

impl fmt::Debug for SessionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("sessions", &self.state.lock().sessions.len())
            .field("idle_timeout", &self.idle_timeout)
            .finish()
    }
}

impl SessionRegistry {
    /// A registry with a 30-minute idle timeout.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        SessionRegistry {
            state: Arc::new(Mutex::new(RegistryState {
                sessions: HashMap::new(),
            })),
            counter: Arc::new(AtomicU64::new(1)),
            clock,
            idle_timeout: Duration::from_secs(30 * 60),
        }
    }

    /// Sets the idle timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Creates a session for `user`, returning its token.
    pub fn create(&self, user: &str) -> String {
        let now = self.clock.now();
        let serial = self.counter.fetch_add(1, Ordering::SeqCst);
        // Token mixes the serial with a hash of user+time so tokens are not
        // trivially sequential across users.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in user.bytes().chain(now.as_millis().to_le_bytes()) {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let token = format!("s{serial:04x}{h:016x}");
        self.state.lock().sessions.insert(
            token.clone(),
            Session {
                user: user.to_string(),
                created: now,
                last_seen: now,
            },
        );
        token
    }

    /// Validates a token: returns the user and refreshes the idle timer, or
    /// `None` for unknown, terminated or idle-expired tokens (expired ones
    /// are removed).
    pub fn validate(&self, token: &str) -> Option<String> {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let session = state.sessions.get_mut(token)?;
        if now.since(session.last_seen) > self.idle_timeout {
            state.sessions.remove(token);
            return None;
        }
        session.last_seen = now;
        Some(session.user.clone())
    }

    /// Terminates one session by token; returns whether it existed.
    pub fn terminate(&self, token: &str) -> bool {
        self.state.lock().sessions.remove(token).is_some()
    }

    /// Terminates **every** session belonging to `user` (the "log the user
    /// off the system" countermeasure); returns how many died.
    pub fn terminate_user(&self, user: &str) -> usize {
        let mut state = self.state.lock();
        let before = state.sessions.len();
        state.sessions.retain(|_, s| s.user != user);
        before - state.sessions.len()
    }

    /// Number of live (not yet expired) sessions.
    pub fn len(&self) -> usize {
        self.state.lock().sessions.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.state.lock().sessions.is_empty()
    }

    /// Live sessions belonging to `user`.
    pub fn sessions_of(&self, user: &str) -> usize {
        self.state
            .lock()
            .sessions
            .values()
            .filter(|s| s.user == user)
            .count()
    }
}

fn phase_outcome(env: &EvalEnv<'_>) -> Option<Outcome> {
    match env.phase {
        CondPhase::Post => env.operation_outcome,
        _ => env.request_outcome,
    }
}

/// Builds the `terminate_session` response action.
///
/// Value: `on:failure/user/info:<why>`. Fires for the context's
/// authenticated user; a request with no user (nothing to log off) leaves
/// the condition Met.
pub fn terminate_session_evaluator(
    sessions: SessionRegistry,
    audit: AuditLog,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(outcome) = phase_outcome(env) else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met;
        }
        if let Some(user) = env.context.user() {
            let killed = sessions.terminate_user(user);
            if killed > 0 {
                audit.record(
                    AuditRecord::new(
                        env.now,
                        AuditSeverity::Alert,
                        "session.terminated",
                        user,
                        format!("{killed} session(s) terminated: {}", spec.info),
                    )
                    .with_attr("reason", spec.info.clone()),
                );
            }
        }
        EvalDecision::Met
    }
}

/// Builds the `disable_account` response action: adds the context's user to
/// `spec.target` (a group an `accessid GROUP` deny entry watches) and kills
/// their sessions.
pub fn disable_account_evaluator(
    sessions: SessionRegistry,
    groups: GroupStore,
    audit: AuditLog,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(outcome) = phase_outcome(env) else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met;
        }
        if let Some(user) = env.context.user() {
            let newly = groups.add(&spec.target, user);
            sessions.terminate_user(user);
            if newly {
                audit.record(
                    AuditRecord::new(
                        env.now,
                        AuditSeverity::Alert,
                        "account.disabled",
                        user,
                        format!("added to {} and logged off: {}", spec.target, spec.info),
                    )
                    .with_attr("group", spec.target.clone()),
                );
            }
        }
        EvalDecision::Met
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::VirtualClock;
    use gaa_core::SecurityContext;

    fn registry(clock: &VirtualClock) -> SessionRegistry {
        SessionRegistry::new(Arc::new(clock.clone())).with_idle_timeout(Duration::from_secs(60))
    }

    #[test]
    fn create_validate_refresh() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let token = reg.create("alice");
        assert_eq!(reg.validate(&token), Some("alice".to_string()));
        // Validation refreshes the idle timer.
        clock.advance(Duration::from_secs(50));
        assert_eq!(reg.validate(&token), Some("alice".to_string()));
        clock.advance(Duration::from_secs(50));
        assert_eq!(reg.validate(&token), Some("alice".to_string()));
    }

    #[test]
    fn idle_expiry() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let token = reg.create("alice");
        clock.advance(Duration::from_secs(61));
        assert_eq!(reg.validate(&token), None);
        assert!(reg.is_empty(), "expired sessions are removed");
    }

    #[test]
    fn tokens_are_unique() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let a = reg.create("alice");
        let b = reg.create("alice");
        let c = reg.create("bob");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn terminate_user_kills_all_their_sessions() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let a1 = reg.create("alice");
        let a2 = reg.create("alice");
        let b = reg.create("bob");
        assert_eq!(reg.terminate_user("alice"), 2);
        assert_eq!(reg.validate(&a1), None);
        assert_eq!(reg.validate(&a2), None);
        assert_eq!(reg.validate(&b), Some("bob".to_string()));
        assert_eq!(reg.sessions_of("alice"), 0);
    }

    #[test]
    fn terminate_single_token() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let token = reg.create("alice");
        assert!(reg.terminate(&token));
        assert!(!reg.terminate(&token));
    }

    fn rr_env<'a>(ctx: &'a SecurityContext, outcome: Outcome) -> EvalEnv<'a> {
        EvalEnv {
            context: ctx,
            phase: CondPhase::RequestResult,
            now: Timestamp::from_millis(7),
            request_outcome: Some(outcome),
            operation_outcome: None,
            execution: None,
        }
    }

    #[test]
    fn terminate_session_action_logs_user_off() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let audit = AuditLog::new();
        let _t1 = reg.create("mallory");
        let _t2 = reg.create("mallory");
        let eval = terminate_session_evaluator(reg.clone(), audit.clone());
        let ctx = SecurityContext::new().with_user("mallory");
        let env = rr_env(&ctx, Outcome::Failure);
        assert_eq!(
            eval("on:failure/user/info:privilege_abuse", &env),
            EvalDecision::Met
        );
        assert_eq!(reg.sessions_of("mallory"), 0);
        let records = audit.by_category("session.terminated");
        assert_eq!(records.len(), 1);
        assert!(records[0].message.contains("2 session(s)"));
    }

    #[test]
    fn terminate_session_respects_trigger_and_anonymous() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let audit = AuditLog::new();
        let _t = reg.create("alice");
        let eval = terminate_session_evaluator(reg.clone(), audit);

        // Granted request: on:failure does not fire.
        let ctx = SecurityContext::new().with_user("alice");
        let env = rr_env(&ctx, Outcome::Success);
        assert_eq!(eval("on:failure/user/info:x", &env), EvalDecision::Met);
        assert_eq!(reg.sessions_of("alice"), 1);

        // Anonymous: nothing to log off, still Met.
        let anon = SecurityContext::new();
        let env = rr_env(&anon, Outcome::Failure);
        assert_eq!(eval("on:failure/user/info:x", &env), EvalDecision::Met);
    }

    #[test]
    fn disable_account_blacklists_and_logs_off() {
        let clock = VirtualClock::new();
        let reg = registry(&clock);
        let groups = GroupStore::new();
        let audit = AuditLog::new();
        let _t = reg.create("mallory");
        let eval = disable_account_evaluator(reg.clone(), groups.clone(), audit.clone());
        let ctx = SecurityContext::new().with_user("mallory");
        let env = rr_env(&ctx, Outcome::Failure);
        assert_eq!(
            eval("on:failure/Disabled/info:repeated_violations", &env),
            EvalDecision::Met
        );
        assert!(groups.contains("Disabled", "mallory"));
        assert_eq!(reg.sessions_of("mallory"), 0);
        assert_eq!(audit.count_category("account.disabled"), 1);
        // Idempotent: no duplicate audit.
        let _ = eval("on:failure/Disabled/info:repeated_violations", &env);
        assert_eq!(audit.count_category("account.disabled"), 1);
    }
}
