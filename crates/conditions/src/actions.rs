//! Response-action conditions: `notify`, `update_log`, `audit`.
//!
//! §5 item 1: "the GAA-API libraries provide routines that can execute
//! certain actions, such as logging information, notifying administrator,
//! etc. Furthermore, the routines can be activated whether the request
//! succeeds/fails (when defined as request-result conditions) or whether the
//! requested operation succeeds/fails (when defined as post-conditions)."
//!
//! Value syntax follows the §7.2 policies:
//!
//! ```text
//! rr_cond notify     local on:failure/sysadmin/info:cgi_exploit
//! rr_cond update_log local on:failure/BadGuys/info:ip
//! post_cond audit    local on:success/file_modified
//! ```
//!
//! `on:<trigger>` is `on:success`, `on:failure` or `on:any`; the action
//! fires only when the phase outcome matches (request outcome for rr
//! conditions, operation outcome for post conditions). A non-firing action
//! is **Met** — it must not veto the decision. `notify` reports "time, IP
//! address, URL attempted and a threat type" (§7.2), which is exactly what
//! the built notification body carries.

use gaa_audit::log::{AuditLog, AuditRecord, AuditSeverity};
use gaa_audit::notify::{Notification, Notifier};
use gaa_core::{EvalDecision, EvalEnv, Outcome};
use gaa_eacl::CondPhase;
use std::sync::Arc;

use crate::identity::GroupStore;

/// When a response action fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire when the request/operation succeeded.
    OnSuccess,
    /// Fire when the request/operation failed.
    OnFailure,
    /// Fire unconditionally.
    OnAny,
}

impl Trigger {
    /// Does this trigger fire for `outcome`?
    pub fn fires(self, outcome: Outcome) -> bool {
        match self {
            Trigger::OnSuccess => outcome == Outcome::Success,
            Trigger::OnFailure => outcome == Outcome::Failure,
            Trigger::OnAny => true,
        }
    }
}

/// A parsed action value: trigger, target, info tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSpec {
    /// When to fire.
    pub trigger: Trigger,
    /// Action target: notification recipient, group name, audit category.
    pub target: String,
    /// Info tag (threat type, template selector); empty when omitted.
    pub info: String,
}

impl ActionSpec {
    /// Parses `on:failure/sysadmin/info:cgi_exploit`. Returns `None` on
    /// malformed input.
    pub fn parse(value: &str) -> Option<ActionSpec> {
        let mut parts = value.trim().split('/');
        let trigger = match parts.next()?.trim() {
            "on:success" => Trigger::OnSuccess,
            "on:failure" => Trigger::OnFailure,
            "on:any" => Trigger::OnAny,
            _ => return None,
        };
        let target = parts.next()?.trim().to_string();
        if target.is_empty() {
            return None;
        }
        let info = parts
            .next()
            .map(|p| {
                p.trim()
                    .strip_prefix("info:")
                    .unwrap_or(p.trim())
                    .to_string()
            })
            .unwrap_or_default();
        Some(ActionSpec {
            trigger,
            target,
            info,
        })
    }
}

/// The outcome an action condition keys on: request outcome for rr
/// conditions, operation outcome for post conditions.
fn phase_outcome(env: &EvalEnv<'_>) -> Option<Outcome> {
    match env.phase {
        CondPhase::Post => env.operation_outcome,
        _ => env.request_outcome,
    }
}

/// Builds the `notify` action evaluator over a notifier and audit log.
///
/// Delivery failure is audited and the condition still reports **Met** — a
/// broken mail path must degrade to audit-only operation, never block
/// enforcement or (worse) flip decisions.
pub fn notify_evaluator(
    notifier: Arc<dyn Notifier>,
    audit: AuditLog,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(outcome) = phase_outcome(env) else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met; // not our trigger: nothing to do
        }
        // §7.2: report time, IP address, URL attempted and threat type.
        let body = format!(
            "time={} ip={} url={} threat={} outcome={}",
            env.now,
            env.context.client_ip().unwrap_or("-"),
            env.context
                .param("url")
                .or_else(|| env.context.object())
                .unwrap_or("-"),
            if spec.info.is_empty() {
                "-"
            } else {
                &spec.info
            },
            outcome,
        );
        let notification = Notification::new(env.now, spec.target.clone(), spec.info.clone(), body);
        if let Err(e) = notifier.notify(&notification) {
            audit.record(AuditRecord::new(
                env.now,
                AuditSeverity::Warning,
                "notify.failed",
                env.context.subject(),
                e.to_string(),
            ));
        }
        EvalDecision::Met
    }
}

/// Builds the `update_log` action evaluator over the shared group store.
///
/// §7.2: "the `rr_cond update_log` updates the group BadGuys to include new
/// suspicious IP address from the request." With `info:ip` the client IP is
/// added; with `info:user` the authenticated user. Missing subject data
/// leaves the condition Met but records an audit notice (the action had
/// nothing to add).
pub fn update_log_evaluator(
    groups: GroupStore,
    audit: AuditLog,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(outcome) = phase_outcome(env) else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met;
        }
        let member = match spec.info.as_str() {
            "user" => env.context.user(),
            _ => env.context.client_ip(), // default and "ip"
        };
        match member {
            Some(member) => {
                let added = groups.add(&spec.target, member);
                if added {
                    audit.record(
                        AuditRecord::new(
                            env.now,
                            AuditSeverity::Alert,
                            "group.updated",
                            member,
                            format!("added to group {}", spec.target),
                        )
                        .with_attr("group", spec.target.clone()),
                    );
                }
            }
            None => {
                audit.record(AuditRecord::new(
                    env.now,
                    AuditSeverity::Notice,
                    "group.update_skipped",
                    env.context.subject(),
                    format!("no {} available to add to {}", spec.info, spec.target),
                ));
            }
        }
        EvalDecision::Met
    }
}

/// Builds the `audit` action evaluator: writes a record with the spec's
/// target as category.
pub fn audit_evaluator(
    audit: AuditLog,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(outcome) = phase_outcome(env) else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met;
        }
        audit.record(
            AuditRecord::new(
                env.now,
                AuditSeverity::Notice,
                spec.target.clone(),
                env.context.subject(),
                format!(
                    "{} on {} ({outcome})",
                    if spec.info.is_empty() {
                        "event"
                    } else {
                        &spec.info
                    },
                    env.context.object().unwrap_or("-"),
                ),
            )
            .with_attr("phase", env.phase.keyword()),
        );
        EvalDecision::Met
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::notify::{CollectingNotifier, FailingNotifier};
    use gaa_audit::Timestamp;
    use gaa_core::SecurityContext;

    fn rr_env<'a>(ctx: &'a SecurityContext, outcome: Outcome) -> EvalEnv<'a> {
        EvalEnv {
            context: ctx,
            phase: CondPhase::RequestResult,
            now: Timestamp::from_millis(42),
            request_outcome: Some(outcome),
            operation_outcome: None,
            execution: None,
        }
    }

    fn post_env<'a>(ctx: &'a SecurityContext, outcome: Outcome) -> EvalEnv<'a> {
        EvalEnv {
            context: ctx,
            phase: CondPhase::Post,
            now: Timestamp::from_millis(42),
            request_outcome: Some(Outcome::Success),
            operation_outcome: Some(outcome),
            execution: None,
        }
    }

    #[test]
    fn action_spec_parsing() {
        let spec = ActionSpec::parse("on:failure/sysadmin/info:cgi_exploit").unwrap();
        assert_eq!(spec.trigger, Trigger::OnFailure);
        assert_eq!(spec.target, "sysadmin");
        assert_eq!(spec.info, "cgi_exploit");

        let spec = ActionSpec::parse("on:any/ops").unwrap();
        assert_eq!(spec.trigger, Trigger::OnAny);
        assert_eq!(spec.info, "");

        assert_eq!(ActionSpec::parse("whenever/ops"), None);
        assert_eq!(ActionSpec::parse("on:failure"), None);
        assert_eq!(ActionSpec::parse("on:failure//info:x"), None);
    }

    #[test]
    fn notify_fires_on_matching_trigger_only() {
        let notifier = Arc::new(CollectingNotifier::new());
        let audit = AuditLog::new();
        let eval = notify_evaluator(notifier.clone(), audit);
        let ctx = SecurityContext::new()
            .with_client_ip("203.0.113.9")
            .with_object("/cgi-bin/phf");

        // Denied request + on:failure -> fires.
        let env = rr_env(&ctx, Outcome::Failure);
        assert_eq!(
            eval("on:failure/sysadmin/info:cgi_exploit", &env),
            EvalDecision::Met
        );
        assert_eq!(notifier.delivered(), 1);
        let sent = notifier.sent();
        assert_eq!(sent[0].recipient, "sysadmin");
        assert!(sent[0].body.contains("ip=203.0.113.9"));
        assert!(sent[0].body.contains("url=/cgi-bin/phf"));
        assert!(sent[0].body.contains("threat=cgi_exploit"));

        // Granted request + on:failure -> no-op but Met.
        let env = rr_env(&ctx, Outcome::Success);
        assert_eq!(
            eval("on:failure/sysadmin/info:cgi_exploit", &env),
            EvalDecision::Met
        );
        assert_eq!(notifier.delivered(), 1);
    }

    #[test]
    fn notify_failure_degrades_to_audit() {
        let audit = AuditLog::new();
        let eval = notify_evaluator(Arc::new(FailingNotifier::new()), audit.clone());
        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = rr_env(&ctx, Outcome::Failure);
        assert_eq!(eval("on:failure/sysadmin/info:x", &env), EvalDecision::Met);
        assert_eq!(audit.count_category("notify.failed"), 1);
    }

    #[test]
    fn update_log_adds_ip_to_badguys() {
        let groups = GroupStore::new();
        let audit = AuditLog::new();
        let eval = update_log_evaluator(groups.clone(), audit.clone());
        let ctx = SecurityContext::new().with_client_ip("203.0.113.9");
        let env = rr_env(&ctx, Outcome::Failure);
        assert_eq!(eval("on:failure/BadGuys/info:ip", &env), EvalDecision::Met);
        assert!(groups.contains("BadGuys", "203.0.113.9"));
        assert_eq!(audit.count_category("group.updated"), 1);

        // Firing again is idempotent and not re-audited.
        assert_eq!(eval("on:failure/BadGuys/info:ip", &env), EvalDecision::Met);
        assert_eq!(groups.len("BadGuys"), 1);
        assert_eq!(audit.count_category("group.updated"), 1);
    }

    #[test]
    fn update_log_user_variant_and_missing_subject() {
        let groups = GroupStore::new();
        let audit = AuditLog::new();
        let eval = update_log_evaluator(groups.clone(), audit.clone());

        let alice = SecurityContext::new().with_user("alice");
        let env = rr_env(&alice, Outcome::Failure);
        assert_eq!(
            eval("on:failure/Suspended/info:user", &env),
            EvalDecision::Met
        );
        assert!(groups.contains("Suspended", "alice"));

        // No client IP for an info:ip action: skipped + audited, still Met.
        let env = rr_env(&alice, Outcome::Failure);
        assert_eq!(eval("on:failure/BadGuys/info:ip", &env), EvalDecision::Met);
        assert!(groups.is_empty("BadGuys"));
        assert_eq!(audit.count_category("group.update_skipped"), 1);
    }

    #[test]
    fn update_log_respects_trigger() {
        let groups = GroupStore::new();
        let eval = update_log_evaluator(groups.clone(), AuditLog::new());
        let ctx = SecurityContext::new().with_client_ip("203.0.113.9");
        let env = rr_env(&ctx, Outcome::Success);
        assert_eq!(eval("on:failure/BadGuys/info:ip", &env), EvalDecision::Met);
        assert!(groups.is_empty("BadGuys"));
    }

    #[test]
    fn audit_action_uses_operation_outcome_in_post_phase() {
        let audit = AuditLog::new();
        let eval = audit_evaluator(audit.clone());
        let ctx = SecurityContext::new()
            .with_user("root")
            .with_object("/etc/passwd");

        // §1: "alerting that a particular critical file was modified".
        let env = post_env(&ctx, Outcome::Success);
        assert_eq!(
            eval("on:success/file.modified/info:passwd_written", &env),
            EvalDecision::Met
        );
        let records = audit.by_category("file.modified");
        assert_eq!(records.len(), 1);
        assert!(records[0].message.contains("passwd_written"));
        assert_eq!(records[0].attr("phase"), Some("post_cond"));

        // Operation failed: on:success action does not fire.
        let env = post_env(&ctx, Outcome::Failure);
        assert_eq!(
            eval("on:success/file.modified/info:passwd_written", &env),
            EvalDecision::Met
        );
        assert_eq!(audit.count_category("file.modified"), 1);
    }

    #[test]
    fn malformed_specs_and_missing_outcomes_unevaluated() {
        let audit = AuditLog::new();
        let eval = audit_evaluator(audit);
        let ctx = SecurityContext::new();
        let env = rr_env(&ctx, Outcome::Success);
        assert_eq!(eval("bogus", &env), EvalDecision::Unevaluated);

        // Pre-phase env without outcomes: action conditions cannot run.
        let pre = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(eval("on:any/cat", &pre), EvalDecision::Unevaluated);
    }
}
