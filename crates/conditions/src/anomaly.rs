//! The `anomaly` condition: anomaly-based intrusion detection in the
//! policy loop.
//!
//! §9 future work, implemented: "We will investigate a possibility of
//! implementing a simple profile building module and anomaly detector
//! (implemented using conditions) to support anomaly-based intrusion
//! detection in addition to the signature-based."
//!
//! The profiles are built from §3 item 7 traffic (the glue feeds every
//! *granted* request into the shared
//! [`AnomalyDetector`]); the condition
//! `anomaly local <score>` is **met when the current request's anomaly
//! score reaches the threshold** — policies attach it to negative entries
//! so out-of-profile requests are denied (or to entries that merely
//! tighten auditing). Cold-start principals never trip it.

use gaa_core::{EvalDecision, EvalEnv};
use gaa_ids::anomaly::{AnomalyDetector, RequestFeatures};

/// Builds the `anomaly` evaluator over a shared detector.
///
/// The condition value is the score threshold (e.g. `3.0`). Unevaluated on
/// a malformed threshold or when the context carries no URL to extract
/// features from.
pub fn anomaly_evaluator(
    detector: AnomalyDetector,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Ok(threshold) = value.trim().parse::<f64>() else {
            return EvalDecision::Unevaluated;
        };
        let Some(url) = env.context.param("url").or_else(|| env.context.object()) else {
            return EvalDecision::Unevaluated;
        };
        let features = RequestFeatures::from_url(url, env.now);
        let score = detector.score(env.context.subject(), &features);
        if score >= threshold {
            EvalDecision::Met
        } else {
            EvalDecision::NotMet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::{Param, SecurityContext};

    fn daytime(minutes: u64) -> Timestamp {
        Timestamp::from_millis(10 * 3_600_000 + minutes * 60_000)
    }

    fn trained_detector(user: &str) -> AnomalyDetector {
        let detector = AnomalyDetector::new();
        for i in 0..50 {
            let url = format!("/docs/page{}.html?id={}", i % 5, i % 10);
            detector.learn(user, &RequestFeatures::from_url(&url, daytime(i)));
        }
        detector
    }

    fn ctx(user: &str, url: &str) -> SecurityContext {
        SecurityContext::new()
            .with_user(user)
            .with_param(Param::new("url", "apache", url))
    }

    #[test]
    fn in_profile_requests_do_not_trip() {
        let eval = anomaly_evaluator(trained_detector("alice"));
        let ctx = ctx("alice", "/docs/page2.html?id=3");
        let env = EvalEnv::pre(&ctx, daytime(60));
        assert_eq!(eval("3.0", &env), EvalDecision::NotMet);
    }

    #[test]
    fn out_of_profile_requests_trip() {
        let eval = anomaly_evaluator(trained_detector("alice"));
        let huge = format!("/docs/page1.html?{}", "x".repeat(400));
        let ctx = ctx("alice", &huge);
        let env = EvalEnv::pre(&ctx, daytime(60));
        assert_eq!(eval("3.0", &env), EvalDecision::Met);
    }

    #[test]
    fn cold_start_principals_never_trip() {
        let eval = anomaly_evaluator(AnomalyDetector::new());
        let huge = format!("/x?{}", "q".repeat(400));
        let ctx = ctx("nobody", &huge);
        let env = EvalEnv::pre(&ctx, daytime(0));
        assert_eq!(eval("3.0", &env), EvalDecision::NotMet);
    }

    #[test]
    fn malformed_threshold_or_missing_url_unevaluated() {
        let eval = anomaly_evaluator(trained_detector("alice"));
        let with_url = ctx("alice", "/docs/page1.html");
        let env = EvalEnv::pre(&with_url, daytime(0));
        assert_eq!(eval("not-a-number", &env), EvalDecision::Unevaluated);

        let without_url = SecurityContext::new().with_user("alice");
        let env = EvalEnv::pre(&without_url, daytime(0));
        assert_eq!(eval("3.0", &env), EvalDecision::Unevaluated);
    }
}
