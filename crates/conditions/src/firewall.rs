//! Connection-level countermeasures.
//!
//! §1's response catalogue goes beyond denying a request: "modifying overall
//! system protection. Examples include terminating the session, logging the
//! user off the system, disabling local account or **blocking connections
//! from particular parts of the network or stopping selected services**
//! (e.g., disable ssh connections)."
//!
//! [`Firewall`] implements those two: a shared prefix/CIDR block list
//! consulted *before* request parsing (blocked sources cost no policy
//! evaluation at all), and a service kill-switch that answers 503 until an
//! administrator re-enables the service. Every mutation enqueues an
//! [`Alert`] for the administrator — automated blocking
//! without human review is exactly the DoS vector the paper warns about, so
//! the queue records what was done, to whom, and why, for easy reversal.

use crate::location::LocationPattern;
use gaa_audit::alert::{Alert, AlertQueue};
use gaa_audit::log::AuditSeverity;
use gaa_audit::time::{Clock, Timestamp};
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct FirewallState {
    rules: Vec<(String, LocationPattern)>,
}

/// Shared connection-level blocker and service switch.
///
/// Cloning shares all state.
#[derive(Clone)]
pub struct Firewall {
    state: Arc<RwLock<FirewallState>>,
    service_enabled: Arc<AtomicBool>,
    dropped: Arc<AtomicU64>,
    alerts: AlertQueue,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for Firewall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Firewall")
            .field("rules", &self.state.read().rules.len())
            .field(
                "service_enabled",
                &self.service_enabled.load(Ordering::Relaxed),
            )
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Firewall {
    /// An empty firewall (service enabled, nothing blocked).
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Firewall {
            state: Arc::new(RwLock::new(FirewallState { rules: Vec::new() })),
            service_enabled: Arc::new(AtomicBool::new(true)),
            dropped: Arc::new(AtomicU64::new(0)),
            alerts: AlertQueue::new(),
            clock,
        }
    }

    /// Uses `alerts` for administrator review instead of an internal queue.
    #[must_use]
    pub fn with_alert_queue(mut self, alerts: AlertQueue) -> Self {
        self.alerts = alerts;
        self
    }

    /// The administrator review queue.
    pub fn alerts(&self) -> &AlertQueue {
        &self.alerts
    }

    /// Blocks a network pattern (`10.`, `203.0.113.0/24`, a single address),
    /// citing `reason` in the admin alert. Malformed patterns are rejected
    /// (returned as `Err`) — a typo must not silently block nothing or
    /// everything.
    pub fn block(&self, pattern: &str, reason: &str) -> Result<(), String> {
        let parsed = LocationPattern::parse(pattern)
            .ok_or_else(|| format!("malformed network pattern `{pattern}`"))?;
        if matches!(parsed, LocationPattern::All) {
            return Err("refusing to block `all` (use disable_service)".to_string());
        }
        let mut state = self.state.write();
        if state.rules.iter().any(|(p, _)| p == pattern) {
            return Ok(()); // idempotent
        }
        state.rules.push((pattern.to_string(), parsed));
        drop(state);
        self.alerts.push(Alert {
            time: self.now(),
            severity: AuditSeverity::Alert,
            action_taken: format!("blocked network {pattern}"),
            reason: reason.to_string(),
            subject: pattern.to_string(),
        });
        Ok(())
    }

    /// Removes a block; returns whether it existed.
    pub fn unblock(&self, pattern: &str) -> bool {
        let mut state = self.state.write();
        let before = state.rules.len();
        state.rules.retain(|(p, _)| p != pattern);
        state.rules.len() != before
    }

    /// Is `ip` covered by any block rule?
    pub fn is_blocked(&self, ip: &str) -> bool {
        self.state
            .read()
            .rules
            .iter()
            .any(|(_, pattern)| pattern.matches(ip))
    }

    /// Records that a connection was refused (for reporting).
    pub fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections refused so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Currently blocked patterns, in insertion order.
    pub fn rules(&self) -> Vec<String> {
        self.state
            .read()
            .rules
            .iter()
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// Stops the service entirely (everything answers 503), citing `reason`.
    pub fn disable_service(&self, reason: &str) {
        let was_enabled = self.service_enabled.swap(false, Ordering::SeqCst);
        if was_enabled {
            self.alerts.push(Alert {
                time: self.now(),
                severity: AuditSeverity::Alert,
                action_taken: "service disabled".to_string(),
                reason: reason.to_string(),
                subject: "service".to_string(),
            });
        }
    }

    /// Re-enables the service (administrator action).
    pub fn enable_service(&self) {
        self.service_enabled.store(true, Ordering::SeqCst);
    }

    /// Is the service accepting requests?
    pub fn service_enabled(&self) -> bool {
        self.service_enabled.load(Ordering::SeqCst)
    }

    fn now(&self) -> Timestamp {
        self.clock.now()
    }
}

/// Builds the `block_network` response action (§1: "blocking connections
/// from particular parts of the network").
///
/// Value syntax reuses the action grammar: `on:failure/<scope>/info:<tag>`
/// with scope `ip` (block exactly the client address) or `subnet` (block
/// the client's /24). The action is Met whether or not it fired; it is
/// Unevaluated when no client address is available or the spec is
/// malformed.
pub fn block_network_evaluator(
    firewall: Firewall,
) -> impl Fn(&str, &gaa_core::EvalEnv<'_>) -> gaa_core::EvalDecision + Send + Sync {
    use crate::actions::ActionSpec;
    use gaa_core::EvalDecision;
    move |value: &str, env: &gaa_core::EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let outcome = match env.phase {
            gaa_eacl::CondPhase::Post => env.operation_outcome,
            _ => env.request_outcome,
        };
        let Some(outcome) = outcome else {
            return EvalDecision::Unevaluated;
        };
        if !spec.trigger.fires(outcome) {
            return EvalDecision::Met;
        }
        let Some(ip) = env.context.client_ip() else {
            return EvalDecision::Unevaluated;
        };
        let pattern = match spec.target.as_str() {
            "subnet" => match ip.rsplit_once('.') {
                Some((net, _)) => format!("{net}.0/24"),
                None => ip.to_string(),
            },
            _ => ip.to_string(), // "ip" and anything else: exact address
        };
        let reason = if spec.info.is_empty() {
            "policy response action".to_string()
        } else {
            spec.info.clone()
        };
        // For a well-formed client IP the derived pattern always parses; a
        // context carrying garbage is refused by the firewall's own
        // validation.
        let _ = firewall.block(&pattern, &reason);
        EvalDecision::Met
    }
}

/// Builds the `stop_service` response action (§1: "stopping selected
/// services"). Value: `on:failure/service/info:<reason>`.
pub fn stop_service_evaluator(
    firewall: Firewall,
) -> impl Fn(&str, &gaa_core::EvalEnv<'_>) -> gaa_core::EvalDecision + Send + Sync {
    use crate::actions::ActionSpec;
    use gaa_core::EvalDecision;
    move |value: &str, env: &gaa_core::EvalEnv<'_>| {
        let Some(spec) = ActionSpec::parse(value) else {
            return EvalDecision::Unevaluated;
        };
        let outcome = match env.phase {
            gaa_eacl::CondPhase::Post => env.operation_outcome,
            _ => env.request_outcome,
        };
        let Some(outcome) = outcome else {
            return EvalDecision::Unevaluated;
        };
        if spec.trigger.fires(outcome) {
            let reason = if spec.info.is_empty() {
                "policy response action".to_string()
            } else {
                spec.info.clone()
            };
            firewall.disable_service(&reason);
        }
        EvalDecision::Met
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::VirtualClock;

    fn firewall() -> Firewall {
        Firewall::new(Arc::new(VirtualClock::new()))
    }

    #[test]
    fn block_prefix_and_cidr() {
        let fw = firewall();
        fw.block("203.0.113.", "scan source").unwrap();
        fw.block("10.9.0.0/16", "compromised subnet").unwrap();
        assert!(fw.is_blocked("203.0.113.77"));
        assert!(fw.is_blocked("10.9.200.1"));
        assert!(!fw.is_blocked("10.8.0.1"));
        assert!(!fw.is_blocked("192.0.2.1"));
        assert_eq!(fw.rules().len(), 2);
    }

    #[test]
    fn block_is_idempotent_and_reversible() {
        let fw = firewall();
        fw.block("203.0.113.9", "x").unwrap();
        fw.block("203.0.113.9", "x").unwrap();
        assert_eq!(fw.rules().len(), 1);
        assert_eq!(
            fw.alerts().len(),
            1,
            "idempotent re-block must not re-alert"
        );
        assert!(fw.unblock("203.0.113.9"));
        assert!(!fw.unblock("203.0.113.9"));
        assert!(!fw.is_blocked("203.0.113.9"));
    }

    #[test]
    fn malformed_and_blanket_patterns_rejected() {
        let fw = firewall();
        assert!(fw.block("not-an-ip", "x").is_err());
        assert!(fw.block("all", "x").is_err());
        assert!(fw.rules().is_empty());
    }

    #[test]
    fn service_switch() {
        let fw = firewall();
        assert!(fw.service_enabled());
        fw.disable_service("under attack");
        assert!(!fw.service_enabled());
        fw.disable_service("again"); // no duplicate alert
        assert_eq!(fw.alerts().len(), 1);
        fw.enable_service();
        assert!(fw.service_enabled());
    }

    #[test]
    fn every_block_is_reviewable() {
        let fw = firewall();
        fw.block("203.0.113.9", "matched signature *phf*").unwrap();
        let alerts = fw.alerts().drain();
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].action_taken.contains("203.0.113.9"));
        assert!(alerts[0].reason.contains("*phf*"));
    }

    #[test]
    fn drop_counting() {
        let fw = firewall();
        fw.count_drop();
        fw.count_drop();
        assert_eq!(fw.dropped(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = firewall();
        let b = a.clone();
        a.block("10.", "x").unwrap();
        assert!(b.is_blocked("10.0.0.1"));
        b.disable_service("y");
        assert!(!a.service_enabled());
    }
}
