//! The `system_threat_level` condition (§7.1).
//!
//! Value syntax is a comparison against the IDS-supplied level:
//! `=high`, `>low`, `>=medium`, `<high`, `<=medium`, `!=low`. The §7.1
//! policies use `=high` (system-wide lockout) and `>low` (local
//! authentication requirement).

use gaa_core::dag::threat_comparison;
use gaa_core::{EvalDecision, EvalEnv};
use gaa_ids::ThreatMonitor;

/// Builds the `system_threat_level` evaluator over a shared
/// [`ThreatMonitor`].
///
/// The comparison algebra itself lives in
/// [`gaa_core::dag::threat_comparison`], which the symbolic GAA801 sweep
/// restricts over — the runtime evaluator and the DAG model must never
/// drift apart, so this delegates rather than reimplementing.
///
/// Malformed comparison values evaluate to `Unevaluated` (surface as
/// `MAYBE`), never to a silent grant.
pub fn threat_level_evaluator(
    monitor: ThreatMonitor,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, _env: &EvalEnv<'_>| match threat_comparison(
        value,
        monitor.current() as usize,
    ) {
        Some(true) => EvalDecision::Met,
        Some(false) => EvalDecision::NotMet,
        None => EvalDecision::Unevaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::{Timestamp, VirtualClock};
    use gaa_core::SecurityContext;
    use gaa_ids::ThreatLevel;
    use std::sync::Arc;
    use std::time::Duration;

    fn setup() -> (ThreatMonitor, SecurityContext) {
        let monitor =
            ThreatMonitor::new(Arc::new(VirtualClock::new())).with_decay_after(Duration::ZERO);
        (monitor, SecurityContext::new())
    }

    #[test]
    fn equality_comparison() {
        let (monitor, ctx) = setup();
        let eval = threat_level_evaluator(monitor.clone());
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        monitor.set_level(ThreatLevel::High);
        assert_eq!(eval("=high", &env), EvalDecision::Met);
        assert_eq!(eval("high", &env), EvalDecision::Met); // bare level
        monitor.set_level(ThreatLevel::Low);
        assert_eq!(eval("=high", &env), EvalDecision::NotMet);
    }

    #[test]
    fn ordering_comparisons() {
        let (monitor, ctx) = setup();
        let eval = threat_level_evaluator(monitor.clone());
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));

        monitor.set_level(ThreatLevel::Medium);
        assert_eq!(eval(">low", &env), EvalDecision::Met);
        assert_eq!(eval(">=medium", &env), EvalDecision::Met);
        assert_eq!(eval("<high", &env), EvalDecision::Met);
        assert_eq!(eval("<=low", &env), EvalDecision::NotMet);
        assert_eq!(eval("!=low", &env), EvalDecision::Met);

        monitor.set_level(ThreatLevel::Low);
        assert_eq!(eval(">low", &env), EvalDecision::NotMet);
        assert_eq!(eval("<=low", &env), EvalDecision::Met);
    }

    #[test]
    fn section_71_policies() {
        let (monitor, ctx) = setup();
        let eval = threat_level_evaluator(monitor.clone());
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));

        // System-wide mandatory deny guard: =high.
        // Local authentication guard: >low.
        for (level, sys_guard, local_guard) in [
            (ThreatLevel::Low, EvalDecision::NotMet, EvalDecision::NotMet),
            (ThreatLevel::Medium, EvalDecision::NotMet, EvalDecision::Met),
            (ThreatLevel::High, EvalDecision::Met, EvalDecision::Met),
        ] {
            monitor.set_level(level);
            assert_eq!(eval("=high", &env), sys_guard, "level {level}");
            assert_eq!(eval(">low", &env), local_guard, "level {level}");
        }
    }

    #[test]
    fn malformed_values_are_unevaluated() {
        let (monitor, ctx) = setup();
        let eval = threat_level_evaluator(monitor);
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(eval("=catastrophic", &env), EvalDecision::Unevaluated);
        assert_eq!(eval("", &env), EvalDecision::Unevaluated);
        assert_eq!(eval(">>high", &env), EvalDecision::Unevaluated);
    }

    #[test]
    fn whitespace_tolerated() {
        let (monitor, ctx) = setup();
        monitor.set_level(ThreatLevel::High);
        let eval = threat_level_evaluator(monitor);
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(eval("  >= medium ", &env), EvalDecision::Met);
    }
}
