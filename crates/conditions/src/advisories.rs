//! Applying IDS advisories to the policy services.
//!
//! §3: "The API can request information for adjusting policies, such as
//! values for thresholds, times and locations. The values may depend on
//! many factors and can be determined by a host-based IDS and communicated
//! to the GAA-API." The [`EventBus`] carries those
//! communications; [`AdvisoryApplier`] is the GAA-side consumer that folds
//! them into the shared services:
//!
//! * [`ThresholdUpdate`](IdsAdvisory::ThresholdUpdate) → an adaptive limit
//!   in the [`ThresholdTracker`](crate::ThresholdTracker) (consumed by
//!   `@param` threshold conditions);
//! * [`ThreatLevelChange`](IdsAdvisory::ThreatLevelChange) → the
//!   [`ThreatMonitor`](gaa_ids::ThreatMonitor) (consumed by
//!   `system_threat_level` conditions);
//! * [`SpoofingIndication`](IdsAdvisory::SpoofingIndication) and
//!   [`TimeWindowUpdate`](IdsAdvisory::TimeWindowUpdate) /
//!   [`LocationUpdate`](IdsAdvisory::LocationUpdate) are recorded in the
//!   audit log for the policy officer (applying them automatically would
//!   rewrite policy text — a human decision).

use crate::catalog::StandardServices;
use gaa_audit::log::{AuditRecord, AuditSeverity};
use gaa_ids::{EventBus, IdsAdvisory, Subscription};

/// GAA-side consumer of IDS advisories.
///
/// Call [`apply_pending`](AdvisoryApplier::apply_pending) from the serving
/// loop (or a timer); it drains the subscription and applies/records each
/// advisory.
pub struct AdvisoryApplier {
    subscription: Subscription<IdsAdvisory>,
    services: StandardServices,
}

impl AdvisoryApplier {
    /// Subscribes to `bus` and binds the applier to `services`.
    pub fn new(bus: &EventBus, services: StandardServices) -> Self {
        AdvisoryApplier {
            subscription: bus.subscribe_advisories(),
            services,
        }
    }

    /// Drains pending advisories, applying each; returns how many were
    /// processed.
    pub fn apply_pending(&self) -> usize {
        let advisories = self.subscription.drain();
        let count = advisories.len();
        for advisory in advisories {
            self.apply(advisory);
        }
        count
    }

    fn apply(&self, advisory: IdsAdvisory) {
        let now = self.services.clock.now();
        match advisory {
            IdsAdvisory::ThresholdUpdate { parameter, value } => {
                self.services.thresholds.set_limit(&parameter, value);
                self.services.audit.record(AuditRecord::new(
                    now,
                    AuditSeverity::Notice,
                    "advisory.threshold",
                    "ids",
                    format!("adaptive limit {parameter} set to {value}"),
                ));
            }
            IdsAdvisory::ThreatLevelChange { level } => {
                self.services.threat.set_level(level);
                self.services.audit.record(AuditRecord::new(
                    now,
                    AuditSeverity::Warning,
                    "advisory.threat_level",
                    "ids",
                    format!("system threat level set to {level}"),
                ));
            }
            IdsAdvisory::SpoofingIndication {
                source,
                spoofed,
                confidence,
            } => {
                self.services.audit.record(AuditRecord::new(
                    now,
                    AuditSeverity::Notice,
                    "advisory.spoofing",
                    source,
                    format!("spoofed={spoofed} confidence={confidence:.2}"),
                ));
            }
            IdsAdvisory::TimeWindowUpdate {
                start_hour,
                end_hour,
            } => {
                self.services.audit.record(AuditRecord::new(
                    now,
                    AuditSeverity::Notice,
                    "advisory.time_window",
                    "ids",
                    format!("recommended window {start_hour}-{end_hour} (policy edit required)"),
                ));
            }
            IdsAdvisory::LocationUpdate { allowed_prefix } => {
                self.services.audit.record(AuditRecord::new(
                    now,
                    AuditSeverity::Notice,
                    "advisory.location",
                    "ids",
                    format!("recommended allowed prefix {allowed_prefix} (policy edit required)"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::notify::CollectingNotifier;
    use gaa_audit::VirtualClock;
    use gaa_ids::ThreatLevel;
    use std::sync::Arc;

    fn setup() -> (EventBus, StandardServices, AdvisoryApplier) {
        let bus = EventBus::new();
        let services = StandardServices::new(
            Arc::new(VirtualClock::new()),
            Arc::new(CollectingNotifier::new()),
        );
        let applier = AdvisoryApplier::new(&bus, services.clone());
        (bus, services, applier)
    }

    #[test]
    fn threshold_updates_reach_the_tracker() {
        let (bus, services, applier) = setup();
        bus.publish_advisory(IdsAdvisory::ThresholdUpdate {
            parameter: "login_limit".into(),
            value: 4.0,
        });
        assert_eq!(applier.apply_pending(), 1);
        assert_eq!(services.thresholds.limit("login_limit"), Some(4.0));
        assert_eq!(services.audit.count_category("advisory.threshold"), 1);
    }

    #[test]
    fn threat_level_changes_reach_the_monitor() {
        let (bus, services, applier) = setup();
        bus.publish_advisory(IdsAdvisory::ThreatLevelChange {
            level: ThreatLevel::High,
        });
        applier.apply_pending();
        assert_eq!(services.threat.current(), ThreatLevel::High);
        assert_eq!(services.audit.count_category("advisory.threat_level"), 1);
    }

    #[test]
    fn recommendation_advisories_are_audited_not_applied() {
        let (bus, services, applier) = setup();
        bus.publish_advisory(IdsAdvisory::TimeWindowUpdate {
            start_hour: 9,
            end_hour: 17,
        });
        bus.publish_advisory(IdsAdvisory::LocationUpdate {
            allowed_prefix: "10.".into(),
        });
        bus.publish_advisory(IdsAdvisory::SpoofingIndication {
            source: "6.6.6.6".into(),
            spoofed: true,
            confidence: 0.9,
        });
        assert_eq!(applier.apply_pending(), 3);
        assert_eq!(services.audit.count_category("advisory.time_window"), 1);
        assert_eq!(services.audit.count_category("advisory.location"), 1);
        assert_eq!(services.audit.count_category("advisory.spoofing"), 1);
    }

    #[test]
    fn apply_pending_is_incremental() {
        let (bus, _services, applier) = setup();
        assert_eq!(applier.apply_pending(), 0);
        bus.publish_advisory(IdsAdvisory::ThresholdUpdate {
            parameter: "x".into(),
            value: 1.0,
        });
        assert_eq!(applier.apply_pending(), 1);
        assert_eq!(applier.apply_pending(), 0);
    }

    #[test]
    fn end_to_end_host_ids_to_condition() {
        // HostIds publishes -> applier applies -> the @param threshold
        // condition sees the adaptive limit.
        use crate::threshold::threshold_evaluator;
        use gaa_audit::Timestamp;
        use gaa_core::{EvalDecision, EvalEnv, SecurityContext};

        let (bus, services, applier) = setup();
        let host = gaa_ids::host::HostIds::new().with_bus(bus.clone());
        host.observe("req_rate", 5.0);
        host.observe("req_rate", 7.0);
        host.publish_threshold("req_rate", 2.0);
        applier.apply_pending();

        let eval = threshold_evaluator(services.thresholds.clone());
        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        // Limit is now known: the condition evaluates (to NotMet — no
        // events yet) instead of Unevaluated.
        assert_eq!(eval("hits:@req_rate/60", &env), EvalDecision::NotMet);
    }
}
