//! Access-identity conditions and the mutable group store.
//!
//! §7 uses three identity authorities:
//!
//! * `accessid USER <pattern>` — the authenticated user (pattern `*` means
//!   "any authenticated user", the §7.1 lockdown requirement);
//! * `accessid GROUP <group>` — membership in a named group. §7.2's
//!   `BadGuys` group is *mutable at run time*: the `update_log` response
//!   action appends attacker IPs, so later requests from those hosts are
//!   denied even when probing unknown vulnerabilities;
//! * `accessid HOST <prefix>` — the client host/IP (prefix or glob).
//!
//! Evaluation rules:
//!
//! * `USER`: no authenticated user → **Unevaluated** (the application can
//!   request credentials — §6 translates the resulting `MAYBE` to
//!   HTTP_AUTH_REQUIRED); user present → Met/NotMet by glob match;
//! * `GROUP`: Met when the context's groups *or* the shared [`GroupStore`]
//!   (keyed by user and by client IP) contain the group;
//! * `HOST`: Met when the client IP matches; no client IP → Unevaluated.

use gaa_core::{EvalDecision, EvalEnv};
use gaa_ids::matcher::glob_match_ci;
// Membership lock and version counter come from the gaa-race shim so the
// stamp protocol around them is model-checkable (passthrough in production).
use gaa_race::sync::{AtomicU64, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared, mutable group-membership store.
///
/// Backs `accessid GROUP` conditions and the `update_log` response action.
/// Members may be user names or IP addresses — §7.2 blacklists IPs.
/// Cloning shares the store.
#[derive(Debug, Clone, Default)]
pub struct GroupStore {
    groups: Arc<RwLock<HashMap<String, HashSet<String>>>>,
    version: Arc<AtomicU64>,
}

impl GroupStore {
    /// An empty store.
    pub fn new() -> Self {
        GroupStore::default()
    }

    /// Adds `member` to `group`; returns whether it was newly added.
    pub fn add(&self, group: &str, member: &str) -> bool {
        let mut groups = self.groups.write();
        let added = groups
            .entry(group.to_string())
            .or_default()
            .insert(member.to_string());
        if added {
            // ordering: Release, and deliberately *inside* the write
            // critical section. Bumping after the guard dropped (as an
            // earlier revision did) lets a reader observe the new
            // membership under a still-old version — a decision cache
            // keyed on the stamp would then cache a pre-change answer
            // under the post-change world. Holding the guard makes
            // "membership changed ⇒ version changed" atomic for any
            // version() reader that also takes the lock, and the Release
            // pairs with version()'s Acquire for lock-free readers.
            self.version.fetch_add(1, Ordering::Release);
        }
        drop(groups);
        added
    }

    /// Removes `member` from `group`; returns whether it was present.
    pub fn remove(&self, group: &str, member: &str) -> bool {
        let mut groups = self.groups.write();
        let removed = groups.get_mut(group).is_some_and(|set| set.remove(member));
        if removed {
            // ordering: Release inside the critical section — see add().
            self.version.fetch_add(1, Ordering::Release);
        }
        drop(groups);
        removed
    }

    /// A counter that advances on every actual membership change — the
    /// invalidation stamp consumed by authorization-decision caches, since
    /// `update_log` mutates membership mid-traffic (§7.2).
    pub fn version(&self) -> u64 {
        // ordering: Acquire, pairing with the Release bump in add/remove:
        // a reader that sees version N also sees every membership write
        // that preceded bump N.
        self.version.load(Ordering::Acquire)
    }

    /// Is `member` in `group`?
    pub fn contains(&self, group: &str, member: &str) -> bool {
        self.groups
            .read()
            .get(group)
            .is_some_and(|set| set.contains(member))
    }

    /// Number of members in `group` (0 when absent).
    pub fn len(&self, group: &str) -> usize {
        self.groups.read().get(group).map_or(0, HashSet::len)
    }

    /// Is `group` absent or empty?
    pub fn is_empty(&self, group: &str) -> bool {
        self.len(group) == 0
    }

    /// Snapshot of a group's members, sorted.
    pub fn members(&self, group: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .groups
            .read()
            .get(group)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }
}

/// Builds the `accessid USER` evaluator.
pub fn user_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| match env.context.user() {
        Some(user) if value == "*" || glob_match_ci(value, user) => EvalDecision::Met,
        Some(_) => EvalDecision::NotMet,
        None => EvalDecision::Unevaluated,
    }
}

/// Builds the `accessid GROUP` evaluator over a shared [`GroupStore`].
pub fn group_evaluator(
    store: GroupStore,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let group = value.trim();
        if env.context.in_group(group) {
            return EvalDecision::Met;
        }
        if let Some(user) = env.context.user() {
            if store.contains(group, user) {
                return EvalDecision::Met;
            }
        }
        if let Some(ip) = env.context.client_ip() {
            if store.contains(group, ip) {
                return EvalDecision::Met;
            }
        }
        EvalDecision::NotMet
    }
}

/// Builds the `accessid HOST` evaluator (prefix or glob on the client IP).
pub fn host_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| match env.context.client_ip() {
        Some(ip) => {
            let matched = value
                .split_whitespace()
                .any(|pat| ip.starts_with(pat) || glob_match_ci(pat, ip));
            if matched {
                EvalDecision::Met
            } else {
                EvalDecision::NotMet
            }
        }
        None => EvalDecision::Unevaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::SecurityContext;

    fn env_of(ctx: &SecurityContext) -> EvalEnv<'_> {
        EvalEnv::pre(ctx, Timestamp::from_millis(0))
    }

    #[test]
    fn group_store_add_remove_contains() {
        let store = GroupStore::new();
        assert!(store.is_empty("BadGuys"));
        assert!(store.add("BadGuys", "203.0.113.9"));
        assert!(!store.add("BadGuys", "203.0.113.9")); // duplicate
        assert!(store.contains("BadGuys", "203.0.113.9"));
        assert_eq!(store.len("BadGuys"), 1);
        assert_eq!(store.members("BadGuys"), vec!["203.0.113.9".to_string()]);
        assert!(store.remove("BadGuys", "203.0.113.9"));
        assert!(!store.remove("BadGuys", "203.0.113.9"));
        assert!(store.is_empty("BadGuys"));
    }

    #[test]
    fn version_advances_only_on_membership_changes() {
        let store = GroupStore::new();
        let start = store.version();
        assert!(store.add("BadGuys", "203.0.113.9"));
        assert_eq!(store.version(), start + 1);
        assert!(!store.add("BadGuys", "203.0.113.9")); // no-op duplicate
        assert_eq!(store.version(), start + 1);
        assert!(store.remove("BadGuys", "203.0.113.9"));
        assert_eq!(store.version(), start + 2);
        assert!(!store.remove("BadGuys", "203.0.113.9")); // no-op
        assert_eq!(store.version(), start + 2);
    }

    #[test]
    fn group_store_clones_share() {
        let a = GroupStore::new();
        let b = a.clone();
        a.add("G", "x");
        assert!(b.contains("G", "x"));
    }

    #[test]
    fn user_evaluator_tristate() {
        let eval = user_evaluator();
        let alice = SecurityContext::new().with_user("alice");
        let anon = SecurityContext::new();
        assert_eq!(eval("alice", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("*", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("bob", &env_of(&alice)), EvalDecision::NotMet);
        assert_eq!(eval("al*", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("*", &env_of(&anon)), EvalDecision::Unevaluated);
    }

    #[test]
    fn group_evaluator_checks_context_groups() {
        let eval = group_evaluator(GroupStore::new());
        let ctx = SecurityContext::new()
            .with_user("alice")
            .with_group("staff");
        assert_eq!(eval("staff", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("admins", &env_of(&ctx)), EvalDecision::NotMet);
    }

    #[test]
    fn group_evaluator_checks_store_by_user_and_ip() {
        let store = GroupStore::new();
        store.add("BadGuys", "203.0.113.9");
        store.add("VIPs", "alice");
        let eval = group_evaluator(store);

        let by_ip = SecurityContext::new().with_client_ip("203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&by_ip)), EvalDecision::Met);

        let by_user = SecurityContext::new()
            .with_user("alice")
            .with_client_ip("10.0.0.1");
        assert_eq!(eval("VIPs", &env_of(&by_user)), EvalDecision::Met);
        assert_eq!(eval("BadGuys", &env_of(&by_user)), EvalDecision::NotMet);

        let anon = SecurityContext::new();
        assert_eq!(eval("BadGuys", &env_of(&anon)), EvalDecision::NotMet);
    }

    #[test]
    fn blacklist_growth_changes_decision_without_reload() {
        // The §7.2 flow: same evaluator instance, store mutated between
        // requests.
        let store = GroupStore::new();
        let eval = group_evaluator(store.clone());
        let ctx = SecurityContext::new().with_client_ip("203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&ctx)), EvalDecision::NotMet);
        store.add("BadGuys", "203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&ctx)), EvalDecision::Met);
    }

    #[test]
    fn host_evaluator_prefix_and_glob() {
        let eval = host_evaluator();
        let ctx = SecurityContext::new().with_client_ip("128.9.160.23");
        assert_eq!(eval("128.9.", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("128.9.*", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("10.", &env_of(&ctx)), EvalDecision::NotMet);
        assert_eq!(eval("10. 128.9.", &env_of(&ctx)), EvalDecision::Met); // list

        let anon = SecurityContext::new();
        assert_eq!(eval("128.9.", &env_of(&anon)), EvalDecision::Unevaluated);
    }
}
