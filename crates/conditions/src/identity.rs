//! Access-identity conditions and the mutable group store.
//!
//! §7 uses three identity authorities:
//!
//! * `accessid USER <pattern>` — the authenticated user (pattern `*` means
//!   "any authenticated user", the §7.1 lockdown requirement);
//! * `accessid GROUP <group>` — membership in a named group. §7.2's
//!   `BadGuys` group is *mutable at run time*: the `update_log` response
//!   action appends attacker IPs, so later requests from those hosts are
//!   denied even when probing unknown vulnerabilities;
//! * `accessid HOST <prefix>` — the client host/IP (prefix or glob).
//!
//! Evaluation rules:
//!
//! * `USER`: no authenticated user → **Unevaluated** (the application can
//!   request credentials — §6 translates the resulting `MAYBE` to
//!   HTTP_AUTH_REQUIRED); user present → Met/NotMet by glob match;
//! * `GROUP`: Met when the context's groups *or* the shared [`GroupStore`]
//!   (keyed by user and by client IP) contain the group;
//! * `HOST`: Met when the client IP matches; no client IP → Unevaluated.

use gaa_core::{EvalDecision, EvalEnv};
use gaa_ids::matcher::glob_match_ci;
// Membership lock and version counter come from the gaa-race shim so the
// stamp protocol around them is model-checkable (passthrough in production).
use gaa_race::sync::{AtomicU64, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The two membership maps, kept under **one** lock so they can never be
/// observed out of sync: the forward map answers `contains(group, member)`,
/// the reverse index answers `groups_of(member)` without scanning every
/// group — the lookup shape the million-principal serving path needs.
#[derive(Debug, Default)]
struct Membership {
    groups: HashMap<String, HashSet<String>>,
    /// member → the groups holding it (the hashed principal index).
    members: HashMap<String, HashSet<String>>,
}

/// Shared, mutable group-membership store.
///
/// Backs `accessid GROUP` conditions and the `update_log` response action.
/// Members may be user names or IP addresses — §7.2 blacklists IPs.
/// Cloning shares the store. Both `contains` and `groups_of` are hash
/// lookups; the reverse index is maintained in the same critical section as
/// the forward map and the version bump, so a stamp reader can never see
/// one without the others.
#[derive(Debug, Clone, Default)]
pub struct GroupStore {
    groups: Arc<RwLock<Membership>>,
    version: Arc<AtomicU64>,
}

impl GroupStore {
    /// An empty store.
    pub fn new() -> Self {
        GroupStore::default()
    }

    /// Adds `member` to `group`; returns whether it was newly added.
    pub fn add(&self, group: &str, member: &str) -> bool {
        let mut groups = self.groups.write();
        let added = groups
            .groups
            .entry(group.to_string())
            .or_default()
            .insert(member.to_string());
        if added {
            groups
                .members
                .entry(member.to_string())
                .or_default()
                .insert(group.to_string());
            // ordering: Release, and deliberately *inside* the write
            // critical section. Bumping after the guard dropped (as an
            // earlier revision did) lets a reader observe the new
            // membership under a still-old version — a decision cache
            // keyed on the stamp would then cache a pre-change answer
            // under the post-change world. Holding the guard makes
            // "membership changed ⇒ version changed" atomic for any
            // version() reader that also takes the lock, and the Release
            // pairs with version()'s Acquire for lock-free readers. The
            // reverse index mutates under the same guard, so the stamp
            // protocol covers it for free.
            self.version.fetch_add(1, Ordering::Release);
        }
        drop(groups);
        added
    }

    /// Removes `member` from `group`; returns whether it was present.
    pub fn remove(&self, group: &str, member: &str) -> bool {
        let mut groups = self.groups.write();
        let removed = groups
            .groups
            .get_mut(group)
            .is_some_and(|set| set.remove(member));
        if removed {
            if let Some(set) = groups.members.get_mut(member) {
                set.remove(group);
                if set.is_empty() {
                    groups.members.remove(member);
                }
            }
            // ordering: Release inside the critical section — see add().
            self.version.fetch_add(1, Ordering::Release);
        }
        drop(groups);
        removed
    }

    /// A counter that advances on every actual membership change — the
    /// invalidation stamp consumed by authorization-decision caches, since
    /// `update_log` mutates membership mid-traffic (§7.2).
    pub fn version(&self) -> u64 {
        // ordering: Acquire, pairing with the Release bump in add/remove:
        // a reader that sees version N also sees every membership write
        // that preceded bump N.
        self.version.load(Ordering::Acquire)
    }

    /// Is `member` in `group`?
    pub fn contains(&self, group: &str, member: &str) -> bool {
        self.groups
            .read()
            .groups
            .get(group)
            .is_some_and(|set| set.contains(member))
    }

    /// Number of members in `group` (0 when absent).
    pub fn len(&self, group: &str) -> usize {
        self.groups.read().groups.get(group).map_or(0, HashSet::len)
    }

    /// Is `group` absent or empty?
    pub fn is_empty(&self, group: &str) -> bool {
        self.len(group) == 0
    }

    /// Snapshot of a group's members, sorted.
    pub fn members(&self, group: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .groups
            .read()
            .groups
            .get(group)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Snapshot of the groups holding `member`, sorted — one hash lookup in
    /// the reverse index, independent of how many groups exist.
    pub fn groups_of(&self, member: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .groups
            .read()
            .members
            .get(member)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Is `member` in any group at all? (Reverse-index probe.)
    pub fn in_any_group(&self, member: &str) -> bool {
        self.groups.read().members.contains_key(member)
    }
}

/// An append-only intern table for principal names.
///
/// At a million principals the serving path must not re-allocate the same
/// subject string on every request: the first sighting allocates one
/// `Arc<str>`, every later `intern` of the same text returns a clone of
/// that allocation (two pointer bumps). Cloning the table shares it.
#[derive(Debug, Clone, Default)]
pub struct SubjectTable {
    subjects: Arc<RwLock<HashSet<Arc<str>>>>,
}

impl SubjectTable {
    /// An empty table.
    pub fn new() -> Self {
        SubjectTable::default()
    }

    /// The shared allocation for `subject`, inserting it on first sight.
    pub fn intern(&self, subject: &str) -> Arc<str> {
        if let Some(hit) = self.subjects.read().get(subject) {
            return hit.clone();
        }
        let mut subjects = self.subjects.write();
        // Re-check under the write lock: another thread may have interned
        // the same subject between our read and write acquisitions.
        if let Some(hit) = subjects.get(subject) {
            return hit.clone();
        }
        let entry: Arc<str> = Arc::from(subject);
        subjects.insert(entry.clone());
        entry
    }

    /// Distinct subjects interned so far.
    pub fn len(&self) -> usize {
        self.subjects.read().len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the `accessid USER` evaluator.
pub fn user_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| match env.context.user() {
        Some(user) if value == "*" || glob_match_ci(value, user) => EvalDecision::Met,
        Some(_) => EvalDecision::NotMet,
        None => EvalDecision::Unevaluated,
    }
}

/// Builds the `accessid GROUP` evaluator over a shared [`GroupStore`].
pub fn group_evaluator(
    store: GroupStore,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let group = value.trim();
        if env.context.in_group(group) {
            return EvalDecision::Met;
        }
        if let Some(user) = env.context.user() {
            if store.contains(group, user) {
                return EvalDecision::Met;
            }
        }
        if let Some(ip) = env.context.client_ip() {
            if store.contains(group, ip) {
                return EvalDecision::Met;
            }
        }
        EvalDecision::NotMet
    }
}

/// Builds the `accessid HOST` evaluator (prefix or glob on the client IP).
pub fn host_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| match env.context.client_ip() {
        Some(ip) => {
            let matched = value
                .split_whitespace()
                .any(|pat| ip.starts_with(pat) || glob_match_ci(pat, ip));
            if matched {
                EvalDecision::Met
            } else {
                EvalDecision::NotMet
            }
        }
        None => EvalDecision::Unevaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::SecurityContext;

    fn env_of(ctx: &SecurityContext) -> EvalEnv<'_> {
        EvalEnv::pre(ctx, Timestamp::from_millis(0))
    }

    #[test]
    fn group_store_add_remove_contains() {
        let store = GroupStore::new();
        assert!(store.is_empty("BadGuys"));
        assert!(store.add("BadGuys", "203.0.113.9"));
        assert!(!store.add("BadGuys", "203.0.113.9")); // duplicate
        assert!(store.contains("BadGuys", "203.0.113.9"));
        assert_eq!(store.len("BadGuys"), 1);
        assert_eq!(store.members("BadGuys"), vec!["203.0.113.9".to_string()]);
        assert!(store.remove("BadGuys", "203.0.113.9"));
        assert!(!store.remove("BadGuys", "203.0.113.9"));
        assert!(store.is_empty("BadGuys"));
    }

    #[test]
    fn version_advances_only_on_membership_changes() {
        let store = GroupStore::new();
        let start = store.version();
        assert!(store.add("BadGuys", "203.0.113.9"));
        assert_eq!(store.version(), start + 1);
        assert!(!store.add("BadGuys", "203.0.113.9")); // no-op duplicate
        assert_eq!(store.version(), start + 1);
        assert!(store.remove("BadGuys", "203.0.113.9"));
        assert_eq!(store.version(), start + 2);
        assert!(!store.remove("BadGuys", "203.0.113.9")); // no-op
        assert_eq!(store.version(), start + 2);
    }

    #[test]
    fn reverse_index_tracks_membership() {
        let store = GroupStore::new();
        assert!(!store.in_any_group("alice"));
        store.add("staff", "alice");
        store.add("VIPs", "alice");
        store.add("staff", "bob");
        assert_eq!(
            store.groups_of("alice"),
            vec!["VIPs".to_string(), "staff".to_string()]
        );
        assert!(store.in_any_group("alice"));
        store.remove("VIPs", "alice");
        assert_eq!(store.groups_of("alice"), vec!["staff".to_string()]);
        store.remove("staff", "alice");
        assert!(store.groups_of("alice").is_empty());
        assert!(!store.in_any_group("alice"));
        // The forward map was untouched for the other member.
        assert!(store.contains("staff", "bob"));
        assert_eq!(store.groups_of("bob"), vec!["staff".to_string()]);
    }

    #[test]
    fn mutation_invalidates_index_and_stamped_cache_entries() {
        // The regression the version protocol exists for: a decision cached
        // under a stamp embedding version N must die when membership (and
        // with it the reverse index) changes, because the stamp component
        // moves to N+1 in the same critical section.
        use gaa_core::{DecisionCache, GaaStatus};
        let store = GroupStore::new();
        store.add("staff", "alice");
        let cache = DecisionCache::new();
        let stamp = [7u64, 0, store.version()];
        cache.insert(stamp, "alice-GET-/doc", GaaStatus::Yes);
        assert_eq!(cache.lookup(stamp, "alice-GET-/doc"), Some(GaaStatus::Yes));
        assert_eq!(store.groups_of("alice"), vec!["staff".to_string()]);

        // One mutation: index and stamp move together.
        store.remove("staff", "alice");
        assert!(store.groups_of("alice").is_empty(), "index invalidated");
        let fresh = [7u64, 0, store.version()];
        assert_ne!(fresh, stamp);
        assert_eq!(
            cache.lookup(fresh, "alice-GET-/doc"),
            None,
            "stale grant must not survive the membership change"
        );
    }

    #[test]
    fn subject_table_interns_once() {
        let table = SubjectTable::new();
        let a = table.intern("alice");
        let b = table.intern("alice");
        assert!(Arc::ptr_eq(&a, &b), "same allocation on repeat intern");
        let c = table.intern("bob");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(table.len(), 2);
        // Shared across clones.
        let shared = table.clone();
        assert!(Arc::ptr_eq(&shared.intern("alice"), &a));
    }

    #[test]
    fn group_store_clones_share() {
        let a = GroupStore::new();
        let b = a.clone();
        a.add("G", "x");
        assert!(b.contains("G", "x"));
    }

    #[test]
    fn user_evaluator_tristate() {
        let eval = user_evaluator();
        let alice = SecurityContext::new().with_user("alice");
        let anon = SecurityContext::new();
        assert_eq!(eval("alice", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("*", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("bob", &env_of(&alice)), EvalDecision::NotMet);
        assert_eq!(eval("al*", &env_of(&alice)), EvalDecision::Met);
        assert_eq!(eval("*", &env_of(&anon)), EvalDecision::Unevaluated);
    }

    #[test]
    fn group_evaluator_checks_context_groups() {
        let eval = group_evaluator(GroupStore::new());
        let ctx = SecurityContext::new()
            .with_user("alice")
            .with_group("staff");
        assert_eq!(eval("staff", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("admins", &env_of(&ctx)), EvalDecision::NotMet);
    }

    #[test]
    fn group_evaluator_checks_store_by_user_and_ip() {
        let store = GroupStore::new();
        store.add("BadGuys", "203.0.113.9");
        store.add("VIPs", "alice");
        let eval = group_evaluator(store);

        let by_ip = SecurityContext::new().with_client_ip("203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&by_ip)), EvalDecision::Met);

        let by_user = SecurityContext::new()
            .with_user("alice")
            .with_client_ip("10.0.0.1");
        assert_eq!(eval("VIPs", &env_of(&by_user)), EvalDecision::Met);
        assert_eq!(eval("BadGuys", &env_of(&by_user)), EvalDecision::NotMet);

        let anon = SecurityContext::new();
        assert_eq!(eval("BadGuys", &env_of(&anon)), EvalDecision::NotMet);
    }

    #[test]
    fn blacklist_growth_changes_decision_without_reload() {
        // The §7.2 flow: same evaluator instance, store mutated between
        // requests.
        let store = GroupStore::new();
        let eval = group_evaluator(store.clone());
        let ctx = SecurityContext::new().with_client_ip("203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&ctx)), EvalDecision::NotMet);
        store.add("BadGuys", "203.0.113.9");
        assert_eq!(eval("BadGuys", &env_of(&ctx)), EvalDecision::Met);
    }

    #[test]
    fn host_evaluator_prefix_and_glob() {
        let eval = host_evaluator();
        let ctx = SecurityContext::new().with_client_ip("128.9.160.23");
        assert_eq!(eval("128.9.", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("128.9.*", &env_of(&ctx)), EvalDecision::Met);
        assert_eq!(eval("10.", &env_of(&ctx)), EvalDecision::NotMet);
        assert_eq!(eval("10. 128.9.", &env_of(&ctx)), EvalDecision::Met); // list

        let anon = SecurityContext::new();
        assert_eq!(eval("128.9.", &env_of(&anon)), EvalDecision::Unevaluated);
    }
}
