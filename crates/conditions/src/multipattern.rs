//! Multi-pattern compilation: the whole pattern set in one pass.
//!
//! Policies and the §7.2 signature database both match glob / `re:` patterns
//! against the request line — and until this module existed, each pattern
//! ran its own scan, making matching cost O(patterns) on the hottest
//! attacker-controlled path. [`CombinedMatcher`] compiles an entire pattern
//! set once and answers *every* pattern's verdict in a single pass:
//!
//! * **Aho-Corasick tier** — globs of the form `*literal*` (every signature
//!   the paper names) collapse to case-folded substring search; all their
//!   literals share one [`gaa_ids::matcher::AhoCorasick`] automaton.
//! * **Merged-NFA tier** — `re:` patterns are Thompson-compiled by
//!   [`crate::regex`], merged into one state arena with per-pattern accept
//!   bits, and simulated through a lazily-constructed DFA (subset states
//!   interned on demand, dense ASCII rows). If the DFA grows past its
//!   budget it degrades to direct NFA-set simulation — still linear in the
//!   input, never wrong.
//! * **Trivial tiers** — all-star globs are constant-true, star-free globs
//!   are a case-insensitive equality check, invalid `re:` patterns are
//!   constant-false (parity with the per-pattern path, where they never
//!   match).
//! * **Residual tier** — globs the automata cannot express faithfully
//!   (anything containing `?`, which matches one *byte* while the regex
//!   engine walks *chars*, or multi-segment stars) fall back to the exact
//!   per-pattern two-pointer matcher. Fail-safe: a pattern the compiler
//!   cannot place never changes verdict, only speed.
//!
//! [`CompiledSignatureDb`] wraps a [`SignatureDb`] in a combined matcher
//! keyed by [`SignatureDb::version`]; [`PatternOracle`] carries one pass's
//! verdicts into [`crate::regex::signature_matches`] via a scoped
//! thread-local so the evaluator registry (whose signature is fixed) can
//! read them without re-scanning.
//!
//! The [`analysis`] submodule exposes the same automata to `gaa-analyze`
//! for the GAA701–705 pattern lints: per-pattern NFAs with an exact
//! representative alphabet (every `CharSpec` boundary ±1), product-walk
//! language inclusion, emptiness, and seeded accepted-string sampling for
//! differential replay.

use crate::regex::{compile_cached, CharSpec, Regex, State, REGEX_PREFIX};
use gaa_ids::matcher::{glob_match_ci, AhoCorasick};
use gaa_ids::signatures::Matcher;
use gaa_ids::{AttackSignature, SignatureDb, SignatureMatch};
use gaa_race::sync::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;

/// Per-pattern placement decided at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tier {
    /// Glob consisting only of `*`s: matches every text.
    AlwaysTrue,
    /// Invalid `re:` pattern: never matches (parity with the per-pattern
    /// path, which treats compile failures as non-matching).
    NeverTrue,
    /// Star-free, `?`-free glob: case-insensitive equality with the text.
    Exact,
    /// `*literal*` glob: answered by the shared Aho-Corasick automaton.
    Substring,
    /// Valid `re:` pattern: answered by the merged NFA / lazy DFA.
    Merged,
    /// Anything else: exact per-pattern fallback (`?` globs keep their
    /// byte-level semantics, multi-segment star globs keep two-pointer).
    Residual,
}

/// How many patterns landed in each tier (diagnostics for benches/docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Constant-true patterns (all-star globs).
    pub always_true: usize,
    /// Constant-false patterns (invalid regexes).
    pub never_true: usize,
    /// Case-insensitive exact-equality globs.
    pub exact: usize,
    /// Aho-Corasick substring globs.
    pub substring: usize,
    /// Merged-NFA regexes.
    pub merged: usize,
    /// Per-pattern fallback.
    pub residual: usize,
}

/// Bitset of per-pattern verdicts returned by [`CombinedMatcher::match_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSet {
    bits: Vec<u64>,
    len: usize,
}

impl MatchSet {
    fn new(len: usize) -> Self {
        MatchSet {
            bits: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.bits[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Did pattern `idx` (by position in the compiled set) match?
    #[inline]
    pub fn matched(&self, idx: usize) -> bool {
        idx < self.len && self.bits[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indices of all matched patterns, ascending.
    pub fn matched_indices(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.matched(i)).collect()
    }
}

#[inline]
fn or_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d |= *s;
    }
}

// ---- merged NFA + lazy DFA ----

/// Budget for interned DFA states. Past this the matcher degrades to direct
/// NFA-set simulation — still linear per input char, never incorrect.
const MAX_DFA_STATES: usize = 2048;

struct MergedNfa {
    /// All patterns' NFA states copied into one arena.
    states: Vec<State>,
    /// `accept_owner[s] = Some((pattern_idx, anchored_end))` when arena
    /// state `s` is the accept state of that pattern.
    accept_owner: Vec<Option<(usize, bool)>>,
    /// Start states re-injected at every input position (unanchored `^`).
    starts_unanchored: Vec<usize>,
    /// Start states live only at position 0 (`^`-anchored).
    starts_anchored: Vec<usize>,
    /// Epsilon closure of the unanchored starts, precomputed.
    unanchored_closure: Vec<u32>,
    /// Total pattern count of the owning matcher (bit-vector width).
    width: usize,
    /// Lazily constructed DFA over subset states. `// ordering:` the Mutex
    /// serializes all DFA reads and construction; no atomics involved.
    dfa: Mutex<Dfa>,
}

struct Dfa {
    states: Vec<DfaState>,
    intern: HashMap<Vec<u32>, u32>,
    /// Set when the state budget was exhausted; all subsequent calls take
    /// the NFA-simulation path.
    saturated: bool,
}

struct DfaState {
    /// Sorted arena-state subset this DFA state denotes.
    set: Vec<u32>,
    /// Dense transitions for ASCII; `-1` = not yet constructed.
    ascii: [i32; 128],
    /// Sparse transitions for everything else.
    other: HashMap<char, u32>,
    /// Patterns (unanchored-`$`) accepting in this state — sticky during a
    /// scan: once seen, the pattern has matched.
    immediate: Vec<u64>,
    /// Patterns (`$`-anchored) accepting in this state — counted only when
    /// the input ends here.
    fin: Vec<u64>,
}

impl MergedNfa {
    fn build(width: usize, regexes: &[(usize, Regex)]) -> MergedNfa {
        let mut states = Vec::new();
        let mut accept_owner = Vec::new();
        let mut starts_unanchored = Vec::new();
        let mut starts_anchored = Vec::new();
        for (pattern_idx, re) in regexes {
            let off = states.len();
            for st in re.states() {
                let shifted = match st {
                    State::Char { spec, next } => State::Char {
                        spec: spec.clone(),
                        next: next + off,
                    },
                    State::Split { a, b } => State::Split {
                        a: a + off,
                        b: b + off,
                    },
                    State::Accept => State::Accept,
                };
                accept_owner.push(match st {
                    State::Accept => Some((*pattern_idx, re.anchored_end())),
                    _ => None,
                });
                states.push(shifted);
            }
            let start = re.start() + off;
            if re.anchored_start() {
                starts_anchored.push(start);
            } else {
                starts_unanchored.push(start);
            }
        }
        let mut nfa = MergedNfa {
            states,
            accept_owner,
            starts_unanchored,
            starts_anchored,
            unanchored_closure: Vec::new(),
            width,
            dfa: Mutex::new(Dfa {
                states: Vec::new(),
                intern: HashMap::new(),
                saturated: false,
            }),
        };
        nfa.unanchored_closure = nfa.closure(nfa.starts_unanchored.clone());
        let initial = nfa.closure(
            nfa.starts_anchored
                .iter()
                .chain(nfa.starts_unanchored.iter())
                .copied()
                .collect(),
        );
        let root = nfa.dfa_state_for(&initial);
        let mut dfa = nfa.dfa.lock();
        dfa.intern.insert(initial.clone(), 0);
        dfa.states.push(root);
        drop(dfa);
        nfa
    }

    /// Sorted epsilon closure of `seeds`.
    fn closure(&self, seeds: Vec<usize>) -> Vec<u32> {
        let mut active = vec![false; self.states.len()];
        let mut stack = seeds;
        while let Some(s) = stack.pop() {
            if s >= active.len() || active[s] {
                continue;
            }
            active[s] = true;
            if let State::Split { a, b } = self.states[s] {
                stack.push(a);
                stack.push(b);
            }
        }
        active
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// The subset reached from `set` on `c`, with unanchored starts
    /// re-injected (implicit leading `.*` of unanchored search).
    fn move_set(&self, set: &[u32], c: char) -> Vec<u32> {
        let mut seeds: Vec<usize> = Vec::new();
        for &s in set {
            if let State::Char { spec, next } = &self.states[s as usize] {
                if spec.matches(c) {
                    seeds.push(*next);
                }
            }
        }
        let mut active = vec![false; self.states.len()];
        let mut stack = seeds;
        while let Some(s) = stack.pop() {
            if s >= active.len() || active[s] {
                continue;
            }
            active[s] = true;
            if let State::Split { a, b } = self.states[s] {
                stack.push(a);
                stack.push(b);
            }
        }
        for &s in &self.unanchored_closure {
            active[s as usize] = true;
        }
        active
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Builds the accept bit-vectors for a subset and wraps it as a DFA state.
    fn dfa_state_for(&self, set: &[u32]) -> DfaState {
        let words = self.width.div_ceil(64);
        let mut immediate = vec![0u64; words];
        let mut fin = vec![0u64; words];
        for &s in set {
            if let Some((pattern, anchored_end)) = self.accept_owner[s as usize] {
                let target = if anchored_end {
                    &mut fin
                } else {
                    &mut immediate
                };
                target[pattern / 64] |= 1u64 << (pattern % 64);
            }
        }
        // An unanchored-end accept is also an end-of-input accept.
        let fin_total: Vec<u64> = fin
            .iter()
            .zip(immediate.iter())
            .map(|(f, i)| f | i)
            .collect();
        DfaState {
            set: set.to_vec(),
            ascii: [-1; 128],
            other: HashMap::new(),
            immediate,
            fin: fin_total,
        }
    }

    /// One DFA transition, constructing the target on demand. `None` means
    /// the state budget is exhausted (caller falls back to NFA simulation).
    fn dfa_step(&self, dfa: &mut Dfa, from: u32, c: char) -> Option<u32> {
        let cached = if (c as u32) < 128 {
            let t = dfa.states[from as usize].ascii[c as usize];
            if t >= 0 {
                Some(t as u32)
            } else {
                None
            }
        } else {
            dfa.states[from as usize].other.get(&c).copied()
        };
        if let Some(t) = cached {
            return Some(t);
        }
        let target_set = self.move_set(&dfa.states[from as usize].set, c);
        let target = if let Some(&t) = dfa.intern.get(&target_set) {
            t
        } else {
            if dfa.states.len() >= MAX_DFA_STATES {
                return None;
            }
            let t = dfa.states.len() as u32;
            let st = self.dfa_state_for(&target_set);
            dfa.intern.insert(target_set, t);
            dfa.states.push(st);
            t
        };
        if (c as u32) < 128 {
            dfa.states[from as usize].ascii[c as usize] = target as i32;
        } else {
            dfa.states[from as usize].other.insert(c, target);
        }
        Some(target)
    }

    /// Single pass over `text`; ORs every matching pattern's bit into `out`.
    fn match_into(&self, text: &str, out: &mut MatchSet) {
        {
            let mut dfa = self.dfa.lock();
            if !dfa.saturated {
                let words = self.width.div_ceil(64);
                let mut sticky = vec![0u64; words];
                let mut sid = 0u32;
                or_into(&mut sticky, &dfa.states[0].immediate);
                let mut exhausted = false;
                for c in text.chars() {
                    match self.dfa_step(&mut dfa, sid, c) {
                        Some(next) => {
                            sid = next;
                            or_into(&mut sticky, &dfa.states[sid as usize].immediate);
                        }
                        None => {
                            exhausted = true;
                            break;
                        }
                    }
                }
                if !exhausted {
                    or_into(&mut out.bits, &sticky);
                    or_into(&mut out.bits, &dfa.states[sid as usize].fin);
                    return;
                }
                dfa.saturated = true;
            }
        }
        self.nfa_scan(text, out);
    }

    /// Direct NFA-set simulation (budget-exhaustion fallback; also the
    /// reference the DFA path is property-tested against).
    fn nfa_scan(&self, text: &str, out: &mut MatchSet) {
        let words = self.width.div_ceil(64);
        let mut sticky = vec![0u64; words];
        let mut current = self.closure(
            self.starts_anchored
                .iter()
                .chain(self.starts_unanchored.iter())
                .copied()
                .collect(),
        );
        let (imm, _) = self.accept_bits(&current, words);
        or_into(&mut sticky, &imm);
        for c in text.chars() {
            current = self.move_set(&current, c);
            let (imm, _) = self.accept_bits(&current, words);
            or_into(&mut sticky, &imm);
        }
        let (_, fin) = self.accept_bits(&current, words);
        or_into(&mut out.bits, &sticky);
        or_into(&mut out.bits, &fin);
    }

    fn accept_bits(&self, set: &[u32], words: usize) -> (Vec<u64>, Vec<u64>) {
        let mut immediate = vec![0u64; words];
        let mut fin = vec![0u64; words];
        for &s in set {
            if let Some((pattern, anchored_end)) = self.accept_owner[s as usize] {
                let target = if anchored_end {
                    &mut fin
                } else {
                    &mut immediate
                };
                target[pattern / 64] |= 1u64 << (pattern % 64);
            }
        }
        let fin_total: Vec<u64> = fin
            .iter()
            .zip(immediate.iter())
            .map(|(f, i)| f | i)
            .collect();
        (immediate, fin_total)
    }

    /// Interned DFA states so far (diagnostics).
    fn dfa_states(&self) -> usize {
        self.dfa.lock().states.len()
    }
}

// ---- the combined matcher ----

/// A whole pattern set compiled for single-pass evaluation.
///
/// Patterns use the condition-value dialect: globs by default,
/// [`REGEX_PREFIX`]-prefixed regexes. Verdict parity with the per-pattern
/// reference ([`match_one`]) is the load-bearing invariant — it is enforced
/// by property tests here, by the `pattern_match` bench's differential
/// gate, and (for lint claims built on these automata) by `gaa-analyze`'s
/// replay harness.
///
/// # Examples
///
/// ```rust
/// use gaa_conditions::multipattern::CombinedMatcher;
///
/// let set = CombinedMatcher::compile(&[
///     "*phf*".to_string(),
///     "re:%[0-9a-f][0-9a-f]".to_string(),
///     "*test-cgi*".to_string(),
/// ]);
/// let hits = set.match_set("GET /cgi-bin/phf?x=%c0 HTTP/1.0");
/// assert!(hits.matched(0) && hits.matched(1) && !hits.matched(2));
/// ```
pub struct CombinedMatcher {
    patterns: Vec<String>,
    tiers: Vec<Tier>,
    /// Folded literal for `Exact` patterns, indexed like `patterns`.
    exact: Vec<Option<String>>,
    ac: Option<AhoCorasick>,
    merged: Option<MergedNfa>,
    residual: Vec<usize>,
    counts: TierCounts,
}

impl CombinedMatcher {
    /// Compiles `patterns` (condition-value dialect). Never fails: patterns
    /// the automata cannot hold are placed in the per-pattern residual tier.
    pub fn compile(patterns: &[String]) -> CombinedMatcher {
        let mut tiers = Vec::with_capacity(patterns.len());
        let mut exact = vec![None; patterns.len()];
        let mut needles: Vec<(usize, String)> = Vec::new();
        let mut regexes: Vec<(usize, Regex)> = Vec::new();
        let mut residual = Vec::new();
        let mut counts = TierCounts::default();

        for (idx, pattern) in patterns.iter().enumerate() {
            if let Some(src) = pattern.strip_prefix(REGEX_PREFIX) {
                match Regex::new(src) {
                    Ok(re) => {
                        counts.merged += 1;
                        regexes.push((idx, re));
                        tiers.push(Tier::Merged);
                    }
                    Err(_) => {
                        counts.never_true += 1;
                        tiers.push(Tier::NeverTrue);
                    }
                }
                continue;
            }
            // Glob dialect.
            if pattern.contains('?') {
                // `?` matches one *byte*; the automata walk chars. Keep the
                // exact byte semantics via the two-pointer matcher.
                counts.residual += 1;
                residual.push(idx);
                tiers.push(Tier::Residual);
                continue;
            }
            let core = pattern.trim_matches('*');
            let leading = pattern.len() - pattern.trim_start_matches('*').len();
            let trailing = pattern.len() - pattern.trim_end_matches('*').len();
            if core.is_empty() {
                if pattern.is_empty() {
                    // Empty glob matches only the empty text.
                    counts.exact += 1;
                    exact[idx] = Some(String::new());
                    tiers.push(Tier::Exact);
                } else {
                    counts.always_true += 1;
                    tiers.push(Tier::AlwaysTrue);
                }
            } else if !core.contains('*') && leading >= 1 && trailing >= 1 {
                counts.substring += 1;
                needles.push((idx, core.to_ascii_lowercase()));
                tiers.push(Tier::Substring);
            } else if !pattern.contains('*') {
                counts.exact += 1;
                exact[idx] = Some(pattern.to_ascii_lowercase());
                tiers.push(Tier::Exact);
            } else {
                // Anchored or multi-segment star glob: two-pointer fallback.
                counts.residual += 1;
                residual.push(idx);
                tiers.push(Tier::Residual);
            }
        }

        let ac = if needles.is_empty() {
            None
        } else {
            Some(AhoCorasick::new(&needles))
        };
        let merged = if regexes.is_empty() {
            None
        } else {
            Some(MergedNfa::build(patterns.len(), &regexes))
        };
        CombinedMatcher {
            patterns: patterns.to_vec(),
            tiers,
            exact,
            ac,
            merged,
            residual,
            counts,
        }
    }

    /// The compiled pattern sources, in input order.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns were compiled.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Tier placement statistics.
    pub fn tier_counts(&self) -> TierCounts {
        self.counts
    }

    /// Interned lazy-DFA states constructed so far (0 when the set holds no
    /// regexes). Diagnostics for benches and lint budgets.
    pub fn dfa_states(&self) -> usize {
        self.merged.as_ref().map_or(0, |m| m.dfa_states())
    }

    /// Evaluates every pattern against `text` in one pass.
    pub fn match_set(&self, text: &str) -> MatchSet {
        let mut out = MatchSet::new(self.patterns.len());
        for (idx, tier) in self.tiers.iter().enumerate() {
            match tier {
                Tier::AlwaysTrue => out.set(idx),
                Tier::Exact => {
                    if let Some(lit) = &self.exact[idx] {
                        if lit.len() == text.len() && lit.eq_ignore_ascii_case(text) {
                            out.set(idx);
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(ac) = &self.ac {
            ac.scan(text, &mut |idx| out.set(idx));
        }
        if let Some(merged) = &self.merged {
            merged.match_into(text, &mut out);
        }
        for &idx in &self.residual {
            if glob_match_ci(&self.patterns[idx], text) {
                out.set(idx);
            }
        }
        out
    }

    /// Reference evaluation: every pattern through the per-pattern path.
    /// The differential gates compare this against [`Self::match_set`].
    pub fn match_set_per_pattern(&self, text: &str) -> MatchSet {
        let mut out = MatchSet::new(self.patterns.len());
        for (idx, pattern) in self.patterns.iter().enumerate() {
            if match_one(pattern, text) {
                out.set(idx);
            }
        }
        out
    }
}

/// The per-pattern reference matcher: exactly what the evaluator does for
/// a single pattern token (glob via the case-folded two-pointer scan,
/// `re:` via the process-wide compiled-regex cache, invalid regexes never
/// match). Combined-tier results are defined as agreeing with this.
pub fn match_one(pattern: &str, text: &str) -> bool {
    if let Some(src) = pattern.strip_prefix(REGEX_PREFIX) {
        compile_cached(src).is_some_and(|re| re.is_match(text))
    } else {
        glob_match_ci(pattern, text)
    }
}

// ---- compiled signature database ----

/// A [`SignatureDb`] compiled for single-pass scanning.
///
/// Scan results are identical to [`SignatureDb::scan`] (same matches, same
/// database order); the glob work collapses into one [`CombinedMatcher`]
/// pass. Stamped with [`SignatureDb::version`] so callers can detect a
/// stale compilation after runtime `add`/`remove`.
pub struct CompiledSignatureDb {
    version: u64,
    matcher: CombinedMatcher,
    plan: Vec<SigPlan>,
    sigs: Vec<AttackSignature>,
}

enum SigPlan {
    /// Index into the combined matcher's pattern list.
    Glob(usize),
    /// `input_len > bound`.
    Len(usize),
}

impl CompiledSignatureDb {
    /// Compiles the database's current contents.
    pub fn compile(db: &SignatureDb) -> CompiledSignatureDb {
        let mut patterns = Vec::new();
        let mut plan = Vec::new();
        for sig in db.signatures() {
            match &sig.matcher {
                Matcher::UrlGlob(glob) => {
                    plan.push(SigPlan::Glob(patterns.len()));
                    patterns.push(glob.clone());
                }
                Matcher::InputLongerThan(bound) => plan.push(SigPlan::Len(*bound)),
            }
        }
        CompiledSignatureDb {
            version: db.version(),
            matcher: CombinedMatcher::compile(&patterns),
            plan,
            sigs: db.signatures().to_vec(),
        }
    }

    /// The [`SignatureDb::version`] this compilation reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying combined matcher (analysis/diagnostics).
    pub fn matcher(&self) -> &CombinedMatcher {
        &self.matcher
    }

    /// Single-pass equivalent of [`SignatureDb::scan`].
    pub fn scan(&self, request_line: &str, input_len: usize) -> Vec<SignatureMatch> {
        let hits = self.matcher.match_set(request_line);
        self.sigs
            .iter()
            .zip(self.plan.iter())
            .filter(|(_, plan)| match plan {
                SigPlan::Glob(idx) => hits.matched(*idx),
                SigPlan::Len(bound) => input_len > *bound,
            })
            .map(|(s, _)| SignatureMatch {
                id: s.id.clone(),
                class: s.class,
                severity: s.severity,
                confidence: s.confidence,
                recommendation: s.recommendation.clone(),
            })
            .collect()
    }

    /// Single-pass equivalent of [`SignatureDb::worst_match`].
    pub fn worst_match(&self, request_line: &str, input_len: usize) -> Option<SignatureMatch> {
        self.scan(request_line, input_len)
            .into_iter()
            .max_by_key(|m| m.severity)
    }
}

// ---- the per-request pattern oracle ----

/// One combined pass's verdicts, keyed by pattern source, for a single
/// request text.
///
/// The condition-evaluator registry has a fixed signature (`value`, `env`)
/// with no room for per-request scratch state, and the decision cache keys
/// on every context parameter — so verdicts must *not* travel through the
/// context. Instead the serving layer computes the pass once, installs the
/// oracle for the scope of the authorization call, and
/// [`crate::regex::signature_matches`] reads per-pattern verdicts from it.
/// Any pattern (or any text) the oracle does not cover falls back to the
/// per-pattern path — fail-safe by construction.
pub struct PatternOracle {
    text: String,
    verdicts: HashMap<String, bool>,
}

impl PatternOracle {
    /// Runs one combined pass of `matcher` over `text` and captures every
    /// pattern's verdict.
    pub fn compute(matcher: &CombinedMatcher, text: &str) -> PatternOracle {
        let hits = matcher.match_set(text);
        let mut verdicts = HashMap::with_capacity(matcher.len());
        for (idx, pattern) in matcher.patterns().iter().enumerate() {
            verdicts.insert(pattern.clone(), hits.matched(idx));
        }
        PatternOracle {
            text: text.to_string(),
            verdicts,
        }
    }

    /// The request text the verdicts were computed for.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of patterns covered.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// True when the oracle covers no patterns.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

thread_local! {
    static ORACLE: RefCell<Option<PatternOracle>> = const { RefCell::new(None) };
}

/// Scope guard restoring the previously installed oracle (if any) on drop.
pub struct OracleGuard {
    prev: Option<PatternOracle>,
    installed: bool,
}

impl Drop for OracleGuard {
    fn drop(&mut self) {
        if self.installed {
            let prev = self.prev.take();
            ORACLE.with(|slot| *slot.borrow_mut() = prev);
        }
    }
}

/// Installs `oracle` for the current thread until the guard drops.
pub fn install_oracle(oracle: PatternOracle) -> OracleGuard {
    let prev = ORACLE.with(|slot| slot.borrow_mut().replace(oracle));
    OracleGuard {
        prev,
        installed: true,
    }
}

/// The installed oracle's verdict for `pattern` against `text`, if it has
/// one for exactly this text. `None` → caller uses the per-pattern path.
pub(crate) fn oracle_verdict(pattern: &str, text: &str) -> Option<bool> {
    ORACLE.with(|slot| {
        let slot = slot.borrow();
        let oracle = slot.as_ref()?;
        if oracle.text != text {
            return None;
        }
        oracle.verdicts.get(pattern).copied()
    })
}

pub mod analysis {
    //! Analysis-facing automata for the GAA701–705 pattern lints.
    //!
    //! Exposes per-pattern char-NFAs with exact representative alphabets,
    //! product-walk language inclusion, emptiness, and seeded sampling of
    //! accepted strings. `?`-globs are excluded (their byte-level `?` has
    //! no faithful char model), so lints stay conservative: no automaton,
    //! no claim.

    use super::*;

    /// A single pattern compiled into a char-NFA for analysis.
    ///
    /// Globs compile to an anchored NFA (`*` → `.*`, ASCII letters →
    /// case-pair classes) reproducing the case-insensitive whole-text glob
    /// semantics; `re:` patterns reuse their Thompson NFA and anchor flags.
    pub struct PatternAutomaton {
        states: Vec<State>,
        start: usize,
        anchored_start: bool,
        anchored_end: bool,
        pattern: String,
    }

    /// Result of a [`language_included`] query.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Inclusion {
        /// Every string of the candidate language is accepted by the
        /// superset automaton (exact, over the joint representative
        /// alphabet).
        Included,
        /// A witness string accepted by the candidate but not the superset.
        NotIncluded {
            /// The separating string.
            witness: String,
        },
        /// Budget exhausted before the product walk completed — no claim.
        Unknown,
    }

    impl PatternAutomaton {
        /// Compiles `pattern` (condition-value dialect) for analysis.
        /// Returns `None` for `?`-globs (unfaithful char model) and invalid
        /// regexes (no language).
        pub fn compile(pattern: &str) -> Option<PatternAutomaton> {
            if let Some(src) = pattern.strip_prefix(REGEX_PREFIX) {
                let re = Regex::new(src).ok()?;
                return Some(PatternAutomaton {
                    states: re.states().to_vec(),
                    start: re.start(),
                    anchored_start: re.anchored_start(),
                    anchored_end: re.anchored_end(),
                    pattern: pattern.to_string(),
                });
            }
            if pattern.contains('?') {
                return None;
            }
            // Glob → anchored NFA, built directly on the State vocabulary.
            let mut states: Vec<State> = Vec::new();
            let mut start: Option<usize> = None;
            let mut pending: Vec<usize> = Vec::new(); // dangling outs to patch
            for c in pattern.chars() {
                let spec = if c == '*' {
                    None
                } else if c.is_ascii_alphabetic() {
                    Some(CharSpec::Class {
                        negated: false,
                        ranges: vec![
                            (c.to_ascii_lowercase(), c.to_ascii_lowercase()),
                            (c.to_ascii_uppercase(), c.to_ascii_uppercase()),
                        ],
                    })
                } else {
                    Some(CharSpec::Literal(c))
                };
                match spec {
                    Some(spec) => {
                        let idx = states.len();
                        states.push(State::Char {
                            spec,
                            next: usize::MAX,
                        });
                        patch(&mut states, &pending, idx);
                        pending = vec![idx];
                        if start.is_none() {
                            start = Some(idx);
                        }
                    }
                    None => {
                        // `*` = Star(Any): split -> (any -> split | out).
                        let split = states.len();
                        states.push(State::Split {
                            a: split + 1,
                            b: usize::MAX,
                        });
                        states.push(State::Char {
                            spec: CharSpec::Any,
                            next: split,
                        });
                        patch(&mut states, &pending, split);
                        pending = vec![split];
                        if start.is_none() {
                            start = Some(split);
                        }
                    }
                }
            }
            let accept = states.len();
            states.push(State::Accept);
            patch(&mut states, &pending, accept);
            Some(PatternAutomaton {
                start: start.unwrap_or(accept),
                states,
                anchored_start: true,
                anchored_end: true,
                pattern: pattern.to_string(),
            })
        }

        /// The source pattern.
        pub fn pattern(&self) -> &str {
            &self.pattern
        }

        /// Whether a match must consume the input to its end.
        pub fn anchored_end(&self) -> bool {
            self.anchored_end
        }

        fn closure(&self, seeds: Vec<usize>) -> Vec<u32> {
            let mut active = vec![false; self.states.len()];
            let mut stack = seeds;
            while let Some(s) = stack.pop() {
                if s >= active.len() || active[s] {
                    continue;
                }
                active[s] = true;
                if let State::Split { a, b } = self.states[s] {
                    stack.push(a);
                    stack.push(b);
                }
            }
            active
                .iter()
                .enumerate()
                .filter(|(_, &on)| on)
                .map(|(i, _)| i as u32)
                .collect()
        }

        /// The initial state set (epsilon-closed).
        pub fn initial(&self) -> Vec<u32> {
            self.closure(vec![self.start])
        }

        /// One char step, honoring unanchored-start re-injection.
        pub fn step(&self, set: &[u32], c: char) -> Vec<u32> {
            let mut seeds: Vec<usize> = Vec::new();
            for &s in set {
                if let State::Char { spec, next } = &self.states[s as usize] {
                    if spec.matches(c) {
                        seeds.push(*next);
                    }
                }
            }
            if !self.anchored_start {
                seeds.push(self.start);
            }
            self.closure(seeds)
        }

        /// Is an accept state active in `set`?
        pub fn accepting(&self, set: &[u32]) -> bool {
            set.iter()
                .any(|&s| matches!(self.states[s as usize], State::Accept))
        }

        /// Representative alphabet: one char per cell of the partition
        /// induced by every `CharSpec` boundary (each endpoint and its
        /// neighbors), plus an always-outside fallback. Exact for any
        /// product over automata whose representatives are unioned.
        pub fn representatives(&self) -> Vec<char> {
            let mut reps: Vec<char> = Vec::new();
            let mut push = |c: u32| {
                if let Some(c) = char::from_u32(c) {
                    reps.push(c);
                }
            };
            for st in &self.states {
                if let State::Char { spec, .. } = st {
                    match spec {
                        CharSpec::Any => {}
                        CharSpec::Literal(c) => {
                            push(*c as u32);
                            push((*c as u32).wrapping_sub(1));
                            push(*c as u32 + 1);
                        }
                        CharSpec::Class { ranges, .. } => {
                            for &(lo, hi) in ranges {
                                push(lo as u32);
                                push((lo as u32).wrapping_sub(1));
                                push(hi as u32);
                                push(hi as u32 + 1);
                            }
                        }
                    }
                }
            }
            push('a' as u32);
            push(0x0F_0000); // plane-15 private use: outside any sane range
            reps.sort_unstable();
            reps.dedup();
            reps
        }

        /// Is the language empty? Exact: reachability over satisfiable
        /// char edges (a `CharSpec` with no satisfying char is a dead edge).
        pub fn is_empty_language(&self) -> bool {
            let mut seen = vec![false; self.states.len()];
            let mut stack = vec![self.start];
            while let Some(s) = stack.pop() {
                if seen[s] {
                    continue;
                }
                seen[s] = true;
                match &self.states[s] {
                    State::Accept => return false,
                    State::Split { a, b } => {
                        stack.push(*a);
                        stack.push(*b);
                    }
                    State::Char { spec, next } => {
                        if spec_satisfiable(spec).is_some() {
                            stack.push(*next);
                        }
                    }
                }
            }
            true
        }

        /// The shortest accepted string, found by BFS over subset states
        /// (budget-bounded). `None` when the language is empty or the
        /// budget runs out.
        pub fn shortest_accepted(&self, budget: usize) -> Option<String> {
            use std::collections::{HashSet, VecDeque};
            let reps = self.representatives();
            let start = self.initial();
            if self.accepting(&start) {
                return Some(String::new());
            }
            let mut queue: VecDeque<(Vec<u32>, String)> = VecDeque::new();
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            seen.insert(start.clone());
            queue.push_back((start, String::new()));
            let mut visited = 0usize;
            while let Some((set, s)) = queue.pop_front() {
                visited += 1;
                if visited > budget {
                    return None;
                }
                for &c in &reps {
                    let next = self.step(&set, c);
                    if next.is_empty() {
                        continue;
                    }
                    let mut ns = s.clone();
                    ns.push(c);
                    if self.accepting(&next) {
                        return Some(ns);
                    }
                    if seen.insert(next.clone()) {
                        queue.push_back((next, ns));
                    }
                }
            }
            None
        }

        /// Seeded accepted-string sampling: the BFS-shortest witness plus
        /// guided random walks (each step picks among chars that keep the
        /// automaton alive) collecting up to `want` distinct accepted
        /// strings of length ≤ `max_len`. Used to replay subsumption
        /// claims through the real matcher. May return fewer (or none) —
        /// callers must treat an empty sample as "cannot confirm".
        pub fn sample_accepted(&self, seed: u64, max_len: usize, want: usize) -> Vec<String> {
            let reps = self.representatives();
            if reps.is_empty() {
                return Vec::new();
            }
            let mut found: Vec<String> = Vec::new();
            if let Some(shortest) = self.shortest_accepted(4096) {
                found.push(shortest);
            }
            let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
            let mut next_u64 = move || {
                // SplitMix64 step: deterministic, dependency-free.
                rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            'walks: for _ in 0..(want * 64) {
                if found.len() >= want {
                    break;
                }
                let mut set = self.initial();
                let mut s = String::new();
                if self.accepting(&set) && !found.contains(&s) {
                    found.push(s.clone());
                    continue;
                }
                for _ in 0..max_len {
                    // Candidate chars that keep at least one NFA state live.
                    let alive: Vec<(char, Vec<u32>)> = reps
                        .iter()
                        .map(|&c| (c, self.step(&set, c)))
                        .filter(|(_, next)| !next.is_empty())
                        .collect();
                    if alive.is_empty() {
                        continue 'walks; // dead end; restart
                    }
                    let (c, stepped) = alive[(next_u64() % alive.len() as u64) as usize].clone();
                    set = stepped;
                    s.push(c);
                    if self.accepting(&set) {
                        if !found.contains(&s) {
                            found.push(s.clone());
                        }
                        continue 'walks;
                    }
                }
            }
            found
        }
    }

    fn patch(states: &mut [State], pending: &[usize], target: usize) {
        for &idx in pending {
            match &mut states[idx] {
                State::Char { next, .. } => *next = target,
                State::Split { b, .. } => *b = target,
                State::Accept => {}
            }
        }
    }

    /// A char satisfying `spec`, if any.
    fn spec_satisfiable(spec: &CharSpec) -> Option<char> {
        match spec {
            CharSpec::Any => Some('a'),
            CharSpec::Literal(c) => Some(*c),
            CharSpec::Class { negated, ranges } => {
                if !negated {
                    return ranges.first().map(|&(lo, _)| lo);
                }
                let inside = |c: char| ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                let mut candidates: Vec<u32> = vec!['a' as u32, 0, 0x0F_0000, 0x10_FFFF];
                for &(lo, hi) in ranges {
                    candidates.push((lo as u32).wrapping_sub(1));
                    candidates.push(hi as u32 + 1);
                }
                candidates
                    .into_iter()
                    .filter_map(char::from_u32)
                    .find(|&c| !inside(c))
            }
        }
    }

    /// Does `sub`'s language lie inside `sup`'s? Exact product walk over
    /// the joint representative alphabet, bounded by `budget` product
    /// states; returns [`Inclusion::Unknown`] (never a guess) on
    /// exhaustion. A `NotIncluded` witness is a concrete string accepted
    /// by `sub` and rejected by `sup` — callers replay it through the real
    /// matchers before trusting it.
    pub fn language_included(
        sub: &PatternAutomaton,
        sup: &PatternAutomaton,
        budget: usize,
    ) -> Inclusion {
        use std::collections::VecDeque;

        let mut alphabet = sub.representatives();
        alphabet.extend(sup.representatives());
        alphabet.sort_unstable();
        alphabet.dedup();

        // Node: (sub set, sup set, sub sticky, sup sticky). Sticky = an
        // unanchored-end automaton has accepted some prefix (monotone: all
        // extensions match).
        type Node = (Vec<u32>, Vec<u32>, bool, bool);
        let accepts_here = |a: &PatternAutomaton, set: &[u32], sticky: bool| {
            if a.anchored_end {
                a.accepting(set)
            } else {
                sticky
            }
        };

        let s0 = sub.initial();
        let p0 = sup.initial();
        let sticky0 = (!sub.anchored_end && sub.accepting(&s0), {
            !sup.anchored_end && sup.accepting(&p0)
        });
        let start: Node = (s0, p0, sticky0.0, sticky0.1);

        let mut parents: HashMap<Node, Option<(Node, char)>> = HashMap::new();
        let mut queue: VecDeque<Node> = VecDeque::new();
        parents.insert(start.clone(), None);
        queue.push_back(start);
        let mut visited = 0usize;

        let rebuild = |parents: &HashMap<Node, Option<(Node, char)>>, mut node: Node| {
            let mut chars = Vec::new();
            while let Some(Some((parent, c))) = parents.get(&node) {
                chars.push(*c);
                node = parent.clone();
            }
            chars.reverse();
            chars.into_iter().collect::<String>()
        };

        while let Some(node) = queue.pop_front() {
            visited += 1;
            if visited > budget {
                return Inclusion::Unknown;
            }
            let (sset, pset, ssticky, psticky) = &node;
            if accepts_here(sub, sset, *ssticky) && !accepts_here(sup, pset, *psticky) {
                let witness = rebuild(&parents, node.clone());
                return Inclusion::NotIncluded { witness };
            }
            // Once an unanchored-end superset automaton is sticky, every
            // extension is accepted by it — nothing below can separate.
            if !sup.anchored_end && *psticky {
                continue;
            }
            for &c in &alphabet {
                let ns = sub.step(sset, c);
                let np = sup.step(pset, c);
                let nsticky = *ssticky || (!sub.anchored_end && sub.accepting(&ns));
                let npsticky = *psticky || (!sup.anchored_end && sup.accepting(&np));
                let next: Node = (ns, np, nsticky, npsticky);
                if !parents.contains_key(&next) {
                    parents.insert(next.clone(), Some((node.clone(), c)));
                    queue.push_back(next);
                }
            }
        }
        Inclusion::Included
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(patterns: &[&str]) -> CombinedMatcher {
        CombinedMatcher::compile(&patterns.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn assert_parity(set: &CombinedMatcher, text: &str) {
        let combined = set.match_set(text);
        let reference = set.match_set_per_pattern(text);
        for (idx, pattern) in set.patterns().iter().enumerate() {
            assert_eq!(
                combined.matched(idx),
                reference.matched(idx),
                "divergence: pattern `{pattern}` text `{text}`"
            );
        }
    }

    const CORPUS: &[&str] = &[
        "",
        "GET /index.html HTTP/1.1",
        "GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0",
        "GET /cgi-bin/test-cgi?* HTTP/1.0",
        "GET /a///////////////////////// HTTP/1.0",
        "GET /scripts/..%c0%af../winnt/system32/cmd.exe HTTP/1.0",
        "GET /CGI-BIN/PHF HTTP/1.0",
        "päß-multibyte-ütf8",
        "/only",
        "phf",
        "*",
        "GET /docs/manual.html?page=3 HTTP/1.1",
    ];

    const PATTERNS: &[&str] = &[
        "*phf*",
        "*test-cgi*",
        "*%*",
        "*///////////////////*",
        "*../*",
        "*/etc/passwd*",
        "*",
        "",
        "phf",
        "index.html",
        "prefix*",
        "*suffix",
        "a*b*c",
        "*ph?f*",
        "re:%[0-9a-f][0-9a-f]",
        "re:^/only$",
        "re:/cgi-bin/(phf|test-cgi)",
        "re:^GET .*HTTP/1\\.[01]$",
        "re:(bad",
        "re:pä+ß",
        "re:\\d\\d\\d",
        "re:^$",
    ];

    #[test]
    fn combined_agrees_with_per_pattern_on_corpus() {
        let set = compile(PATTERNS);
        for text in CORPUS {
            assert_parity(&set, text);
        }
    }

    #[test]
    fn tier_placement() {
        let set = compile(PATTERNS);
        let counts = set.tier_counts();
        assert_eq!(counts.always_true, 1); // "*"
        assert_eq!(counts.never_true, 1); // "re:(bad"
        assert_eq!(counts.exact, 3); // "", "phf", "index.html"
        assert_eq!(counts.substring, 6); // the six paper-style *lit* globs
        assert_eq!(counts.merged, 7); // the valid regexes
        assert_eq!(counts.residual, 4); // prefix*/ *suffix / a*b*c / *ph?f*
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = compile(&[]);
        let hits = set.match_set("anything");
        assert!(hits.is_empty());
        assert_eq!(hits.matched_indices(), Vec::<usize>::new());
    }

    #[test]
    fn anchored_regexes_respect_ends() {
        let set = compile(&["re:^/a", "re:b$", "re:^/a$", "re:^$"]);
        for text in ["/a", "/ab", "x/a", "ab", "b", ""] {
            assert_parity(&set, text);
        }
    }

    #[test]
    fn dfa_and_nfa_fallback_agree() {
        let set = compile(&["re:(a|b)*c", "re:a+b+", "re:^x?y$"]);
        let texts = ["", "abc", "aabb", "xy", "y", "ababababc", "zzz"];
        // Force the NFA path by scanning through a fresh matcher whose DFA
        // we saturate artificially.
        if let Some(merged) = &set.merged {
            for text in texts {
                let mut via_dfa = MatchSet::new(set.len());
                merged.match_into(text, &mut via_dfa);
                let mut via_nfa = MatchSet::new(set.len());
                merged.nfa_scan(text, &mut via_nfa);
                assert_eq!(via_dfa, via_nfa, "text `{text}`");
            }
        } else {
            panic!("expected a merged tier");
        }
    }

    #[test]
    fn oracle_scopes_and_falls_back() {
        let set = compile(&["*phf*", "re:^/only$"]);
        let text = "GET /cgi-bin/phf HTTP/1.0";
        {
            let _guard = install_oracle(PatternOracle::compute(&set, text));
            // Covered pattern + covered text → oracle verdict.
            assert_eq!(oracle_verdict("*phf*", text), Some(true));
            assert_eq!(oracle_verdict("re:^/only$", text), Some(false));
            // Unknown pattern → fallback.
            assert_eq!(oracle_verdict("*nimda*", text), None);
            // Different text → fallback.
            assert_eq!(oracle_verdict("*phf*", "GET / HTTP/1.0"), None);
            // signature_matches consults the oracle transparently.
            assert!(crate::regex::signature_matches("*phf*", text));
        }
        // Guard dropped → no oracle.
        assert_eq!(oracle_verdict("*phf*", text), None);
    }

    #[test]
    fn nested_oracles_restore() {
        let set_a = compile(&["*a*"]);
        let set_b = compile(&["*b*"]);
        let _outer = install_oracle(PatternOracle::compute(&set_a, "xax"));
        {
            let _inner = install_oracle(PatternOracle::compute(&set_b, "xbx"));
            assert_eq!(oracle_verdict("*b*", "xbx"), Some(true));
            assert_eq!(oracle_verdict("*a*", "xax"), None);
        }
        assert_eq!(oracle_verdict("*a*", "xax"), Some(true));
    }

    #[test]
    fn compiled_signature_db_matches_interpreted_scan() {
        let db = SignatureDb::with_defaults();
        let compiled = CompiledSignatureDb::compile(&db);
        assert_eq!(compiled.version(), db.version());
        for text in CORPUS {
            for input_len in [0usize, 500, 1001, 5000] {
                assert_eq!(
                    compiled.scan(text, input_len),
                    db.scan(text, input_len),
                    "text `{text}` input_len {input_len}"
                );
                assert_eq!(
                    compiled.worst_match(text, input_len),
                    db.worst_match(text, input_len)
                );
            }
        }
    }

    #[test]
    fn signature_db_version_detects_staleness() {
        let mut db = SignatureDb::with_defaults();
        let compiled = CompiledSignatureDb::compile(&db);
        db.add(AttackSignature {
            id: "sig.new".into(),
            class: gaa_ids::AttackClass::CgiExploit,
            matcher: Matcher::UrlGlob("*newattack*".into()),
            severity: 5,
            confidence: 0.5,
            recommendation: "deny".into(),
        });
        assert_ne!(compiled.version(), db.version());
    }

    #[test]
    fn multibyte_and_edge_patterns() {
        // Satellite: empty pattern, consecutive `*` runs, `?` against
        // multibyte UTF-8, boundary-spanning classes, anchors around
        // glob-wrapped literals.
        let set = compile(&[
            "",
            "****",
            "*ä*",
            "?",
            "??",
            "ä?",
            "re:[^a]",
            "re:[^\u{7f}-\u{10FFFF}]",
            "re:^*ü*$", // dangling repetition: invalid, never matches
            "re:^ä$",
        ]);
        for text in ["", "ä", "äx", "xä", "a", "\u{7f}", "\u{80}", "ü", "**"] {
            assert_parity(&set, text);
        }
    }

    #[test]
    fn question_mark_glob_is_byte_level_even_combined() {
        // `ä` is two bytes: glob `ä?` wants those two bytes plus ONE more
        // byte — "äx" matches, "äöx" does not. The combined matcher must
        // preserve that byte-level reading (it routes these residual).
        let set = compile(&["ä?", "?"]);
        for text in ["äx", "ä", "äö", "x", "ab"] {
            assert_parity(&set, text);
        }
        // And the underlying truth, pinned:
        assert!(glob_match_ci("ä?", "äx"));
        assert!(!glob_match_ci("?", "ä")); // two bytes ≠ one byte
    }

    #[test]
    fn seeded_random_differential() {
        // Seeded pseudo-random texts over a hostile alphabet; every
        // pattern must agree with the reference on every text.
        let set = compile(PATTERNS);
        let alphabet: Vec<char> = "ab/%.c?*-01ä\u{10000} GETphf".chars().collect();
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..400 {
            let len = (next() % 40) as usize;
            let text: String = (0..len)
                .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                .collect();
            assert_parity(&set, &text);
        }
    }

    mod analysis_tests {
        use super::super::analysis::*;

        #[test]
        fn glob_automaton_matches_glob_semantics() {
            let a = PatternAutomaton::compile("*phf*").expect("compiles");
            let accepted = |text: &str| {
                let mut set = a.initial();
                let mut hit = a.accepting(&set) && !a.anchored_end();
                for c in text.chars() {
                    set = a.step(&set, c);
                    if !a.anchored_end() && a.accepting(&set) {
                        hit = true;
                    }
                }
                if a.anchored_end() {
                    a.accepting(&set)
                } else {
                    hit
                }
            };
            assert!(accepted("/cgi-bin/phf"));
            assert!(accepted("PHF"));
            assert!(!accepted("/index.html"));
            assert!(!accepted(""));
        }

        #[test]
        fn question_glob_has_no_analysis_model() {
            assert!(PatternAutomaton::compile("a?c").is_none());
            assert!(PatternAutomaton::compile("re:(bad").is_none());
        }

        #[test]
        fn inclusion_finds_subsumption() {
            let wide = PatternAutomaton::compile("*phf*").expect("wide");
            let narrow = PatternAutomaton::compile("*cgi-bin/phf*").expect("narrow");
            assert_eq!(
                language_included(&narrow, &wide, 100_000),
                Inclusion::Included
            );
            match language_included(&wide, &narrow, 100_000) {
                Inclusion::NotIncluded { witness } => {
                    assert!(super::match_one("*phf*", &witness));
                    assert!(!super::match_one("*cgi-bin/phf*", &witness));
                }
                other => panic!("expected NotIncluded, got {other:?}"),
            }
        }

        #[test]
        fn inclusion_mixes_dialects() {
            // Regex subsumed by a glob despite different dialects.
            let glob = PatternAutomaton::compile("*%*").expect("glob");
            let re = PatternAutomaton::compile("re:%[0-9]").expect("re");
            assert_eq!(language_included(&re, &glob, 100_000), Inclusion::Included);
            // Case gap: glob *phf* is NOT included in case-sensitive re:phf.
            let g = PatternAutomaton::compile("*phf*").expect("g");
            let r = PatternAutomaton::compile("re:phf").expect("r");
            match language_included(&g, &r, 100_000) {
                Inclusion::NotIncluded { witness } => {
                    assert!(super::match_one("*phf*", &witness));
                    assert!(!super::match_one("re:phf", &witness));
                }
                other => panic!("expected case witness, got {other:?}"),
            }
        }

        #[test]
        fn emptiness() {
            assert!(PatternAutomaton::compile("re:a[^\u{0}-\u{10FFFF}]b")
                .expect("compiles")
                .is_empty_language());
            assert!(!PatternAutomaton::compile("*phf*")
                .expect("compiles")
                .is_empty_language());
            assert!(!PatternAutomaton::compile("re:^$")
                .expect("compiles")
                .is_empty_language());
        }

        #[test]
        fn sampling_produces_real_matches() {
            for pattern in ["*phf*", "re:%[0-9a-f][0-9a-f]", "re:^/only$", "*a*"] {
                let a = PatternAutomaton::compile(pattern).expect("compiles");
                let samples = a.sample_accepted(42, 24, 8);
                assert!(!samples.is_empty(), "no samples for {pattern}");
                for s in samples {
                    assert!(
                        super::match_one(pattern, &s),
                        "sampled `{s}` does not match `{pattern}`"
                    );
                }
            }
        }
    }
}
