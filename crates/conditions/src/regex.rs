//! A from-scratch regular-expression engine (Thompson NFA) plus the
//! signature-matching condition evaluator.
//!
//! §7.2 specifies new attack signatures "using regular expressions and
//! numeric comparison", with the original implementation delegating to GNU
//! regex (`pre_cond regex gnu *phf* *test-cgi*`). We build the engine
//! ourselves:
//!
//! * **glob dialect** — the paper's signature style (`*phf*`); a condition
//!   value is a whitespace-separated list of globs, any of which may match;
//! * **regex dialect** — patterns prefixed `re:` use a real regular
//!   expression syntax: literals, `.`, `*`, `+`, `?`, `|`, `(...)`,
//!   character classes `[a-z]` / `[^0-9]`, escapes `\d \w \s \. \\ …`, and
//!   anchors `^` / `$`.
//!
//! The regex engine compiles to a non-deterministic finite automaton and
//! simulates it with a state *set* (Thompson's construction), so matching is
//! `O(pattern × input)` — **no exponential backtracking**. That is a
//! security property, not a nicety: these patterns run on every request, on
//! attacker-controlled input, inside the DoS-defence path.

use gaa_core::{EvalDecision, EvalEnv};
use gaa_ids::matcher::glob_match_ci;
use std::fmt;
use std::str::FromStr;

/// Error compiling a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    message: String,
    position: usize,
}

impl RegexError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        RegexError {
            message: message.into(),
            position,
        }
    }

    /// Byte offset in the pattern where compilation failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

// ---- AST ----

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Literal(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Optional(Box<Ast>),
}

// ---- parser ----

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn err(&self, message: impl Into<String>) -> RegexError {
        // Translate char index back to a byte offset for the error report.
        let byte = self
            .pattern
            .char_indices()
            .nth(self.pos)
            .map_or(self.pattern.len(), |(b, _)| b);
        RegexError::new(byte, message)
    }

    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some('+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some('?') => {
                    self.bump();
                    atom = Ast::Optional(Box::new(atom));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling repetition `{c}`"))),
            Some(c) => Ok(Ast::Literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class {
                negated: false,
                ranges: vec![('0', '9')],
            }),
            Some('w') => Ok(Ast::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            }),
            Some('s') => Ok(Ast::Class {
                negated: false,
                ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            }),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some(c) => Ok(Ast::Literal(c)), // \. \\ \[ etc.
            None => Err(self.err("trailing backslash")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(']') if !first => break,
                Some(c) => {
                    let c = if c == '\\' {
                        self.bump().ok_or_else(|| self.err("trailing backslash"))?
                    } else {
                        c
                    };
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // the dash
                        let hi = self.bump().ok_or_else(|| self.err("unclosed range"))?;
                        if hi < c {
                            return Err(self.err(format!("invalid range {c}-{hi}")));
                        }
                        ranges.push((c, hi));
                    } else {
                        ranges.push((c, c));
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class { negated, ranges })
    }
}

// ---- NFA ----

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CharSpec {
    Any,
    Literal(char),
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

impl CharSpec {
    pub(crate) fn matches(&self, c: char) -> bool {
        match self {
            CharSpec::Any => true,
            CharSpec::Literal(l) => *l == c,
            CharSpec::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum State {
    Char { spec: CharSpec, next: usize },
    Split { a: usize, b: usize },
    Accept,
}

/// A compiled regular expression.
///
/// # Examples
///
/// ```rust
/// use gaa_conditions::Regex;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let re: Regex = "c(at|ow)s?".parse()?;
/// assert!(re.is_match("three cats"));
/// assert!(re.is_match("a cow"));
/// assert!(!re.is_match("a dog"));
///
/// let anchored: Regex = "^/cgi-bin/.*\\.pl$".parse()?;
/// assert!(anchored.is_match("/cgi-bin/form.pl"));
/// assert!(!anchored.is_match("/static//cgi-bin/form.pl.txt"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    anchored_start: bool,
    anchored_end: bool,
    pattern: String,
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`RegexError`] on syntax errors (unclosed groups/classes,
    /// dangling repetitions, invalid ranges).
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let (inner, anchored_start, anchored_end) = strip_anchors(pattern);
        let mut parser = Parser::new(inner);
        let ast = parser.parse_alternation()?;
        if parser.pos != parser.chars.len() {
            return Err(parser.err("unbalanced `)`"));
        }
        let mut compiler = Compiler { states: Vec::new() };
        let frag = compiler.compile(&ast);
        let accept = compiler.push(State::Accept);
        compiler.patch(frag.out, accept);
        Ok(Regex {
            states: compiler.states,
            start: frag.start,
            anchored_start,
            anchored_end,
            pattern: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    // NFA internals, exposed to `multipattern` so the combined matcher can
    // merge many compiled patterns into one state arena and the analysis
    // tier can determinize them for inclusion checks.
    pub(crate) fn states(&self) -> &[State] {
        &self.states
    }

    pub(crate) fn start(&self) -> usize {
        self.start
    }

    pub(crate) fn anchored_start(&self) -> bool {
        self.anchored_start
    }

    pub(crate) fn anchored_end(&self) -> bool {
        self.anchored_end
    }

    /// Does the pattern match anywhere in `text` (respecting anchors)?
    pub fn is_match(&self, text: &str) -> bool {
        let mut current: Vec<bool> = vec![false; self.states.len()];
        let mut next: Vec<bool> = vec![false; self.states.len()];
        let mut matched_pending = false; // accept seen, waiting for end (anchored_end)

        self.add_state(&mut current, self.start);
        if self.accepts(&current) {
            if !self.anchored_end {
                return true;
            }
            matched_pending = true;
        }

        for c in text.chars() {
            next.iter_mut().for_each(|s| *s = false);
            for (idx, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                if let State::Char { spec, next: n } = &self.states[idx] {
                    if spec.matches(c) {
                        self.add_state(&mut next, *n);
                    }
                }
            }
            if !self.anchored_start {
                // Unanchored search: allow a fresh match attempt at every
                // input position (implicit leading `.*`).
                self.add_state(&mut next, self.start);
            }
            std::mem::swap(&mut current, &mut next);
            if self.accepts(&current) {
                if !self.anchored_end {
                    return true;
                }
                matched_pending = true;
            } else {
                matched_pending = false;
            }
        }
        if self.anchored_end {
            matched_pending || self.accepts(&current)
        } else {
            self.accepts(&current)
        }
    }

    fn accepts(&self, set: &[bool]) -> bool {
        set.iter()
            .enumerate()
            .any(|(idx, &active)| active && matches!(self.states[idx], State::Accept))
    }

    /// Adds `state` and its epsilon closure to `set`.
    fn add_state(&self, set: &mut [bool], state: usize) {
        if set[state] {
            return;
        }
        set[state] = true;
        if let State::Split { a, b } = self.states[state] {
            self.add_state(set, a);
            self.add_state(set, b);
        }
    }
}

impl FromStr for Regex {
    type Err = RegexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Regex::new(s)
    }
}

fn strip_anchors(pattern: &str) -> (&str, bool, bool) {
    let (pattern, start) = match pattern.strip_prefix('^') {
        Some(rest) => (rest, true),
        None => (pattern, false),
    };
    // `$` only anchors when not escaped.
    let (pattern, end) = if pattern.ends_with('$') && !pattern.ends_with("\\$") {
        (&pattern[..pattern.len() - 1], true)
    } else {
        (pattern, false)
    };
    (pattern, start, end)
}

/// A compilation fragment: entry state plus dangling out-edges to patch.
struct Fragment {
    start: usize,
    out: Vec<OutEdge>,
}

enum OutEdge {
    CharNext(usize),
    SplitA(usize),
    SplitB(usize),
}

struct Compiler {
    states: Vec<State>,
}

impl Compiler {
    fn push(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    fn patch(&mut self, edges: Vec<OutEdge>, target: usize) {
        for edge in edges {
            match edge {
                OutEdge::CharNext(idx) => {
                    if let State::Char { next, .. } = &mut self.states[idx] {
                        *next = target;
                    }
                }
                OutEdge::SplitA(idx) => {
                    if let State::Split { a, .. } = &mut self.states[idx] {
                        *a = target;
                    }
                }
                OutEdge::SplitB(idx) => {
                    if let State::Split { b, .. } = &mut self.states[idx] {
                        *b = target;
                    }
                }
            }
        }
    }

    fn compile(&mut self, ast: &Ast) -> Fragment {
        match ast {
            Ast::Empty => {
                // A split with both edges dangling acts as an epsilon.
                let idx = self.push(State::Split {
                    a: usize::MAX,
                    b: usize::MAX,
                });
                Fragment {
                    start: idx,
                    out: vec![OutEdge::SplitA(idx), OutEdge::SplitB(idx)],
                }
            }
            Ast::Literal(c) => {
                let idx = self.push(State::Char {
                    spec: CharSpec::Literal(*c),
                    next: usize::MAX,
                });
                Fragment {
                    start: idx,
                    out: vec![OutEdge::CharNext(idx)],
                }
            }
            Ast::Any => {
                let idx = self.push(State::Char {
                    spec: CharSpec::Any,
                    next: usize::MAX,
                });
                Fragment {
                    start: idx,
                    out: vec![OutEdge::CharNext(idx)],
                }
            }
            Ast::Class { negated, ranges } => {
                let idx = self.push(State::Char {
                    spec: CharSpec::Class {
                        negated: *negated,
                        ranges: ranges.clone(),
                    },
                    next: usize::MAX,
                });
                Fragment {
                    start: idx,
                    out: vec![OutEdge::CharNext(idx)],
                }
            }
            Ast::Concat(parts) => {
                let mut iter = parts.iter();
                let first = self.compile(iter.next().expect("concat is non-empty"));
                let mut out = first.out;
                for part in iter {
                    let frag = self.compile(part);
                    self.patch(out, frag.start);
                    out = frag.out;
                }
                Fragment {
                    start: first.start,
                    out,
                }
            }
            Ast::Alternate(branches) => {
                let frags: Vec<Fragment> = branches.iter().map(|b| self.compile(b)).collect();
                // Chain of splits fanning out to each branch.
                let mut out = Vec::new();
                let mut starts = frags.iter().map(|f| f.start).collect::<Vec<_>>();
                for frag in frags {
                    out.extend(frag.out);
                }
                let mut entry = starts.pop().expect("alternation is non-empty");
                while let Some(start) = starts.pop() {
                    entry = self.push(State::Split { a: start, b: entry });
                }
                Fragment { start: entry, out }
            }
            Ast::Star(inner) => {
                let frag = self.compile(inner);
                let split = self.push(State::Split {
                    a: frag.start,
                    b: usize::MAX,
                });
                self.patch(frag.out, split);
                Fragment {
                    start: split,
                    out: vec![OutEdge::SplitB(split)],
                }
            }
            Ast::Plus(inner) => {
                let frag = self.compile(inner);
                let split = self.push(State::Split {
                    a: frag.start,
                    b: usize::MAX,
                });
                self.patch(frag.out, split);
                Fragment {
                    start: frag.start,
                    out: vec![OutEdge::SplitB(split)],
                }
            }
            Ast::Optional(inner) => {
                let frag = self.compile(inner);
                let split = self.push(State::Split {
                    a: frag.start,
                    b: usize::MAX,
                });
                let mut out = frag.out;
                out.push(OutEdge::SplitB(split));
                Fragment { start: split, out }
            }
        }
    }
}

// ---- the signature condition evaluator ----

/// Prefix selecting the full regex dialect in a condition value.
pub const REGEX_PREFIX: &str = "re:";

/// Process-wide cache of compiled `re:` patterns.
///
/// Policies re-evaluate the same handful of patterns on every request;
/// recompiling the NFA each time wastes the entire speed advantage of the
/// engine. Failed compilations are cached as `None` so a bad pattern does
/// not re-parse per request either. Bounded: if operators somehow cycle
/// through more than `CACHE_CAP` distinct patterns the cache clears and
/// rebuilds (policies hold dozens of patterns, not thousands; the bound is
/// a guard against pattern material derived from attacker input, which
/// policies must never do anyway).
pub(crate) fn compile_cached(pattern: &str) -> Option<Regex> {
    use gaa_race::sync::Mutex;
    use std::collections::HashMap;
    use std::sync::OnceLock;

    const CACHE_CAP: usize = 1024;
    static CACHE: OnceLock<Mutex<HashMap<String, Option<Regex>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock();
    if let Some(compiled) = cache.get(pattern) {
        return compiled.clone();
    }
    if cache.len() >= CACHE_CAP {
        cache.clear();
    }
    let compiled = Regex::new(pattern).ok();
    cache.insert(pattern.to_string(), compiled.clone());
    compiled
}

/// Does any pattern in the whitespace-separated `value` match `text`?
///
/// Patterns are the paper's globs by default; `re:`-prefixed patterns use
/// the [`Regex`] engine (compiled once per process and cached). Invalid
/// regexes never match (and are reported by policy validation, not at
/// request time).
///
/// When the serving layer has installed a [`crate::multipattern`] oracle
/// for this exact text (one combined-automaton pass already computed every
/// pattern's verdict), per-pattern verdicts are read from it; any pattern
/// the oracle does not know falls back to the per-pattern path below, so a
/// compile gap in the combined tier can only cost speed, never change a
/// decision.
pub fn signature_matches(value: &str, text: &str) -> bool {
    value.split_whitespace().any(|pattern| {
        if let Some(verdict) = crate::multipattern::oracle_verdict(pattern, text) {
            return verdict;
        }
        if let Some(re_src) = pattern.strip_prefix(REGEX_PREFIX) {
            compile_cached(re_src).is_some_and(|re| re.is_match(text))
        } else {
            glob_match_ci(pattern, text)
        }
    })
}

/// Uncached variant of [`signature_matches`], kept public for the A4
/// ablation bench (measures what the per-request recompilation the cache
/// removes used to cost).
pub fn signature_matches_uncached(value: &str, text: &str) -> bool {
    value.split_whitespace().any(|pattern| {
        if let Some(re_src) = pattern.strip_prefix(REGEX_PREFIX) {
            Regex::new(re_src)
                .map(|re| re.is_match(text))
                .unwrap_or(false)
        } else {
            glob_match_ci(pattern, text)
        }
    })
}

/// The `regex` condition evaluator (§7.2).
///
/// Matches the condition's patterns against the request's `url` parameter
/// (full request line when provided as `request_line`). The condition is
/// *met* when a pattern matches — policies attach it to `neg_access_right`
/// entries so a match denies the request.
///
/// Unevaluated when the context carries no URL to inspect.
pub fn regex_evaluator(value: &str, env: &EvalEnv<'_>) -> EvalDecision {
    let text = env
        .context
        .param("request_line")
        .or_else(|| env.context.param("url"))
        .or_else(|| env.context.object());
    match text {
        Some(text) => {
            if signature_matches(value, text) {
                EvalDecision::Met
            } else {
                EvalDecision::NotMet
            }
        }
        None => EvalDecision::Unevaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(pattern: &str) -> Regex {
        Regex::new(pattern).unwrap_or_else(|e| panic!("compile `{pattern}`: {e}"))
    }

    #[test]
    fn literal_substring_search() {
        let r = re("phf");
        assert!(r.is_match("phf"));
        assert!(r.is_match("/cgi-bin/phf?x"));
        assert!(!r.is_match("ph"));
        assert!(!r.is_match(""));
    }

    #[test]
    fn dot_and_star() {
        let r = re("a.c");
        assert!(r.is_match("abc"));
        assert!(r.is_match("xxaxcxx"));
        assert!(!r.is_match("ac"));

        let r = re("ab*c");
        assert!(r.is_match("ac"));
        assert!(r.is_match("abbbbc"));
        assert!(!r.is_match("adc"));
    }

    #[test]
    fn plus_and_optional() {
        let r = re("ab+c");
        assert!(!r.is_match("ac"));
        assert!(r.is_match("abc"));
        assert!(r.is_match("abbc"));

        let r = re("colou?r");
        assert!(r.is_match("color"));
        assert!(r.is_match("colour"));
        assert!(!r.is_match("colur"));
    }

    #[test]
    fn alternation_and_groups() {
        let r = re("c(at|ow)s?");
        assert!(r.is_match("cat"));
        assert!(r.is_match("cows"));
        assert!(!r.is_match("cs"));

        let r = re("(ab)+");
        assert!(r.is_match("ab"));
        assert!(r.is_match("ababab"));
        assert!(!r.is_match("a"));
    }

    #[test]
    fn character_classes() {
        let r = re("[a-c]x");
        assert!(r.is_match("ax"));
        assert!(r.is_match("cx"));
        assert!(!r.is_match("dx"));

        let r = re("[^0-9]+");
        assert!(r.is_match("abc"));
        assert!(!r.is_match("123"));

        let r = re("[-x]"); // leading dash is a literal... (parsed as range start)
        assert!(r.is_match("x"));
    }

    #[test]
    fn escapes() {
        let r = re("\\d+");
        assert!(r.is_match("abc123"));
        assert!(!r.is_match("abc"));

        let r = re("\\w+@\\w+");
        assert!(r.is_match("admin@example"));
        assert!(!r.is_match("@"));

        let r = re("a\\.b");
        assert!(r.is_match("a.b"));
        assert!(!r.is_match("axb"));

        let r = re("\\s");
        assert!(r.is_match("a b"));
        assert!(!r.is_match("ab"));
    }

    #[test]
    fn anchors() {
        let r = re("^abc");
        assert!(r.is_match("abcdef"));
        assert!(!r.is_match("xabc"));

        let r = re("abc$");
        assert!(r.is_match("xxabc"));
        assert!(!r.is_match("abcx"));

        let r = re("^abc$");
        assert!(r.is_match("abc"));
        assert!(!r.is_match("abcd"));
        assert!(!r.is_match("zabc"));

        let r = re("^$");
        assert!(r.is_match(""));
        assert!(!r.is_match("a"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let r = re("");
        assert!(r.is_match(""));
        assert!(r.is_match("anything"));
    }

    #[test]
    fn nested_repetition_is_linear_time() {
        // The classic catastrophic-backtracking bomb: (a+)+ vs aaaa…b.
        let r = re("(a+)+$");
        let input = format!("{}b", "a".repeat(2000));
        let start = std::time::Instant::now();
        assert!(!r.is_match(&input));
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "NFA simulation must not backtrack exponentially"
        );
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
        let err = Regex::new("(a").unwrap_err();
        assert!(err.to_string().contains("unclosed"));
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let err = Regex::new("ab[cd").unwrap_err();
        assert_eq!(err.position(), 5);
    }

    #[test]
    fn nimda_and_code_red_style_patterns() {
        let r = re("%[0-9a-fA-F][0-9a-fA-F]");
        assert!(r.is_match("/scripts/..%c0%af../winnt"));
        assert!(!r.is_match("/index.html"));

        let r = re("/cgi-bin/(phf|test-cgi)");
        assert!(r.is_match("GET /cgi-bin/phf?Qalias=x"));
        assert!(r.is_match("GET /cgi-bin/test-cgi"));
        assert!(!r.is_match("GET /cgi-bin/safe.cgi"));
    }

    #[test]
    fn signature_matches_mixes_globs_and_regexes() {
        assert!(signature_matches("*phf* *test-cgi*", "/cgi-bin/phf"));
        assert!(signature_matches("*phf* *test-cgi*", "/cgi-bin/test-cgi"));
        assert!(!signature_matches("*phf* *test-cgi*", "/index.html"));
        assert!(signature_matches("re:%[0-9a-f][0-9a-f]", "/a%c0b"));
        assert!(!signature_matches(
            "re:(bad",
            "anything (bad pattern never matches)"
        ));
    }

    #[test]
    fn regex_evaluator_reads_url_from_context() {
        use gaa_audit::Timestamp;
        use gaa_core::{Param, SecurityContext};

        let ctx =
            SecurityContext::new().with_param(Param::new("url", "apache", "/cgi-bin/phf?Q=x"));
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(regex_evaluator("*phf*", &env), EvalDecision::Met);
        assert_eq!(regex_evaluator("*nimda*", &env), EvalDecision::NotMet);

        let empty = SecurityContext::new();
        let env = EvalEnv::pre(&empty, Timestamp::from_millis(0));
        assert_eq!(regex_evaluator("*phf*", &env), EvalDecision::Unevaluated);
    }

    #[test]
    fn unicode_literals_match() {
        let r = re("päß");
        assert!(r.is_match("xxpäßyy"));
        assert!(!r.is_match("pass"));
    }

    #[test]
    fn cached_and_uncached_agree() {
        for (value, text) in [
            ("re:%[0-9a-f][0-9a-f]", "/a%c0b"),
            ("re:(bad", "never matches"),
            ("*phf* re:/x/y", "/cgi-bin/phf"),
            ("re:^/only$", "/only"),
        ] {
            assert_eq!(
                signature_matches(value, text),
                signature_matches_uncached(value, text),
                "{value} vs {text}"
            );
        }
    }

    #[test]
    fn cache_serves_repeat_evaluations() {
        // Same pattern twice: second call must hit the cache (observable
        // only as agreement + no panic; the perf delta is benched in A4).
        let value = "re:/cgi-bin/(phf|test-cgi)";
        assert!(signature_matches(value, "GET /cgi-bin/phf HTTP/1.0"));
        assert!(signature_matches(value, "GET /cgi-bin/test-cgi HTTP/1.0"));
        assert!(!signature_matches(value, "GET /index.html HTTP/1.0"));
    }
}
