//! The standard evaluator catalog: one-call registration of every built-in
//! condition routine, and config-file–driven selective registration
//! (§6 step 1).

use crate::actions::{audit_evaluator, notify_evaluator, update_log_evaluator};
use crate::anomaly::anomaly_evaluator;
use crate::expr::expr_evaluator;
use crate::firewall::{block_network_evaluator, stop_service_evaluator, Firewall};
use crate::identity::{group_evaluator, host_evaluator, user_evaluator, GroupStore};
use crate::location::location_evaluator;
use crate::regex::regex_evaluator;
use crate::resource::{
    cpu_limit_evaluator, files_limit_evaluator, mem_limit_evaluator, wall_limit_evaluator,
};
use crate::session::{disable_account_evaluator, terminate_session_evaluator, SessionRegistry};
use crate::threat::threat_level_evaluator;
use crate::threshold::{threshold_evaluator, ThresholdTracker};
use crate::time::time_window_evaluator;
use gaa_audit::log::AuditLog;
use gaa_audit::notify::Notifier;
use gaa_audit::time::Clock;
use gaa_core::config::ConfigFile;
use gaa_core::GaaApiBuilder;
use gaa_ids::anomaly::AnomalyDetector;
use gaa_ids::ThreatMonitor;
use std::sync::Arc;

/// The shared services the standard evaluators depend on.
///
/// One bundle serves the whole application; clone freely (all members share
/// state through `Arc`s).
#[derive(Clone)]
pub struct StandardServices {
    /// Clock shared with the API and server.
    pub clock: Arc<dyn Clock>,
    /// The IDS threat-level provider (§7.1).
    pub threat: ThreatMonitor,
    /// The mutable group store (BadGuys blacklist, §7.2).
    pub groups: GroupStore,
    /// Notification transport (§7.2 `rr_cond notify`).
    pub notifier: Arc<dyn Notifier>,
    /// Audit log shared with the server.
    pub audit: AuditLog,
    /// Sliding-window event tracker (§3 item 4 thresholds).
    pub thresholds: ThresholdTracker,
    /// Connection-level countermeasures (§1: network blocks, service stop).
    pub firewall: Firewall,
    /// Profile builder / anomaly detector (§9 future work, implemented).
    pub anomaly: AnomalyDetector,
    /// Session store (§1: "terminating the session, logging the user off").
    pub sessions: SessionRegistry,
}

impl StandardServices {
    /// Builds a service bundle over `clock` and `notifier` with fresh
    /// shared state.
    pub fn new(clock: Arc<dyn Clock>, notifier: Arc<dyn Notifier>) -> Self {
        StandardServices {
            threat: ThreatMonitor::new(clock.clone()),
            groups: GroupStore::new(),
            audit: AuditLog::new(),
            thresholds: ThresholdTracker::new(clock.clone()),
            firewall: Firewall::new(clock.clone()),
            anomaly: AnomalyDetector::new(),
            sessions: SessionRegistry::new(clock.clone()),
            clock,
            notifier,
        }
    }
}

/// Every `(condition type, authority)` pair the standard catalog knows
/// about, whether or not [`register_standard`] installs an evaluator for it.
///
/// The third column records whether the pair gets a runtime evaluator:
/// `redirect` is deliberately `false` — it is resolved by the server's
/// answer-code path (§6 2d), never by the registry — so the static analyzer
/// must not flag it as a MAYBE-only condition.
///
/// This table is what `gaa-analyze` uses for "did you mean …" typo
/// suggestions: a condition type close to one of these names but matching
/// none is almost certainly a misspelling.
pub const KNOWN_CONDITIONS: &[(&str, &str, bool)] = &[
    ("regex", "gnu", true),
    ("system_threat_level", "local", true),
    ("accessid", "USER", true),
    ("accessid", "GROUP", true),
    ("accessid", "HOST", true),
    ("location", "local", true),
    ("time_window", "local", true),
    ("expr", "local", true),
    ("threshold", "local", true),
    ("notify", "local", true),
    ("update_log", "local", true),
    ("audit", "local", true),
    ("block_network", "local", true),
    ("stop_service", "local", true),
    ("anomaly", "local", true),
    ("terminate_session", "local", true),
    ("disable_account", "local", true),
    ("cpu_limit", "local", true),
    ("mem_limit", "local", true),
    ("wall_limit", "local", true),
    ("files_limit", "local", true),
    ("redirect", "local", false),
];

/// The sorted `(type, authority)` keys [`register_standard`] actually
/// registers — i.e. [`KNOWN_CONDITIONS`] minus the evaluator-less entries.
///
/// Matches `ConditionRegistry::registered_keys()` on a registry built by
/// [`register_standard`]; the analyzer uses it as the default registry
/// snapshot when no live registry is at hand.
pub fn standard_registered_keys() -> Vec<(String, String)> {
    let mut keys: Vec<(String, String)> = KNOWN_CONDITIONS
        .iter()
        .filter(|(_, _, registered)| *registered)
        .map(|(t, a, _)| (t.to_string(), a.to_string()))
        .collect();
    keys.sort();
    keys
}

/// Registers the **entire** standard condition library on `builder` under
/// the names the paper's policies use.
///
/// | type | authority |
/// |---|---|
/// | `regex` | `gnu` |
/// | `system_threat_level` | `local` |
/// | `accessid` | `USER`, `GROUP`, `HOST` |
/// | `location` | `local` |
/// | `time_window` | `local` |
/// | `expr` | `local` |
/// | `threshold` | `local` |
/// | `notify` | `local` |
/// | `update_log` | `local` |
/// | `audit` | `local` |
/// | `cpu_limit`, `mem_limit`, `wall_limit`, `files_limit` | `local` |
///
/// The `redirect` type is intentionally **not** registered (§6 2d).
///
/// Also wires the services' shared [`AuditLog`] into the API so evaluator
/// faults, denials and mid-condition violations land in the same log the
/// response actions write to.
#[must_use]
pub fn register_standard(builder: GaaApiBuilder, services: &StandardServices) -> GaaApiBuilder {
    builder
        .with_audit(services.audit.clone())
        .register("regex", "gnu", regex_evaluator)
        .register(
            "system_threat_level",
            "local",
            threat_level_evaluator(services.threat.clone()),
        )
        .register("accessid", "USER", user_evaluator())
        .register(
            "accessid",
            "GROUP",
            group_evaluator(services.groups.clone()),
        )
        .register("accessid", "HOST", host_evaluator())
        .register("location", "local", location_evaluator())
        .register("time_window", "local", time_window_evaluator())
        .register("expr", "local", expr_evaluator())
        .register(
            "threshold",
            "local",
            threshold_evaluator(services.thresholds.clone()),
        )
        .register(
            "notify",
            "local",
            notify_evaluator(services.notifier.clone(), services.audit.clone()),
        )
        .register(
            "update_log",
            "local",
            update_log_evaluator(services.groups.clone(), services.audit.clone()),
        )
        .register("audit", "local", audit_evaluator(services.audit.clone()))
        .register(
            "block_network",
            "local",
            block_network_evaluator(services.firewall.clone()),
        )
        .register(
            "stop_service",
            "local",
            stop_service_evaluator(services.firewall.clone()),
        )
        .register(
            "anomaly",
            "local",
            anomaly_evaluator(services.anomaly.clone()),
        )
        .register(
            "terminate_session",
            "local",
            terminate_session_evaluator(services.sessions.clone(), services.audit.clone()),
        )
        .register(
            "disable_account",
            "local",
            disable_account_evaluator(
                services.sessions.clone(),
                services.groups.clone(),
                services.audit.clone(),
            ),
        )
        .register("cpu_limit", "local", cpu_limit_evaluator())
        .register("mem_limit", "local", mem_limit_evaluator())
        .register("wall_limit", "local", wall_limit_evaluator())
        .register("files_limit", "local", files_limit_evaluator())
}

/// Registers only the routines named by `register` lines in `config`,
/// resolving `builtin:<name>` routine names against the standard catalog.
///
/// Unknown routine names are skipped and returned so the caller can report
/// them (§6 initializes from system *and* local configuration files; a typo
/// in one must not silently disable the rest).
pub fn register_from_config(
    mut builder: GaaApiBuilder,
    config: &ConfigFile,
    services: &StandardServices,
) -> (GaaApiBuilder, Vec<String>) {
    let mut unknown = Vec::new();
    for registration in &config.registrations {
        let cond_type = registration.cond_type.clone();
        let authority = registration.authority.clone();
        builder = match registration.routine.as_str() {
            "builtin:regex" => builder.register(cond_type, authority, regex_evaluator),
            "builtin:system_threat_level" => builder.register(
                cond_type,
                authority,
                threat_level_evaluator(services.threat.clone()),
            ),
            "builtin:accessid_user" => builder.register(cond_type, authority, user_evaluator()),
            "builtin:accessid_group" => builder.register(
                cond_type,
                authority,
                group_evaluator(services.groups.clone()),
            ),
            "builtin:accessid_host" => builder.register(cond_type, authority, host_evaluator()),
            "builtin:location" => builder.register(cond_type, authority, location_evaluator()),
            "builtin:time_window" => {
                builder.register(cond_type, authority, time_window_evaluator())
            }
            "builtin:expr" => builder.register(cond_type, authority, expr_evaluator()),
            "builtin:threshold" => builder.register(
                cond_type,
                authority,
                threshold_evaluator(services.thresholds.clone()),
            ),
            "builtin:notify" => builder.register(
                cond_type,
                authority,
                notify_evaluator(services.notifier.clone(), services.audit.clone()),
            ),
            "builtin:update_log" => builder.register(
                cond_type,
                authority,
                update_log_evaluator(services.groups.clone(), services.audit.clone()),
            ),
            "builtin:audit" => builder.register(
                cond_type,
                authority,
                audit_evaluator(services.audit.clone()),
            ),
            "builtin:block_network" => builder.register(
                cond_type,
                authority,
                block_network_evaluator(services.firewall.clone()),
            ),
            "builtin:stop_service" => builder.register(
                cond_type,
                authority,
                stop_service_evaluator(services.firewall.clone()),
            ),
            "builtin:terminate_session" => builder.register(
                cond_type,
                authority,
                terminate_session_evaluator(services.sessions.clone(), services.audit.clone()),
            ),
            "builtin:disable_account" => builder.register(
                cond_type,
                authority,
                disable_account_evaluator(
                    services.sessions.clone(),
                    services.groups.clone(),
                    services.audit.clone(),
                ),
            ),
            "builtin:anomaly" => builder.register(
                cond_type,
                authority,
                anomaly_evaluator(services.anomaly.clone()),
            ),
            "builtin:cpu_limit" => builder.register(cond_type, authority, cpu_limit_evaluator()),
            "builtin:mem_limit" => builder.register(cond_type, authority, mem_limit_evaluator()),
            "builtin:wall_limit" => builder.register(cond_type, authority, wall_limit_evaluator()),
            "builtin:files_limit" => {
                builder.register(cond_type, authority, files_limit_evaluator())
            }
            other => {
                unknown.push(other.to_string());
                builder
            }
        };
    }
    (builder, unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::notify::CollectingNotifier;
    use gaa_audit::VirtualClock;
    use gaa_core::config::parse_config;
    use gaa_core::{MemoryPolicyStore, RightPattern, SecurityContext};
    use gaa_eacl::parse_eacl;
    use gaa_ids::ThreatLevel;

    fn services() -> StandardServices {
        StandardServices::new(
            Arc::new(VirtualClock::new()),
            Arc::new(CollectingNotifier::new()),
        )
    }

    #[test]
    fn standard_registration_covers_paper_policies() {
        let services = services();
        let mut store = MemoryPolicyStore::new();
        // The §7.2 local policy, verbatim semantics.
        store.set_local(
            "/cgi-bin/phf",
            vec![parse_eacl(
                "neg_access_right apache *\n\
                 pre_cond regex gnu *phf* *test-cgi*\n\
                 rr_cond notify local on:failure/sysadmin/info:cgi_exploit\n\
                 rr_cond update_log local on:failure/BadGuys/info:ip\n\
                 pos_access_right apache *\n",
            )
            .unwrap()],
        );
        let api = register_standard(
            GaaApiBuilder::new(Arc::new(store)).with_clock(services.clock.clone()),
            &services,
        )
        .build();

        let policy = api.get_object_policy_info("/cgi-bin/phf").unwrap();
        let ctx = SecurityContext::new()
            .with_client_ip("203.0.113.9")
            .with_object("/cgi-bin/phf")
            .with_param(gaa_core::Param::new("url", "apache", "/cgi-bin/phf?Q=x"));
        let result = api.check_authorization(&policy, &RightPattern::new("apache", "GET"), &ctx);
        assert!(result.status().is_no(), "{result}");
        assert!(services.groups.contains("BadGuys", "203.0.113.9"));
    }

    #[test]
    fn redirect_is_not_registered() {
        let services = services();
        let api = register_standard(
            GaaApiBuilder::new(Arc::new(MemoryPolicyStore::new())),
            &services,
        )
        .build();
        assert!(!api.registry().is_registered("redirect", "local"));
        assert!(api.registry().is_registered("regex", "gnu"));
        assert!(api.registry().is_registered("accessid", "GROUP"));
        assert!(api.registry().len() >= 16);
    }

    #[test]
    fn known_conditions_table_matches_standard_registration() {
        let services = services();
        let api = register_standard(
            GaaApiBuilder::new(Arc::new(MemoryPolicyStore::new())),
            &services,
        )
        .build();
        assert_eq!(api.registry().registered_keys(), standard_registered_keys());
        // Evaluator-less entries are known but absent from the registry.
        for (cond_type, authority, registered) in KNOWN_CONDITIONS {
            assert_eq!(
                api.registry().is_registered(cond_type, authority),
                *registered,
                "{cond_type}/{authority}"
            );
        }
    }

    #[test]
    fn config_driven_registration() {
        let services = services();
        services.threat.set_level(ThreatLevel::High);
        let config = parse_config(
            "register system_threat_level local builtin:system_threat_level\n\
             register regex gnu builtin:regex\n\
             register custom_thing local plugin:does_not_exist\n",
        )
        .unwrap();
        let (builder, unknown) = register_from_config(
            GaaApiBuilder::new(Arc::new(MemoryPolicyStore::new())),
            &config,
            &services,
        );
        assert_eq!(unknown, vec!["plugin:does_not_exist".to_string()]);
        let api = builder.build();
        assert!(api.registry().is_registered("system_threat_level", "local"));
        assert!(api.registry().is_registered("regex", "gnu"));
        assert!(!api.registry().is_registered("custom_thing", "local"));
        assert!(!api.registry().is_registered("accessid", "USER"));
    }
}
