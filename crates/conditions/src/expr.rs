//! The `expr` condition: numeric comparisons over request parameters.
//!
//! §7.2: "The pre-condition `pre_cond expr local >1000` checks that the
//! length of input to a CGI script is no longer than 1000 characters. This
//! condition detects buffer overflow attacks, e.g. Code Red IIS attack."
//!
//! Value syntax: `<param><op><number>` where `<param>` names a context
//! parameter (e.g. `query_len`, `header_count`, `content_length`), `<op>` is
//! one of `< <= > >= = !=`, and bare `<op><number>` defaults the parameter
//! to `query_len` (matching the paper's shorthand above).
//!
//! The condition is **met when the comparison holds** — §7.2 attaches
//! `>1000` to a *negative* right, so an oversized input matches the guard
//! and the entry denies.

use gaa_core::{EvalDecision, EvalEnv};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Op {
    fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Op::Lt => lhs < rhs,
            Op::Le => lhs <= rhs,
            Op::Gt => lhs > rhs,
            Op::Ge => lhs >= rhs,
            Op::Eq => (lhs - rhs).abs() < f64::EPSILON,
            Op::Ne => (lhs - rhs).abs() >= f64::EPSILON,
        }
    }
}

/// Default parameter consulted when the expression names none.
pub const DEFAULT_PARAM: &str = "query_len";

fn parse_expr(value: &str) -> Option<(String, Op, f64)> {
    let value = value.trim();
    let op_pos = value.find(['<', '>', '=', '!'])?;
    let (param, rest) = value.split_at(op_pos);
    let param = param.trim();
    let param = if param.is_empty() {
        DEFAULT_PARAM
    } else {
        param
    };

    let (op, number) = if let Some(n) = rest.strip_prefix("<=") {
        (Op::Le, n)
    } else if let Some(n) = rest.strip_prefix(">=") {
        (Op::Ge, n)
    } else if let Some(n) = rest.strip_prefix("!=") {
        (Op::Ne, n)
    } else if let Some(n) = rest.strip_prefix("==") {
        (Op::Eq, n)
    } else if let Some(n) = rest.strip_prefix('<') {
        (Op::Lt, n)
    } else if let Some(n) = rest.strip_prefix('>') {
        (Op::Gt, n)
    } else if let Some(n) = rest.strip_prefix('=') {
        (Op::Eq, n)
    } else {
        return None;
    };
    let number: f64 = number.trim().parse().ok()?;
    Some((param.to_string(), op, number))
}

/// Builds the `expr` evaluator.
///
/// * malformed expression → `Unevaluated`;
/// * named parameter missing from the context → `Unevaluated`;
/// * parameter present but non-numeric → `Unevaluated`.
pub fn expr_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| {
        let Some((param, op, rhs)) = parse_expr(value) else {
            return EvalDecision::Unevaluated;
        };
        let Some(text) = env.context.param(&param) else {
            return EvalDecision::Unevaluated;
        };
        let Ok(lhs) = text.trim().parse::<f64>() else {
            return EvalDecision::Unevaluated;
        };
        if op.apply(lhs, rhs) {
            EvalDecision::Met
        } else {
            EvalDecision::NotMet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::{Param, SecurityContext};

    fn ctx_with(param: &str, value: &str) -> SecurityContext {
        SecurityContext::new().with_param(Param::new(param, "apache", value))
    }

    fn eval_on(ctx: &SecurityContext, value: &str) -> EvalDecision {
        let eval = expr_evaluator();
        let env = EvalEnv::pre(ctx, Timestamp::from_millis(0));
        eval(value, &env)
    }

    #[test]
    fn paper_overflow_shorthand() {
        // ">1000" with no parameter name reads query_len.
        let long = ctx_with("query_len", "1001");
        let short = ctx_with("query_len", "42");
        assert_eq!(eval_on(&long, ">1000"), EvalDecision::Met);
        assert_eq!(eval_on(&short, ">1000"), EvalDecision::NotMet);
        assert_eq!(
            eval_on(&ctx_with("query_len", "1000"), ">1000"),
            EvalDecision::NotMet
        );
    }

    #[test]
    fn named_parameters_and_all_operators() {
        let ctx = ctx_with("header_count", "30");
        assert_eq!(eval_on(&ctx, "header_count>20"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, "header_count>=30"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, "header_count<30"), EvalDecision::NotMet);
        assert_eq!(eval_on(&ctx, "header_count<=30"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, "header_count=30"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, "header_count==30"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, "header_count!=30"), EvalDecision::NotMet);
        assert_eq!(eval_on(&ctx, "header_count!=31"), EvalDecision::Met);
    }

    #[test]
    fn floats_and_whitespace() {
        let ctx = ctx_with("load", "0.75");
        assert_eq!(eval_on(&ctx, "load > 0.5"), EvalDecision::Met);
        assert_eq!(eval_on(&ctx, " load <= 0.75 "), EvalDecision::Met);
    }

    #[test]
    fn missing_or_non_numeric_parameter_is_unevaluated() {
        let ctx = SecurityContext::new();
        assert_eq!(eval_on(&ctx, ">1000"), EvalDecision::Unevaluated);
        let ctx = ctx_with("query_len", "not-a-number");
        assert_eq!(eval_on(&ctx, ">1000"), EvalDecision::Unevaluated);
    }

    #[test]
    fn malformed_expressions_are_unevaluated() {
        let ctx = ctx_with("query_len", "5");
        assert_eq!(eval_on(&ctx, "query_len"), EvalDecision::Unevaluated);
        assert_eq!(eval_on(&ctx, ">"), EvalDecision::Unevaluated);
        assert_eq!(eval_on(&ctx, ">abc"), EvalDecision::Unevaluated);
        assert_eq!(eval_on(&ctx, ""), EvalDecision::Unevaluated);
    }
}
