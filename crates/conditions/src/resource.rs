//! Mid-condition evaluators: resource ceilings during operation execution.
//!
//! §1 phase 2: "During the execution of the authorized operation; to detect
//! malicious behavior in real-time (e.g., a user process consumes excessive
//! system resources)". §2's example mid-condition is "a CPU usage threshold
//! that must hold during the operation execution".
//!
//! Four evaluators read the [`ExecutionMetrics`](gaa_core::ExecutionMetrics)
//! snapshot supplied by `gaa_execution_control`:
//!
//! * `cpu_limit local <ticks>` — CPU consumption ceiling;
//! * `mem_limit local <bytes>` — memory ceiling;
//! * `wall_limit local <millis>` — wall-clock ceiling;
//! * `files_limit local <count>` — created-files ceiling (§3 item 6:
//!   "unusual or suspicious application behavior such as creating files").
//!
//! Each is **met while consumption is at or below the limit** and fails once
//! it exceeds it, at which point the server aborts the operation. Outside
//! the mid phase (no metrics available) they are unevaluated.

use gaa_core::{EvalDecision, EvalEnv};

fn limit_evaluator(
    metric: fn(&gaa_core::ExecutionMetrics) -> u64,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Ok(limit) = value.trim().parse::<u64>() else {
            return EvalDecision::Unevaluated;
        };
        match env.execution {
            Some(metrics) => {
                if metric(metrics) <= limit {
                    EvalDecision::Met
                } else {
                    EvalDecision::NotMet
                }
            }
            None => EvalDecision::Unevaluated,
        }
    }
}

/// Builds the `cpu_limit` evaluator.
pub fn cpu_limit_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    limit_evaluator(|m| m.cpu_ticks)
}

/// Builds the `mem_limit` evaluator.
pub fn mem_limit_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    limit_evaluator(|m| m.memory_bytes)
}

/// Builds the `wall_limit` evaluator (milliseconds).
pub fn wall_limit_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    limit_evaluator(|m| m.wall_millis)
}

/// Builds the `files_limit` evaluator.
pub fn files_limit_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    limit_evaluator(|m| u64::from(m.files_created))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::{ExecutionMetrics, SecurityContext};
    use gaa_eacl::CondPhase;

    fn mid_env<'a>(ctx: &'a SecurityContext, metrics: &'a ExecutionMetrics) -> EvalEnv<'a> {
        EvalEnv {
            context: ctx,
            phase: CondPhase::Mid,
            now: Timestamp::from_millis(0),
            request_outcome: None,
            operation_outcome: None,
            execution: Some(metrics),
        }
    }

    #[test]
    fn limits_met_at_boundary_failed_above() {
        let ctx = SecurityContext::new();
        let metrics = ExecutionMetrics {
            cpu_ticks: 250,
            memory_bytes: 1_048_576,
            wall_millis: 900,
            files_created: 3,
        };
        let env = mid_env(&ctx, &metrics);

        assert_eq!(cpu_limit_evaluator()("250", &env), EvalDecision::Met);
        assert_eq!(cpu_limit_evaluator()("249", &env), EvalDecision::NotMet);
        assert_eq!(mem_limit_evaluator()("1048576", &env), EvalDecision::Met);
        assert_eq!(mem_limit_evaluator()("1000000", &env), EvalDecision::NotMet);
        assert_eq!(wall_limit_evaluator()("1000", &env), EvalDecision::Met);
        assert_eq!(wall_limit_evaluator()("500", &env), EvalDecision::NotMet);
        assert_eq!(files_limit_evaluator()("3", &env), EvalDecision::Met);
        assert_eq!(files_limit_evaluator()("2", &env), EvalDecision::NotMet);
        assert_eq!(files_limit_evaluator()("0", &env), EvalDecision::NotMet);
    }

    #[test]
    fn zero_usage_meets_any_limit() {
        let ctx = SecurityContext::new();
        let metrics = ExecutionMetrics::zero();
        let env = mid_env(&ctx, &metrics);
        assert_eq!(cpu_limit_evaluator()("0", &env), EvalDecision::Met);
        assert_eq!(files_limit_evaluator()("0", &env), EvalDecision::Met);
    }

    #[test]
    fn without_metrics_unevaluated() {
        let ctx = SecurityContext::new();
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(
            cpu_limit_evaluator()("100", &env),
            EvalDecision::Unevaluated
        );
        assert_eq!(
            wall_limit_evaluator()("100", &env),
            EvalDecision::Unevaluated
        );
    }

    #[test]
    fn malformed_limit_unevaluated() {
        let ctx = SecurityContext::new();
        let metrics = ExecutionMetrics::zero();
        let env = mid_env(&ctx, &metrics);
        assert_eq!(
            cpu_limit_evaluator()("lots", &env),
            EvalDecision::Unevaluated
        );
        assert_eq!(cpu_limit_evaluator()("", &env), EvalDecision::Unevaluated);
        assert_eq!(cpu_limit_evaluator()("-5", &env), EvalDecision::Unevaluated);
    }
}
