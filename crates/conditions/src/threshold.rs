//! The `threshold` condition: sliding-window event counting.
//!
//! §3 item 4: the GAA-API reports "violating threshold conditions, e.g.,
//! the number of failed login attempts within a given period of time". §2
//! makes thresholds adaptive: the limit "can change in the event of possible
//! security attacks" and "can be supplied by other services, e.g., an IDS".
//!
//! The application feeds events into a shared [`ThresholdTracker`]
//! (`tracker.record("failed_logins", client_ip)`); the condition value
//! `failed_logins:5/60` is **met when the subject has at least 5 events in
//! the last 60 seconds** — policies attach it to `neg_access_right` entries
//! so violators are denied. The numeric limit may be replaced by `@<param>`
//! to read an adaptive limit published by a host IDS
//! (`failed_logins:@login_limit/60`).

use gaa_audit::time::{Clock, Timestamp};
use gaa_core::{EvalDecision, EvalEnv};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Event queues keyed by `(metric, subject)`.
type EventMap = HashMap<(String, String), VecDeque<Timestamp>>;

/// Shared sliding-window event tracker, keyed by `(metric, subject)`.
///
/// Cloning shares the tracker.
#[derive(Debug, Clone)]
pub struct ThresholdTracker {
    clock: Arc<dyn Clock>,
    events: Arc<Mutex<EventMap>>,
    /// Adaptive limits published by an IDS (§2); consulted by `@param`
    /// condition values.
    limits: Arc<Mutex<HashMap<String, f64>>>,
    /// Events older than this are dropped at record time. Bounds memory;
    /// windows longer than the retention undercount and should raise it.
    retention: Duration,
}

impl ThresholdTracker {
    /// A tracker over `clock` with one hour of event retention.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        ThresholdTracker {
            clock,
            events: Arc::new(Mutex::new(HashMap::new())),
            limits: Arc::new(Mutex::new(HashMap::new())),
            retention: Duration::from_secs(3600),
        }
    }

    /// Sets the retention horizon (must cover the longest window any policy
    /// uses).
    #[must_use]
    pub fn with_retention(mut self, retention: Duration) -> Self {
        self.retention = retention;
        self
    }

    /// Records one event of `metric` for `subject` (e.g. a failed login by
    /// an IP) at the current time, pruning events beyond the retention
    /// horizon.
    pub fn record(&self, metric: &str, subject: &str) {
        let now = self.clock.now();
        let retention_cutoff = now.minus(self.retention);
        let mut events = self.events.lock();
        let queue = events
            .entry((metric.to_string(), subject.to_string()))
            .or_default();
        while queue.front().is_some_and(|&t| t < retention_cutoff) {
            queue.pop_front();
        }
        queue.push_back(now);
    }

    /// Number of events of `metric` for `subject` within the trailing
    /// `window`.
    ///
    /// Non-mutating: queries with different windows on the same metric do
    /// not interfere (several policy entries may watch the same metric over
    /// different horizons).
    pub fn count(&self, metric: &str, subject: &str, window: Duration) -> usize {
        let now = self.clock.now();
        let cutoff = now.minus(window);
        let events = self.events.lock();
        match events.get(&(metric.to_string(), subject.to_string())) {
            Some(queue) => queue.iter().filter(|&&t| t >= cutoff).count(),
            None => 0,
        }
    }

    /// Publishes an adaptive limit (typically from an
    /// [`IdsAdvisory::ThresholdUpdate`](gaa_ids::IdsAdvisory)).
    pub fn set_limit(&self, parameter: &str, value: f64) {
        self.limits.lock().insert(parameter.to_string(), value);
    }

    /// Reads an adaptive limit.
    pub fn limit(&self, parameter: &str) -> Option<f64> {
        self.limits.lock().get(parameter).copied()
    }
}

/// Parsed condition value: metric, limit spec, window.
fn parse_spec(value: &str) -> Option<(String, LimitSpec, Duration)> {
    let value = value.trim();
    let (metric, rest) = value.split_once(':')?;
    let (limit, window) = rest.split_once('/')?;
    let limit = if let Some(param) = limit.strip_prefix('@') {
        LimitSpec::Adaptive(param.trim().to_string())
    } else {
        LimitSpec::Fixed(limit.trim().parse().ok()?)
    };
    let window_s: u64 = window.trim().parse().ok()?;
    Some((
        metric.trim().to_string(),
        limit,
        Duration::from_secs(window_s),
    ))
}

enum LimitSpec {
    Fixed(f64),
    Adaptive(String),
}

/// Builds the `threshold` evaluator over a shared tracker.
///
/// Met when the subject's event count within the window **reaches** the
/// limit. Both identity facets are consulted — the authenticated user *and*
/// the client address — and the larger count decides, so presenting correct
/// credentials cannot wash out a source-keyed lockout (and vice versa).
/// Unevaluated on malformed specs, unknown adaptive limits, or when the
/// context carries no identity at all.
pub fn threshold_evaluator(
    tracker: ThresholdTracker,
) -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    move |value: &str, env: &EvalEnv<'_>| {
        let Some((metric, limit_spec, window)) = parse_spec(value) else {
            return EvalDecision::Unevaluated;
        };
        let limit = match limit_spec {
            LimitSpec::Fixed(n) => n,
            LimitSpec::Adaptive(param) => match tracker.limit(&param) {
                Some(n) => n,
                None => return EvalDecision::Unevaluated,
            },
        };
        let subjects: Vec<&str> = env
            .context
            .user()
            .into_iter()
            .chain(env.context.client_ip())
            .collect();
        if subjects.is_empty() {
            return EvalDecision::Unevaluated;
        }
        let count = subjects
            .into_iter()
            .map(|s| tracker.count(&metric, s, window))
            .max()
            .unwrap_or(0) as f64;
        if count >= limit {
            EvalDecision::Met
        } else {
            EvalDecision::NotMet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::VirtualClock;
    use gaa_core::SecurityContext;

    fn setup() -> (VirtualClock, ThresholdTracker) {
        let clock = VirtualClock::new();
        let tracker = ThresholdTracker::new(Arc::new(clock.clone()));
        (clock, tracker)
    }

    #[test]
    fn window_counting_and_pruning() {
        let (clock, tracker) = setup();
        tracker.record("failed_logins", "1.2.3.4");
        tracker.record("failed_logins", "1.2.3.4");
        clock.advance(Duration::from_secs(30));
        tracker.record("failed_logins", "1.2.3.4");
        assert_eq!(
            tracker.count("failed_logins", "1.2.3.4", Duration::from_secs(60)),
            3
        );
        clock.advance(Duration::from_secs(31));
        // The first two are now outside a 60s window.
        assert_eq!(
            tracker.count("failed_logins", "1.2.3.4", Duration::from_secs(60)),
            1
        );
        assert_eq!(
            tracker.count("failed_logins", "9.9.9.9", Duration::from_secs(60)),
            0
        );
    }

    #[test]
    fn subjects_and_metrics_are_independent() {
        let (_clock, tracker) = setup();
        tracker.record("failed_logins", "a");
        tracker.record("requests", "a");
        tracker.record("failed_logins", "b");
        assert_eq!(
            tracker.count("failed_logins", "a", Duration::from_secs(60)),
            1
        );
        assert_eq!(tracker.count("requests", "a", Duration::from_secs(60)), 1);
        assert_eq!(
            tracker.count("failed_logins", "b", Duration::from_secs(60)),
            1
        );
    }

    #[test]
    fn evaluator_trips_at_limit() {
        let (_clock, tracker) = setup();
        let eval = threshold_evaluator(tracker.clone());
        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));

        for _ in 0..4 {
            tracker.record("failed_logins", "1.2.3.4");
        }
        assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::NotMet);
        tracker.record("failed_logins", "1.2.3.4");
        assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::Met);
    }

    #[test]
    fn evaluator_window_expiry_resets() {
        let (clock, tracker) = setup();
        let eval = threshold_evaluator(tracker.clone());
        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        for _ in 0..5 {
            tracker.record("failed_logins", "1.2.3.4");
        }
        assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::Met);
        clock.advance(Duration::from_secs(61));
        assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::NotMet);
    }

    #[test]
    fn adaptive_limit_from_ids() {
        let (_clock, tracker) = setup();
        let eval = threshold_evaluator(tracker.clone());
        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));

        // Unknown adaptive parameter: unevaluated.
        assert_eq!(
            eval("failed_logins:@login_limit/60", &env),
            EvalDecision::Unevaluated
        );
        tracker.set_limit("login_limit", 2.0);
        tracker.record("failed_logins", "1.2.3.4");
        assert_eq!(
            eval("failed_logins:@login_limit/60", &env),
            EvalDecision::NotMet
        );
        tracker.record("failed_logins", "1.2.3.4");
        assert_eq!(
            eval("failed_logins:@login_limit/60", &env),
            EvalDecision::Met
        );
        // IDS tightens the limit under attack (§2 adaptive constraints).
        tracker.set_limit("login_limit", 1.0);
        assert_eq!(
            eval("failed_logins:@login_limit/60", &env),
            EvalDecision::Met
        );
    }

    #[test]
    fn evaluator_prefers_user_subject() {
        let (_clock, tracker) = setup();
        let eval = threshold_evaluator(tracker.clone());
        let ctx = SecurityContext::new()
            .with_user("alice")
            .with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        tracker.record("failed_logins", "alice");
        assert_eq!(eval("failed_logins:1/60", &env), EvalDecision::Met);
    }

    #[test]
    fn anonymous_and_malformed_are_unevaluated() {
        let (_clock, tracker) = setup();
        let eval = threshold_evaluator(tracker);
        let anon = SecurityContext::new();
        let env = EvalEnv::pre(&anon, Timestamp::from_millis(0));
        assert_eq!(eval("failed_logins:5/60", &env), EvalDecision::Unevaluated);

        let ctx = SecurityContext::new().with_client_ip("1.2.3.4");
        let env = EvalEnv::pre(&ctx, Timestamp::from_millis(0));
        assert_eq!(eval("nonsense", &env), EvalDecision::Unevaluated);
        assert_eq!(eval("m:x/60", &env), EvalDecision::Unevaluated);
        assert_eq!(eval("m:5/x", &env), EvalDecision::Unevaluated);
    }
}
