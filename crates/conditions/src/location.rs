//! The `location` condition: client-address restrictions.
//!
//! §2 lists location among the adaptive constraints; §4's `.htaccess`
//! baseline uses `Allow from <ip-range>`. The value is a whitespace-
//! separated list of:
//!
//! * dotted prefixes — `128.9.` matches `128.9.x.y` (Apache style);
//! * CIDR blocks — `10.0.0.0/8`;
//! * the keyword `all`.
//!
//! The condition is met when the client IP matches *any* element;
//! unevaluated when the context has no client IP.

use gaa_core::{EvalDecision, EvalEnv};
use std::net::Ipv4Addr;

/// One parsed location pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationPattern {
    /// Matches every address.
    All,
    /// Dotted prefix, e.g. `128.9.`.
    Prefix(String),
    /// IPv4 CIDR block.
    Cidr {
        /// Network address (host bits already masked off).
        network: Ipv4Addr,
        /// Prefix length 0–32.
        bits: u8,
    },
}

impl LocationPattern {
    /// Parses one pattern; `None` for malformed input.
    pub fn parse(text: &str) -> Option<LocationPattern> {
        let text = text.trim();
        if text.is_empty() {
            return None;
        }
        if text.eq_ignore_ascii_case("all") {
            return Some(LocationPattern::All);
        }
        if let Some((addr, bits)) = text.split_once('/') {
            let addr: Ipv4Addr = addr.parse().ok()?;
            let bits: u8 = bits.parse().ok()?;
            if bits > 32 {
                return None;
            }
            let mask = if bits == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(bits))
            };
            let network = Ipv4Addr::from(u32::from(addr) & mask);
            return Some(LocationPattern::Cidr { network, bits });
        }
        // A full address parses as a /32; anything else dotted is a prefix.
        if let Ok(addr) = text.parse::<Ipv4Addr>() {
            return Some(LocationPattern::Cidr {
                network: addr,
                bits: 32,
            });
        }
        if text.chars().all(|c| c.is_ascii_digit() || c == '.') {
            return Some(LocationPattern::Prefix(text.to_string()));
        }
        None
    }

    /// Does this pattern cover `ip`?
    pub fn matches(&self, ip: &str) -> bool {
        match self {
            LocationPattern::All => true,
            LocationPattern::Prefix(prefix) => ip.starts_with(prefix.as_str()),
            LocationPattern::Cidr { network, bits } => match ip.parse::<Ipv4Addr>() {
                Ok(addr) => {
                    let mask = if *bits == 0 {
                        0
                    } else {
                        u32::MAX << (32 - u32::from(*bits))
                    };
                    (u32::from(addr) & mask) == u32::from(*network)
                }
                Err(_) => false,
            },
        }
    }
}

/// Does `ip` match any pattern in the whitespace-separated `value`?
/// Malformed list elements are skipped (they can never grant access).
pub fn location_matches(value: &str, ip: &str) -> bool {
    value
        .split_whitespace()
        .filter_map(LocationPattern::parse)
        .any(|pattern| pattern.matches(ip))
}

/// Builds the `location` evaluator.
pub fn location_evaluator() -> impl Fn(&str, &EvalEnv<'_>) -> EvalDecision + Send + Sync {
    |value: &str, env: &EvalEnv<'_>| match env.context.client_ip() {
        Some(ip) => {
            if location_matches(value, ip) {
                EvalDecision::Met
            } else {
                EvalDecision::NotMet
            }
        }
        None => EvalDecision::Unevaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaa_audit::Timestamp;
    use gaa_core::SecurityContext;

    #[test]
    fn prefix_patterns() {
        let p = LocationPattern::parse("128.9.").unwrap();
        assert!(p.matches("128.9.160.23"));
        assert!(!p.matches("128.10.0.1"));
        // Prefix matching is textual, like Apache's: "128.9" would also
        // match "128.90.…"; policy authors write the trailing dot.
        let loose = LocationPattern::parse("128.9").unwrap();
        assert!(loose.matches("128.90.0.1"));
    }

    #[test]
    fn cidr_patterns() {
        let p = LocationPattern::parse("10.0.0.0/8").unwrap();
        assert!(p.matches("10.255.1.2"));
        assert!(!p.matches("11.0.0.1"));

        let p = LocationPattern::parse("192.168.1.0/24").unwrap();
        assert!(p.matches("192.168.1.200"));
        assert!(!p.matches("192.168.2.1"));

        // Non-canonical network addresses are masked.
        let p = LocationPattern::parse("192.168.1.77/24").unwrap();
        assert!(p.matches("192.168.1.1"));

        let p = LocationPattern::parse("0.0.0.0/0").unwrap();
        assert!(p.matches("8.8.8.8"));
    }

    #[test]
    fn exact_address_is_slash_32() {
        let p = LocationPattern::parse("203.0.113.9").unwrap();
        assert!(p.matches("203.0.113.9"));
        assert!(!p.matches("203.0.113.10"));
    }

    #[test]
    fn all_keyword() {
        assert!(LocationPattern::parse("all").unwrap().matches("1.2.3.4"));
        assert!(LocationPattern::parse("ALL").unwrap().matches("1.2.3.4"));
    }

    #[test]
    fn malformed_patterns_rejected() {
        assert_eq!(LocationPattern::parse(""), None);
        assert_eq!(LocationPattern::parse("10.0.0.0/33"), None);
        assert_eq!(LocationPattern::parse("not-an-ip"), None);
        assert_eq!(LocationPattern::parse("10.0.0.0/x"), None);
    }

    #[test]
    fn list_matching_skips_bad_elements() {
        assert!(location_matches("garbage 10.0.0.0/8", "10.1.1.1"));
        assert!(!location_matches("garbage", "10.1.1.1"));
        assert!(location_matches("128.9. 10.0.0.0/8", "128.9.1.1"));
    }

    #[test]
    fn evaluator_tristate() {
        let eval = location_evaluator();
        let inside = SecurityContext::new().with_client_ip("128.9.160.23");
        let outside = SecurityContext::new().with_client_ip("198.51.100.7");
        let anon = SecurityContext::new();
        let env = EvalEnv::pre(&inside, Timestamp::from_millis(0));
        assert_eq!(eval("128.9.", &env), EvalDecision::Met);
        let env = EvalEnv::pre(&outside, Timestamp::from_millis(0));
        assert_eq!(eval("128.9.", &env), EvalDecision::NotMet);
        let env = EvalEnv::pre(&anon, Timestamp::from_millis(0));
        assert_eq!(eval("128.9.", &env), EvalDecision::Unevaluated);
    }
}
