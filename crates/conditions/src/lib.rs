//! # gaa-conditions — the standard condition-evaluator library
//!
//! The GAA-API core (`gaa-core`) evaluates policies but knows no condition
//! semantics: every condition type is served by a registered routine. This
//! crate is the standard routine library covering everything the paper's
//! deployments use (§7) plus the adaptive machinery of §2/§3:
//!
//! | condition (type, authority) | module | §
//! |---|---|---|
//! | `regex gnu <glob…>` / `re:<regex>` | [`regex`] | §7.2 signatures |
//! | `system_threat_level local =high/>low/…` | [`threat`] | §7.1 |
//! | `accessid USER/GROUP/HOST <pattern>` | [`identity`] | §7.1, §7.2 |
//! | `location local <prefix|CIDR…>` | [`location`] | §2 |
//! | `time_window local 9-17[@mon-fri]` | [`time`] | §2 "after hours" |
//! | `expr local <param><op><number>` | [`expr`] | §7.2 overflow check |
//! | `threshold local <key>:<max>/<window_s>` | [`threshold`] | §3 item 4 |
//! | `notify local on:<trigger>/<rcpt>/info:<tag>` | [`actions`] | §7.2 |
//! | `update_log local on:<trigger>/<group>/info:ip` | [`actions`] | §7.2 |
//! | `audit local on:<trigger>/<category>` | [`actions`] | §1 countermeasures |
//! | `cpu_limit/mem_limit/wall_limit/files_limit local <n>` | [`resource`] | §2 mid-conditions |
//!
//! The **redirect** condition type (`redirect local <url>`) is deliberately
//! *never* registered: per §6 step 2d an unevaluated `pre_cond_redirect`
//! surfaces as `MAYBE` with the URL in the condition value, which
//! `AuthorizationResult::answer` translates into a 302.
//!
//! [`catalog`] bundles the services (threat monitor, group store, notifier,
//! audit log, threshold tracker) and registers the whole standard library on
//! a [`GaaApiBuilder`](gaa_core::GaaApiBuilder) in one call, or selectively
//! from a parsed configuration file (§6 step 1).

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod actions;
pub mod advisories;
pub mod anomaly;
pub mod catalog;
pub mod expr;
pub mod firewall;
pub mod identity;
pub mod location;
pub mod multipattern;
pub mod regex;
pub mod resource;
pub mod session;
pub mod threat;
pub mod threshold;
pub mod time;

pub use advisories::AdvisoryApplier;
pub use catalog::{
    register_standard, standard_registered_keys, StandardServices, KNOWN_CONDITIONS,
};
pub use firewall::Firewall;
pub use identity::{GroupStore, SubjectTable};
pub use multipattern::{CombinedMatcher, CompiledSignatureDb, MatchSet, PatternOracle};
pub use regex::Regex;
pub use session::SessionRegistry;
pub use threshold::ThresholdTracker;
