//! CEF-style structured alert export for external SIEM consumption.
//!
//! The paper keeps its alerts in-process (the administrator drains
//! [`AlertQueue`](crate::AlertQueue)); production IDS practice ships every
//! detection to an external SIEM in a structured, *injection-proof* format.
//! This module provides that egress path:
//!
//! * [`sanitize_field`] / [`sanitize_extension`] — the one escaping policy
//!   for everything user-controlled that ends up in a log line. A crafted
//!   URL containing `\n` or `|` must not be able to forge a second record
//!   or shift CEF columns; the same functions guard the in-process audit
//!   log (every [`AuditRecord`](crate::AuditRecord) field passes through
//!   [`sanitize_field`] at construction).
//! * [`CefEvent`] — an ArcSight-CEF-shaped event
//!   (`CEF:0|vendor|product|version|signatureId|name|severity|ext…`) built
//!   from an [`Alert`](crate::Alert) or an [`AuditRecord`](crate::AuditRecord).
//! * [`CefExporter`] — a bounded queue in front of a notifier sink. The
//!   sink is expected to be a [`RetryingNotifier`](crate::RetryingNotifier)
//!   (dead-letter on sustained sink failure is then inherited, and the
//!   export path can never block enforcement: the queue drops-and-counts
//!   when full, exactly like the audit ring).
//!
//! Concurrency: the queue lock and counters come from `gaa_race::sync`, so
//! the exporter is schedulable by the model checker like every other
//! concurrent component grown since PR 5.

use crate::log::{AuditRecord, AuditSeverity};
use crate::notify::{Notification, Notifier};
use crate::time::Timestamp;
// Shim primitives: model-checkable under gaa-race, passthrough otherwise.
use gaa_race::sync::{AtomicU64, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Escapes one user-controlled field for log-line embedding: backslash,
/// pipe, CR/LF and every other control byte (C0 plus DEL) are rewritten so
/// the output can never terminate a record early, forge a new one, or
/// shift a `|`-delimited CEF column. Printable text passes unchanged.
pub fn sanitize_field(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 || c as u32 == 0x7f => {
                out.push_str(&format!("\\x{:02x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// [`sanitize_field`] plus `=` escaping — CEF extension values use `=` as
/// the key/value separator, so a raw `=` in a crafted user agent could
/// smuggle extra keys into the SIEM's parsed view.
pub fn sanitize_extension(raw: &str) -> String {
    sanitize_field(raw).replace('=', "\\=")
}

/// CEF numeric severity for an audit severity class.
fn cef_severity(severity: AuditSeverity) -> u8 {
    match severity {
        AuditSeverity::Info => 2,
        AuditSeverity::Notice => 4,
        AuditSeverity::Warning => 7,
        AuditSeverity::Alert => 9,
    }
}

/// One SIEM-bound event, pre-rendering. All fields are sanitized at
/// construction; [`CefEvent::to_line`] only concatenates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CefEvent {
    /// Event time (exported as the `rt` extension, epoch milliseconds).
    pub time: Timestamp,
    /// CEF severity, `0..=10`.
    pub severity: u8,
    /// Stable event class id (the audit category, e.g. `ids.signature`).
    pub signature_id: String,
    /// Human-readable name.
    pub name: String,
    /// Extension key/value pairs, already escaped.
    extensions: Vec<(String, String)>,
}

impl CefEvent {
    /// Builds an event; `signature_id` and `name` are sanitized here,
    /// extensions as they are added.
    pub fn new(
        time: Timestamp,
        severity: u8,
        signature_id: impl Into<String>,
        name: impl Into<String>,
    ) -> Self {
        CefEvent {
            time,
            severity: severity.min(10),
            signature_id: sanitize_field(&signature_id.into()),
            name: sanitize_field(&name.into()),
            extensions: Vec::new(),
        }
    }

    /// Adds an extension pair (value sanitized for extension position).
    pub fn with_ext(mut self, key: impl Into<String>, value: &str) -> Self {
        self.extensions
            .push((sanitize_extension(&key.into()), sanitize_extension(value)));
        self
    }

    /// Converts an audit record: category becomes the signature id, subject
    /// and attributes become extensions.
    ///
    /// Record fields were already sanitized at
    /// [`AuditRecord::new`](crate::AuditRecord) time; conversion escapes
    /// again for the CEF position (adding `=` escaping, re-escaping the
    /// backslashes introduced earlier), so the extension carries the exact
    /// text of the in-process audit line.
    pub fn from_record(record: &AuditRecord) -> Self {
        let mut event = CefEvent::new(
            record.time,
            cef_severity(record.severity),
            record.category.clone(),
            record.message.clone(),
        )
        .with_ext("suser", &record.subject);
        for (key, value) in &record.attrs {
            event = event.with_ext(key.clone(), value);
        }
        event
    }

    /// Converts an administrator alert.
    pub fn from_alert(alert: &crate::alert::Alert) -> Self {
        CefEvent::new(
            alert.time,
            cef_severity(alert.severity),
            "gaa.alert",
            alert.reason.clone(),
        )
        .with_ext("suser", &alert.subject)
        .with_ext("act", &alert.action_taken)
    }

    /// Renders the CEF line:
    /// `CEF:0|gaa|gaa-httpd|0.1|signatureId|name|severity|rt=… k=v …`.
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "CEF:0|gaa|gaa-httpd|0.1|{}|{}|{}|rt={}",
            self.signature_id,
            self.name,
            self.severity,
            self.time.as_millis()
        );
        for (key, value) in &self.extensions {
            let _ = write!(line, " {key}={value}");
        }
        line
    }
}

impl fmt::Display for CefEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// Counter snapshot from [`CefExporter::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CefExportStats {
    /// Events accepted into the queue.
    pub enqueued: u64,
    /// Events dropped because the queue was full (counted, never blocking).
    pub dropped: u64,
    /// Events handed to the sink and acknowledged.
    pub delivered: u64,
    /// Events the sink gave up on (a retrying sink has already
    /// dead-lettered these into the audit log).
    pub failed: u64,
}

/// Bounded export queue in front of a SIEM sink.
///
/// Cloning shares the queue. `export` is called from the request path and
/// must stay cheap and non-blocking; `flush` is the slow half, called from
/// an operator loop, the swarm tick, or a test.
///
/// # Examples
///
/// ```rust
/// use gaa_audit::export::{CefEvent, CefExporter};
/// use gaa_audit::notify::CollectingNotifier;
/// use gaa_audit::Timestamp;
/// use std::sync::Arc;
///
/// let sink = Arc::new(CollectingNotifier::new());
/// let exporter = CefExporter::new(sink.clone(), 16);
/// exporter.export(CefEvent::new(Timestamp::from_millis(1), 9, "ids.attack", "phf probe"));
/// assert_eq!(exporter.flush(), 1);
/// assert!(sink.sent()[0].body.starts_with("CEF:0|gaa|"));
/// ```
#[derive(Debug, Clone)]
pub struct CefExporter {
    inner: Arc<ExporterInner>,
}

#[derive(Debug)]
struct ExporterInner {
    queue: Mutex<VecDeque<CefEvent>>,
    capacity: usize,
    sink: Arc<dyn Notifier>,
    recipient: String,
    enqueued: AtomicU64,
    dropped: AtomicU64,
    delivered: AtomicU64,
    failed: AtomicU64,
}

impl CefExporter {
    /// An exporter holding at most `capacity` undelivered events. Wrap
    /// `sink` in a [`RetryingNotifier`](crate::RetryingNotifier) to get
    /// backoff and dead-lettering on sink failure.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(sink: Arc<dyn Notifier>, capacity: usize) -> Self {
        assert!(capacity > 0, "export queue capacity must be non-zero");
        CefExporter {
            inner: Arc::new(ExporterInner {
                queue: Mutex::named("cef.queue", VecDeque::new()),
                capacity,
                sink,
                recipient: "siem".to_string(),
                enqueued: AtomicU64::named("cef.enqueued", 0),
                dropped: AtomicU64::named("cef.dropped", 0),
                delivered: AtomicU64::named("cef.delivered", 0),
                failed: AtomicU64::named("cef.failed", 0),
            }),
        }
    }

    /// Enqueues an event; returns `false` (and counts a drop) when the
    /// queue is full. Never blocks on the sink.
    pub fn export(&self, event: CefEvent) -> bool {
        let mut queue = self.inner.queue.lock();
        if queue.len() >= self.inner.capacity {
            drop(queue);
            // ordering: Relaxed — monotonic statistic, publishes no other
            // memory; the queue mutex orders the payload.
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        queue.push_back(event);
        drop(queue);
        // ordering: Relaxed — monotonic statistic (see above).
        self.inner.enqueued.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Converts and enqueues every record in `records` at or above
    /// `threshold`. Returns how many were accepted.
    pub fn export_records(&self, records: &[AuditRecord], threshold: AuditSeverity) -> usize {
        records
            .iter()
            .filter(|r| r.severity >= threshold)
            .filter(|r| self.export(CefEvent::from_record(r)))
            .count()
    }

    /// Drains the queue into the sink, one notification per event (subject
    /// = signature id, body = the CEF line). An event the sink rejects is
    /// counted as failed and *not* requeued — a retrying sink has already
    /// dead-lettered it, and requeueing would wedge the queue behind a dead
    /// sink. Returns the number delivered.
    pub fn flush(&self) -> usize {
        let mut sent = 0;
        loop {
            let event = { self.inner.queue.lock().pop_front() };
            let Some(event) = event else { break };
            let notification = Notification::new(
                event.time,
                self.inner.recipient.clone(),
                event.signature_id.clone(),
                event.to_line(),
            );
            match self.inner.sink.notify(&notification) {
                Ok(()) => {
                    // ordering: Relaxed — monotonic statistic.
                    self.inner.delivered.fetch_add(1, Ordering::Relaxed);
                    sent += 1;
                }
                Err(_) => {
                    // ordering: Relaxed — monotonic statistic.
                    self.inner.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        sent
    }

    /// Number of events waiting to be flushed.
    pub fn pending(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CefExportStats {
        // ordering: Relaxed — statistics only.
        CefExportStats {
            enqueued: self.inner.enqueued.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            delivered: self.inner.delivered.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::Alert;
    use crate::notify::{CollectingNotifier, FailingNotifier, RetryingNotifier};
    use crate::time::VirtualClock;
    use crate::AuditLog;
    use std::time::Duration;

    #[test]
    fn sanitize_neutralizes_injection_bytes() {
        assert_eq!(
            sanitize_field("/x\n127.0.0.1 - ok"),
            "/x\\n127.0.0.1 - ok",
            "newline cannot start a forged record"
        );
        assert_eq!(sanitize_field("a|b\\c"), "a\\|b\\\\c");
        assert_eq!(sanitize_field("bell\x07"), "bell\\x07");
        assert_eq!(
            sanitize_field("höhe ok"),
            "höhe ok",
            "printable unicode passes"
        );
        assert_eq!(sanitize_extension("k=v"), "k\\=v");
    }

    #[test]
    fn cef_line_shape_and_column_safety() {
        let event = CefEvent::new(Timestamp::from_millis(42), 9, "ids.signature", "phf|probe")
            .with_ext("request", "/cgi-bin/phf?Qalias=x\nFORGED")
            .with_ext("src", "203.0.113.9");
        let line = event.to_line();
        assert!(line.starts_with("CEF:0|gaa|gaa-httpd|0.1|ids.signature|phf\\|probe|9|rt=42"));
        // Exactly 7 unescaped pipes — the crafted name cannot add a column.
        let columns = line.replace("\\|", "").matches('|').count();
        assert_eq!(columns, 7, "{line}");
        assert!(!line.contains('\n'));
        assert!(line.contains("request=/cgi-bin/phf?Qalias\\=x\\nFORGED"));
    }

    #[test]
    fn record_and_alert_conversions_carry_fields() {
        let record = AuditRecord::new(
            Timestamp::from_millis(7),
            AuditSeverity::Warning,
            "ids.signature",
            "203.0.113.9",
            "signature S3 matched",
        )
        .with_attr("url", "/cgi-bin/phf");
        let line = CefEvent::from_record(&record).to_line();
        assert!(line.contains("|ids.signature|signature S3 matched|7|"));
        assert!(line.contains("suser=203.0.113.9"));
        assert!(line.contains("url=/cgi-bin/phf"));

        let alert = Alert {
            time: Timestamp::from_millis(8),
            severity: AuditSeverity::Alert,
            action_taken: "blacklisted 203.0.113.9".into(),
            reason: "matched signature *phf*".into(),
            subject: "203.0.113.9".into(),
        };
        let line = CefEvent::from_alert(&alert).to_line();
        assert!(line.contains("|gaa.alert|matched signature *phf*|9|"));
        assert!(line.contains("act=blacklisted 203.0.113.9"));
    }

    #[test]
    fn bounded_queue_drops_and_counts_when_full() {
        let exporter = CefExporter::new(Arc::new(CollectingNotifier::new()), 2);
        for i in 0..4 {
            exporter.export(CefEvent::new(Timestamp::from_millis(i), 5, "c", "n"));
        }
        let stats = exporter.stats();
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.dropped, 2);
        assert_eq!(exporter.pending(), 2);
        assert_eq!(exporter.flush(), 2);
        assert_eq!(exporter.stats().delivered, 2);
    }

    #[test]
    fn sink_failure_dead_letters_through_retrying_notifier() {
        let clock = Arc::new(VirtualClock::new());
        let audit = AuditLog::new();
        let failing = Arc::new(FailingNotifier::new());
        let retrying = Arc::new(
            RetryingNotifier::new(failing, clock, audit.clone()).with_policy(
                2,
                Duration::from_millis(1),
                Duration::from_millis(2),
            ),
        );
        let exporter = CefExporter::new(retrying.clone(), 8);
        exporter.export(CefEvent::new(
            Timestamp::from_millis(1),
            9,
            "ids.attack",
            "n",
        ));
        assert_eq!(exporter.flush(), 0);
        let stats = exporter.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(retrying.dead_lettered(), 1);
        // The dead-letter audit record preserves the CEF line for replay.
        let dead = audit.by_category("notify.dead_letter");
        assert_eq!(dead.len(), 1);
        assert!(dead[0].attr("body").unwrap().contains("CEF:0"));
        assert_eq!(exporter.pending(), 0, "failed events are not requeued");
    }

    #[test]
    fn export_records_filters_by_severity() {
        let exporter = CefExporter::new(Arc::new(CollectingNotifier::new()), 8);
        let records = vec![
            AuditRecord::new(
                Timestamp::from_millis(1),
                AuditSeverity::Info,
                "a",
                "s",
                "m",
            ),
            AuditRecord::new(
                Timestamp::from_millis(2),
                AuditSeverity::Alert,
                "b",
                "s",
                "m",
            ),
        ];
        assert_eq!(exporter.export_records(&records, AuditSeverity::Warning), 1);
        assert_eq!(exporter.pending(), 1);
    }
}
