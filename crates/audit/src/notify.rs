//! Notification services behind the `rr_cond notify` / `post_cond notify`
//! response actions.
//!
//! In the paper the notifier was e-mail to the system administrator, and §8
//! shows it dominating the cost of a protected request (5.9 ms → 53.3 ms for
//! the GAA functions once notification is on). [`SimulatedSmtp`] models that
//! cost with a configurable latency so benchmarks reproduce the overhead
//! *shape* without a mail server.

use crate::degrade::{Component, DegradationState};
use crate::log::{AuditLog, AuditRecord, AuditSeverity};
use crate::time::{SharedClock, Timestamp};
use gaa_faults::{Fault, FaultInjector, FaultSite};
// Every notifier lock and counter goes through the gaa-race shim so the
// circuit breaker's half-open probe race is explorable under the model
// checker; production builds see plain parking_lot / std atomics.
use gaa_race::sync::{AtomicU64, Mutex};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A notification to be delivered to an administrator or monitoring service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// When the triggering event occurred.
    pub time: Timestamp,
    /// Logical recipient (e.g. `sysadmin`).
    pub recipient: String,
    /// Short subject line (e.g. `cgi_exploit`).
    pub subject: String,
    /// Body: time, IP address, URL attempted, threat type — whatever the
    /// policy's `info:` template expanded to.
    pub body: String,
}

impl Notification {
    /// Creates a notification.
    pub fn new(
        time: Timestamp,
        recipient: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        Notification {
            time,
            recipient: recipient.into(),
            subject: subject.into(),
            body: body.into(),
        }
    }
}

impl fmt::Display for Notification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "to={} subject={} at={} body={}",
            self.recipient, self.subject, self.time, self.body
        )
    }
}

/// Error delivering a notification.
///
/// Delivery failure must never block policy enforcement (an attacker who can
/// break the mail path must not thereby disable access control), so callers
/// log these and continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyError {
    message: String,
}

impl NotifyError {
    /// Creates an error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        NotifyError {
            message: message.into(),
        }
    }
}

impl fmt::Display for NotifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notification delivery failed: {}", self.message)
    }
}

impl std::error::Error for NotifyError {}

/// A notification delivery service.
pub trait Notifier: Send + Sync + fmt::Debug {
    /// Delivers `notification`, blocking until the transport accepts it.
    ///
    /// # Errors
    ///
    /// Returns [`NotifyError`] if the transport rejects or cannot reach the
    /// recipient. Callers treat this as degraded service, not as a policy
    /// failure.
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError>;

    /// Number of notifications successfully delivered so far.
    fn delivered(&self) -> u64;
}

/// Test notifier that records everything it is asked to send.
#[derive(Debug, Clone, Default)]
pub struct CollectingNotifier {
    sent: Arc<Mutex<Vec<Notification>>>,
}

impl CollectingNotifier {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectingNotifier::default()
    }

    /// Snapshot of everything sent, in order.
    pub fn sent(&self) -> Vec<Notification> {
        self.sent.lock().clone()
    }

    /// Convenience: subjects of everything sent.
    pub fn subjects(&self) -> Vec<String> {
        self.sent.lock().iter().map(|n| n.subject.clone()).collect()
    }
}

impl Notifier for CollectingNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        self.sent.lock().push(notification.clone());
        Ok(())
    }

    fn delivered(&self) -> u64 {
        self.sent.lock().len() as u64
    }
}

/// Latency-modelled mail transport standing in for the paper's sendmail.
///
/// Each delivery blocks the caller for the configured latency, reproducing
/// the §8 effect where enabling notification multiplies per-request cost.
#[derive(Debug)]
pub struct SimulatedSmtp {
    latency: Duration,
    delivered: AtomicU64,
}

impl SimulatedSmtp {
    /// A transport that blocks for `latency` per message.
    pub fn new(latency: Duration) -> Self {
        SimulatedSmtp {
            latency,
            delivered: AtomicU64::new(0),
        }
    }

    /// The configured per-message latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl Notifier for SimulatedSmtp {
    fn notify(&self, _notification: &Notification) -> Result<(), NotifyError> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delivered(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Notifier that prints to stderr; used by the runnable examples.
#[derive(Debug, Default)]
pub struct ConsoleNotifier {
    delivered: AtomicU64,
}

impl ConsoleNotifier {
    /// Creates a console notifier.
    pub fn new() -> Self {
        ConsoleNotifier::default()
    }
}

impl Notifier for ConsoleNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        eprintln!("[notify] {notification}");
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delivered(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Failure-injection notifier: refuses every delivery. Used to test that a
/// broken mail path degrades to audit-only operation instead of breaking
/// policy enforcement.
#[derive(Debug, Default)]
pub struct FailingNotifier {
    attempts: AtomicU64,
}

impl FailingNotifier {
    /// Creates a notifier that always fails.
    pub fn new() -> Self {
        FailingNotifier::default()
    }

    /// How many deliveries were attempted (and refused).
    pub fn attempts(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.attempts.load(Ordering::Relaxed)
    }
}

impl Notifier for FailingNotifier {
    fn notify(&self, _notification: &Notification) -> Result<(), NotifyError> {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.attempts.fetch_add(1, Ordering::Relaxed);
        Err(NotifyError::new("transport unavailable"))
    }

    fn delivered(&self) -> u64 {
        0
    }
}

/// Fans a notification out to several transports; succeeds if *any* child
/// succeeds (best-effort delivery to redundant channels).
#[derive(Debug, Default)]
pub struct CompositeNotifier {
    children: Vec<Arc<dyn Notifier>>,
    delivered: AtomicU64,
}

impl CompositeNotifier {
    /// Creates an empty composite (which fails every delivery until children
    /// are added).
    pub fn new() -> Self {
        CompositeNotifier::default()
    }

    /// Adds a child transport, returning `self` for chaining.
    pub fn with(mut self, child: Arc<dyn Notifier>) -> Self {
        self.children.push(child);
        self
    }
}

impl Notifier for CompositeNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        let mut last_err = NotifyError::new("no transports configured");
        let mut any_ok = false;
        for child in &self.children {
            match child.notify(notification) {
                Ok(()) => any_ok = true,
                Err(e) => last_err = e,
            }
        }
        if any_ok {
            // ordering: Relaxed — monotonic statistic, publishes no other memory.
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(last_err)
        }
    }

    fn delivered(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Fault-injection decorator: consults a [`FaultInjector`] at
/// [`FaultSite::Notifier`] before each delivery.
///
/// * [`Fault::Error`] — the transport refuses the message (outage);
/// * [`Fault::Latency`] — delivery succeeds after the given (clock-timeline)
///   delay, modelling a latency spike;
/// * [`Fault::Hang`] — the transport stalls for the given delay and *then*
///   fails, modelling a connection that times out.
///
/// Delays run on the injected [`Clock`](crate::time::Clock), so chaos tests
/// driving a [`VirtualClock`](crate::time::VirtualClock) observe latency in
/// virtual time without wall-clock sleeps.
#[derive(Debug)]
pub struct FaultInjectingNotifier {
    inner: Arc<dyn Notifier>,
    injector: Arc<dyn FaultInjector>,
    clock: SharedClock,
}

impl FaultInjectingNotifier {
    /// Wraps `inner` with the given fault plan and clock.
    pub fn new(
        inner: Arc<dyn Notifier>,
        injector: Arc<dyn FaultInjector>,
        clock: SharedClock,
    ) -> Self {
        FaultInjectingNotifier {
            inner,
            injector,
            clock,
        }
    }
}

impl Notifier for FaultInjectingNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        match self.injector.fault_at(FaultSite::Notifier) {
            Some(Fault::Error) => Err(NotifyError::new("injected transport outage")),
            Some(Fault::Hang(millis)) => {
                self.clock.sleep(Duration::from_millis(millis));
                Err(NotifyError::new("injected transport hang (timed out)"))
            }
            Some(Fault::Latency(millis)) => {
                self.clock.sleep(Duration::from_millis(millis));
                self.inner.notify(notification)
            }
            _ => self.inner.notify(notification),
        }
    }

    fn delivered(&self) -> u64 {
        self.inner.delivered()
    }
}

/// Retry decorator: bounded exponential backoff with deterministic jitter,
/// slept on the injected clock; undeliverable notifications are
/// *dead-lettered* into the audit log rather than lost.
///
/// The audit record (`notify.dead_letter`, severity Warning) preserves the
/// recipient, subject and body, so an administrator recovering the mail path
/// can replay what they missed — the paper's real-time-response guarantee
/// degrades to an auditable one instead of silently evaporating.
#[derive(Debug)]
pub struct RetryingNotifier {
    inner: Arc<dyn Notifier>,
    clock: SharedClock,
    audit: AuditLog,
    max_attempts: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    jitter_state: Mutex<u64>,
    attempts: AtomicU64,
    dead_lettered: AtomicU64,
}

impl RetryingNotifier {
    /// Wraps `inner` with the default policy: 4 attempts, 50 ms base
    /// backoff doubling to a 2 s cap, ±50% deterministic jitter.
    pub fn new(inner: Arc<dyn Notifier>, clock: SharedClock, audit: AuditLog) -> Self {
        RetryingNotifier {
            inner,
            clock,
            audit,
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_state: Mutex::new(0x9e37_79b9_7f4a_7c15),
            attempts: AtomicU64::new(0),
            dead_lettered: AtomicU64::new(0),
        }
    }

    /// Overrides the retry policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_policy(mut self, max_attempts: u32, base: Duration, cap: Duration) -> Self {
        assert!(max_attempts > 0, "at least one delivery attempt required");
        self.max_attempts = max_attempts;
        self.base_backoff = base;
        self.max_backoff = cap;
        self
    }

    /// Seeds the jitter stream (deterministic per seed).
    pub fn with_jitter_seed(self, seed: u64) -> Self {
        *self.jitter_state.lock() = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        self
    }

    /// Total delivery attempts made (including retries).
    pub fn attempts(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.attempts.load(Ordering::Relaxed)
    }

    /// Notifications given up on and dead-lettered to the audit log.
    pub fn dead_lettered(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.dead_lettered.load(Ordering::Relaxed)
    }

    /// Backoff before retry number `retry` (0-based): `base * 2^retry`
    /// clamped to the cap, plus up to +50% deterministic jitter.
    fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let mut state = self.jitter_state.lock();
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter_ms = if exp.as_millis() == 0 {
            0
        } else {
            z % (exp.as_millis() as u64 / 2).max(1)
        };
        exp + Duration::from_millis(jitter_ms)
    }

    /// The worst-case total time a single notification can spend in this
    /// decorator: the sum of all backoffs at maximum jitter. Chaos tests
    /// assert observed latency stays under this bound during outages.
    pub fn max_total_backoff(&self) -> Duration {
        let mut total = Duration::ZERO;
        for retry in 0..self.max_attempts.saturating_sub(1) {
            let exp = self
                .base_backoff
                .saturating_mul(1u32 << retry.min(16))
                .min(self.max_backoff);
            total += exp + exp / 2 + Duration::from_millis(1);
        }
        total
    }
}

impl Notifier for RetryingNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        let mut last_err = NotifyError::new("no attempt made");
        for attempt in 0..self.max_attempts {
            // ordering: Relaxed — monotonic statistic, publishes no other memory.
            self.attempts.fetch_add(1, Ordering::Relaxed);
            match self.inner.notify(notification) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = e,
            }
            if attempt + 1 < self.max_attempts {
                self.clock.sleep(self.backoff(attempt));
            }
        }
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.dead_lettered.fetch_add(1, Ordering::Relaxed);
        self.audit.record(
            AuditRecord::new(
                self.clock.now(),
                AuditSeverity::Warning,
                "notify.dead_letter",
                notification.recipient.clone(),
                format!(
                    "notification undeliverable after {} attempts: {}",
                    self.max_attempts, last_err
                ),
            )
            .with_attr("subject", notification.subject.clone())
            .with_attr("body", notification.body.clone())
            .with_attr("attempts", self.max_attempts.to_string()),
        );
        Err(last_err)
    }

    fn delivered(&self) -> u64 {
        self.inner.delivered()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open { since: Timestamp },
}

#[derive(Debug)]
struct BreakerState {
    phase: BreakerPhase,
    consecutive_failures: u32,
}

/// Circuit breaker: after `threshold` consecutive delivery failures the
/// circuit *opens* and the system drops to audit-only mode — further
/// notifications are suppressed (recorded as `notify.suppressed`) instead of
/// burning a full retry cycle per request while the transport is down. This
/// bounds request latency during an outage.
///
/// After `cooldown` (on the injected clock) the breaker goes *half-open*:
/// the next notification is let through as a probe. Success closes the
/// circuit and clears the degradation; failure re-opens it for another
/// cooldown. All transitions are audited (`notify.circuit_open` at Alert,
/// `notify.circuit_closed` at Notice) and mirrored into the shared
/// [`DegradationState`].
#[derive(Debug)]
pub struct CircuitBreakerNotifier {
    inner: Arc<dyn Notifier>,
    clock: SharedClock,
    audit: AuditLog,
    degradation: DegradationState,
    threshold: u32,
    cooldown: Duration,
    state: Mutex<BreakerState>,
    suppressed: AtomicU64,
}

impl CircuitBreakerNotifier {
    /// Wraps `inner` with the default policy: open after 3 consecutive
    /// failures, half-open probe after a 5 s cooldown.
    pub fn new(
        inner: Arc<dyn Notifier>,
        clock: SharedClock,
        audit: AuditLog,
        degradation: DegradationState,
    ) -> Self {
        CircuitBreakerNotifier {
            inner,
            clock,
            audit,
            degradation,
            threshold: 3,
            cooldown: Duration::from_secs(5),
            state: Mutex::named(
                "breaker.state",
                BreakerState {
                    phase: BreakerPhase::Closed,
                    consecutive_failures: 0,
                },
            ),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Overrides the trip threshold and cooldown.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_policy(mut self, threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold > 0, "breaker threshold must be non-zero");
        self.threshold = threshold;
        self.cooldown = cooldown;
        self
    }

    /// True while the circuit is open (audit-only mode).
    pub fn is_open(&self) -> bool {
        matches!(self.state.lock().phase, BreakerPhase::Open { .. })
    }

    /// Notifications suppressed while the circuit was open.
    pub fn suppressed(&self) -> u64 {
        // ordering: Relaxed — monotonic statistic, publishes no other memory.
        self.suppressed.load(Ordering::Relaxed)
    }

    // Both transition helpers update the degradation mirror *while still
    // holding the state lock*: phase and mirror must move together, or two
    // racing callers can leave the breaker `Open` with the degradation
    // registry showing `Notifier` recovered (close-then-reopen interleaved
    // with the mirror writes in the opposite order). Found by the
    // `breaker_half_open` gaa-race scenario. No lock cycle: nothing in the
    // audit log or degradation registry calls back into the breaker.

    fn on_success(&self, now: Timestamp) {
        let mut state = self.state.lock();
        let was_open = matches!(state.phase, BreakerPhase::Open { .. });
        state.phase = BreakerPhase::Closed;
        state.consecutive_failures = 0;
        if was_open {
            self.audit.record(AuditRecord::new(
                now,
                AuditSeverity::Notice,
                "notify.circuit_closed",
                "notifier",
                "notification transport recovered; circuit closed",
            ));
            self.degradation.mark_recovered(Component::Notifier, now);
        }
        drop(state);
    }

    fn on_failure(&self, now: Timestamp, was_probe: bool) {
        let mut state = self.state.lock();
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        let should_open = was_probe || state.consecutive_failures >= self.threshold;
        let newly_open = should_open && !matches!(state.phase, BreakerPhase::Open { .. });
        if should_open {
            state.phase = BreakerPhase::Open { since: now };
        }
        let failures = state.consecutive_failures;
        if newly_open {
            self.audit.record(
                AuditRecord::new(
                    now,
                    AuditSeverity::Alert,
                    "notify.circuit_open",
                    "notifier",
                    format!(
                        "notification transport failed {failures} consecutive times; \
                         circuit open, degrading to audit-only mode"
                    ),
                )
                .with_attr("consecutive_failures", failures.to_string()),
            );
            self.degradation.mark_degraded(
                Component::Notifier,
                "circuit open: notifications suppressed, audit-only",
                now,
            );
        }
    }
}

impl Notifier for CircuitBreakerNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        let now = self.clock.now();
        let probing = {
            let state = self.state.lock();
            match state.phase {
                BreakerPhase::Closed => false,
                BreakerPhase::Open { since } => {
                    if now.since(since) < self.cooldown {
                        drop(state);
                        // ordering: Relaxed — monotonic statistic, publishes no other memory.
                        self.suppressed.fetch_add(1, Ordering::Relaxed);
                        self.audit.record(
                            AuditRecord::new(
                                now,
                                AuditSeverity::Notice,
                                "notify.suppressed",
                                notification.recipient.clone(),
                                "notification suppressed: circuit open (audit-only mode)",
                            )
                            .with_attr("subject", notification.subject.clone()),
                        );
                        return Err(NotifyError::new(
                            "circuit open: notification suppressed (audit-only mode)",
                        ));
                    }
                    true // cooldown elapsed: half-open, probe with this one
                }
            }
        };
        match self.inner.notify(notification) {
            Ok(()) => {
                self.on_success(now);
                Ok(())
            }
            Err(e) => {
                self.on_failure(now, probing);
                Err(e)
            }
        }
    }

    fn delivered(&self) -> u64 {
        self.inner.delivered()
    }
}

/// The full production resilience stack for a notification transport:
/// `CircuitBreaker(Retrying(FaultInjecting(inner)))` sharing one clock,
/// audit log and degradation registry.
///
/// With [`gaa_faults::NoFaults`] as the injector this is exactly the
/// production configuration; chaos tests swap in a seeded
/// [`gaa_faults::FaultPlan`].
pub fn resilient_notifier(
    inner: Arc<dyn Notifier>,
    injector: Arc<dyn FaultInjector>,
    clock: SharedClock,
    audit: AuditLog,
    degradation: DegradationState,
) -> Arc<CircuitBreakerNotifier> {
    let faulty = Arc::new(FaultInjectingNotifier::new(inner, injector, clock.clone()));
    let retrying = Arc::new(RetryingNotifier::new(faulty, clock.clone(), audit.clone()));
    Arc::new(CircuitBreakerNotifier::new(
        retrying,
        clock,
        audit,
        degradation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(subject: &str) -> Notification {
        Notification::new(Timestamp::from_millis(42), "sysadmin", subject, "body")
    }

    #[test]
    fn collecting_notifier_records_in_order() {
        let n = CollectingNotifier::new();
        n.notify(&note("first")).unwrap();
        n.notify(&note("second")).unwrap();
        assert_eq!(n.subjects(), vec!["first", "second"]);
        assert_eq!(n.delivered(), 2);
    }

    #[test]
    fn simulated_smtp_blocks_for_latency() {
        let smtp = SimulatedSmtp::new(Duration::from_millis(20));
        let start = std::time::Instant::now();
        smtp.notify(&note("x")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(smtp.delivered(), 1);
    }

    #[test]
    fn simulated_smtp_zero_latency_is_fast() {
        let smtp = SimulatedSmtp::new(Duration::ZERO);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            smtp.notify(&note("x")).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(smtp.delivered(), 100);
    }

    #[test]
    fn failing_notifier_fails_and_counts() {
        let n = FailingNotifier::new();
        assert!(n.notify(&note("x")).is_err());
        assert!(n.notify(&note("y")).is_err());
        assert_eq!(n.attempts(), 2);
        assert_eq!(n.delivered(), 0);
    }

    #[test]
    fn composite_succeeds_if_any_child_does() {
        let ok = Arc::new(CollectingNotifier::new());
        let composite = CompositeNotifier::new()
            .with(Arc::new(FailingNotifier::new()))
            .with(ok.clone());
        composite.notify(&note("x")).unwrap();
        assert_eq!(ok.delivered(), 1);
        assert_eq!(composite.delivered(), 1);
    }

    #[test]
    fn composite_fails_when_all_children_fail() {
        let composite = CompositeNotifier::new()
            .with(Arc::new(FailingNotifier::new()))
            .with(Arc::new(FailingNotifier::new()));
        assert!(composite.notify(&note("x")).is_err());
    }

    #[test]
    fn empty_composite_fails() {
        let composite = CompositeNotifier::new();
        let err = composite.notify(&note("x")).unwrap_err();
        assert!(err.to_string().contains("no transports"));
    }

    #[test]
    fn notification_display_is_complete() {
        let text = note("cgi_exploit").to_string();
        assert!(text.contains("sysadmin"));
        assert!(text.contains("cgi_exploit"));
        assert!(text.contains("42ms"));
    }

    mod resilience {
        //! VirtualClock-driven tests: no wall-clock sleeps anywhere. Backoff
        //! and cooldown elapse by advancing the virtual clock, so these run
        //! in microseconds regardless of the configured durations.

        use super::*;
        use crate::time::{Clock, VirtualClock};
        use gaa_faults::{FaultPlan, NoFaults};

        fn virtual_clock() -> (Arc<VirtualClock>, SharedClock) {
            let vc = Arc::new(VirtualClock::at_millis(1_000));
            let shared: SharedClock = vc.clone();
            (vc, shared)
        }

        /// Inner notifier that fails the first `failures` calls, then
        /// succeeds — for driving retry and breaker recovery paths.
        #[derive(Debug)]
        struct FlakyNotifier {
            failures: AtomicU64,
            delivered: AtomicU64,
        }

        impl FlakyNotifier {
            fn failing_first(failures: u64) -> Self {
                FlakyNotifier {
                    failures: AtomicU64::new(failures),
                    delivered: AtomicU64::new(0),
                }
            }
        }

        impl Notifier for FlakyNotifier {
            fn notify(&self, _n: &Notification) -> Result<(), NotifyError> {
                // ordering: Relaxed — monotonic statistic, publishes no other memory.
                let left = self.failures.load(Ordering::Relaxed);
                if left > 0 {
                    // ordering: Relaxed — monotonic statistic, publishes no other memory.
                    self.failures.store(left - 1, Ordering::Relaxed);
                    return Err(NotifyError::new("flaky"));
                }
                // ordering: Relaxed — monotonic statistic, publishes no other memory.
                self.delivered.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }

            fn delivered(&self) -> u64 {
                // ordering: Relaxed — monotonic statistic, publishes no other memory.
                self.delivered.load(Ordering::Relaxed)
            }
        }

        #[test]
        fn retrying_notifier_recovers_from_transient_failures() {
            let (vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let inner = Arc::new(FlakyNotifier::failing_first(2));
            let retrying = RetryingNotifier::new(inner.clone(), clock, audit.clone());

            let before = vc.now();
            retrying.notify(&note("x")).unwrap();
            assert_eq!(retrying.attempts(), 3);
            assert_eq!(retrying.delivered(), 1);
            assert_eq!(retrying.dead_lettered(), 0);
            assert!(audit.is_empty(), "successful retries are not dead-lettered");
            // Two backoffs elapsed, in virtual time only.
            assert!(vc.now() > before);
        }

        #[test]
        fn retrying_backoff_grows_and_respects_bound() {
            let (vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let inner = Arc::new(FailingNotifier::new());
            let retrying = RetryingNotifier::new(inner, clock, audit.clone())
                .with_policy(5, Duration::from_millis(100), Duration::from_secs(1))
                .with_jitter_seed(7);

            let start = vc.now();
            assert!(retrying.notify(&note("x")).is_err());
            let elapsed = vc.now().since(start);

            // 4 backoffs: 100, 200, 400, 800ms bases -> at least 1.5s total,
            // and never more than the advertised worst case.
            assert!(
                elapsed >= Duration::from_millis(1_500),
                "elapsed {elapsed:?}"
            );
            assert!(
                elapsed <= retrying.max_total_backoff(),
                "elapsed {elapsed:?} > bound {:?}",
                retrying.max_total_backoff()
            );
            assert_eq!(retrying.attempts(), 5);
        }

        #[test]
        fn retrying_jitter_is_deterministic_per_seed() {
            let elapsed_for_seed = |seed: u64| {
                let (vc, clock) = virtual_clock();
                let retrying =
                    RetryingNotifier::new(Arc::new(FailingNotifier::new()), clock, AuditLog::new())
                        .with_policy(4, Duration::from_millis(50), Duration::from_secs(2))
                        .with_jitter_seed(seed);
                let start = vc.now();
                let _ = retrying.notify(&note("x"));
                vc.now().since(start)
            };
            assert_eq!(elapsed_for_seed(3), elapsed_for_seed(3));
        }

        #[test]
        fn dead_letter_preserves_notification_content() {
            let (_vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let retrying =
                RetryingNotifier::new(Arc::new(FailingNotifier::new()), clock, audit.clone())
                    .with_policy(2, Duration::from_millis(10), Duration::from_millis(100));

            assert!(retrying.notify(&note("cgi_exploit")).is_err());
            assert_eq!(retrying.dead_lettered(), 1);
            let dead = audit.by_category("notify.dead_letter");
            assert_eq!(dead.len(), 1);
            assert_eq!(dead[0].subject, "sysadmin");
            assert_eq!(dead[0].attr("subject"), Some("cgi_exploit"));
            assert_eq!(dead[0].attr("body"), Some("body"));
            assert_eq!(dead[0].attr("attempts"), Some("2"));
        }

        #[test]
        fn breaker_trips_after_threshold_and_suppresses() {
            let (_vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let degradation = DegradationState::new();
            let breaker = CircuitBreakerNotifier::new(
                Arc::new(FailingNotifier::new()),
                clock,
                audit.clone(),
                degradation.clone(),
            )
            .with_policy(3, Duration::from_secs(5));

            for _ in 0..3 {
                assert!(breaker.notify(&note("x")).is_err());
            }
            assert!(breaker.is_open());
            assert_eq!(audit.count_category("notify.circuit_open"), 1);
            assert!(degradation.is_degraded(Component::Notifier));

            // While open, deliveries are suppressed without touching the
            // transport, and each suppression is audited.
            assert!(breaker.notify(&note("y")).is_err());
            assert!(breaker.notify(&note("z")).is_err());
            assert_eq!(breaker.suppressed(), 2);
            assert_eq!(audit.count_category("notify.suppressed"), 2);
        }

        #[test]
        fn breaker_half_open_failure_reopens() {
            let (vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let breaker = CircuitBreakerNotifier::new(
                Arc::new(FailingNotifier::new()),
                clock,
                audit.clone(),
                DegradationState::new(),
            )
            .with_policy(1, Duration::from_secs(5));

            assert!(breaker.notify(&note("x")).is_err());
            assert!(breaker.is_open());

            // Cooldown elapses; the probe fails; circuit re-opens for a
            // fresh cooldown during which deliveries stay suppressed.
            vc.advance(Duration::from_secs(5));
            assert!(breaker.notify(&note("probe")).is_err());
            assert!(breaker.is_open());
            vc.advance(Duration::from_secs(1));
            assert!(breaker.notify(&note("y")).is_err());
            assert_eq!(breaker.suppressed(), 1);
        }

        #[test]
        fn breaker_recovers_through_half_open_probe() {
            let (vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let degradation = DegradationState::new();
            let inner = Arc::new(FlakyNotifier::failing_first(2));
            let breaker = CircuitBreakerNotifier::new(
                inner.clone(),
                clock,
                audit.clone(),
                degradation.clone(),
            )
            .with_policy(2, Duration::from_secs(5));

            assert!(breaker.notify(&note("a")).is_err());
            assert!(breaker.notify(&note("b")).is_err());
            assert!(breaker.is_open());
            assert!(degradation.is_degraded(Component::Notifier));

            vc.advance(Duration::from_secs(5));
            breaker.notify(&note("probe")).unwrap();
            assert!(!breaker.is_open());
            assert!(degradation.is_fully_operational());
            assert_eq!(audit.count_category("notify.circuit_closed"), 1);
            assert_eq!(breaker.delivered(), 1);
        }

        #[test]
        fn full_stack_with_no_faults_is_transparent() {
            let (_vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let degradation = DegradationState::new();
            let collector = Arc::new(CollectingNotifier::new());
            let stack = resilient_notifier(
                collector.clone(),
                Arc::new(NoFaults),
                clock,
                audit.clone(),
                degradation.clone(),
            );
            stack.notify(&note("hello")).unwrap();
            assert_eq!(collector.delivered(), 1);
            assert!(audit.is_empty());
            assert!(degradation.is_fully_operational());
        }

        #[test]
        fn full_stack_survives_outage_window_and_recovers() {
            let (vc, clock) = virtual_clock();
            let audit = AuditLog::new();
            let degradation = DegradationState::with_audit(audit.clone());
            let collector = Arc::new(CollectingNotifier::new());
            // The first 12 transport calls fail — exactly three full retry
            // cycles (4 attempts each), enough to trip the default breaker
            // threshold of 3 — then the outage clears.
            let plan = FaultPlan::builder(11)
                .fail_window(FaultSite::Notifier, 0, 12, gaa_faults::Fault::Error)
                .build();
            let stack = resilient_notifier(
                collector.clone(),
                Arc::new(plan),
                clock,
                audit.clone(),
                degradation.clone(),
            );

            assert!(stack.notify(&note("one")).is_err());
            assert!(stack.notify(&note("two")).is_err());
            assert!(stack.notify(&note("three")).is_err());
            assert!(stack.is_open());
            assert!(degradation.is_degraded(Component::Notifier));

            // Outage is over (12 faulted calls consumed by the three retry
            // cycles); after cooldown the probe succeeds.
            vc.advance(Duration::from_secs(5));
            stack.notify(&note("four")).unwrap();
            assert!(!stack.is_open());
            assert!(degradation.is_fully_operational());
            assert_eq!(collector.subjects(), vec!["four"]);
            assert_eq!(audit.count_category("degrade.entered"), 1);
            assert_eq!(audit.count_category("degrade.recovered"), 1);
        }
    }
}
