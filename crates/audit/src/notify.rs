//! Notification services behind the `rr_cond notify` / `post_cond notify`
//! response actions.
//!
//! In the paper the notifier was e-mail to the system administrator, and §8
//! shows it dominating the cost of a protected request (5.9 ms → 53.3 ms for
//! the GAA functions once notification is on). [`SimulatedSmtp`] models that
//! cost with a configurable latency so benchmarks reproduce the overhead
//! *shape* without a mail server.

use crate::time::Timestamp;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A notification to be delivered to an administrator or monitoring service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// When the triggering event occurred.
    pub time: Timestamp,
    /// Logical recipient (e.g. `sysadmin`).
    pub recipient: String,
    /// Short subject line (e.g. `cgi_exploit`).
    pub subject: String,
    /// Body: time, IP address, URL attempted, threat type — whatever the
    /// policy's `info:` template expanded to.
    pub body: String,
}

impl Notification {
    /// Creates a notification.
    pub fn new(
        time: Timestamp,
        recipient: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
    ) -> Self {
        Notification {
            time,
            recipient: recipient.into(),
            subject: subject.into(),
            body: body.into(),
        }
    }
}

impl fmt::Display for Notification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "to={} subject={} at={} body={}",
            self.recipient, self.subject, self.time, self.body
        )
    }
}

/// Error delivering a notification.
///
/// Delivery failure must never block policy enforcement (an attacker who can
/// break the mail path must not thereby disable access control), so callers
/// log these and continue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotifyError {
    message: String,
}

impl NotifyError {
    /// Creates an error with a human-readable cause.
    pub fn new(message: impl Into<String>) -> Self {
        NotifyError {
            message: message.into(),
        }
    }
}

impl fmt::Display for NotifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "notification delivery failed: {}", self.message)
    }
}

impl std::error::Error for NotifyError {}

/// A notification delivery service.
pub trait Notifier: Send + Sync + fmt::Debug {
    /// Delivers `notification`, blocking until the transport accepts it.
    ///
    /// # Errors
    ///
    /// Returns [`NotifyError`] if the transport rejects or cannot reach the
    /// recipient. Callers treat this as degraded service, not as a policy
    /// failure.
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError>;

    /// Number of notifications successfully delivered so far.
    fn delivered(&self) -> u64;
}

/// Test notifier that records everything it is asked to send.
#[derive(Debug, Clone, Default)]
pub struct CollectingNotifier {
    sent: Arc<Mutex<Vec<Notification>>>,
}

impl CollectingNotifier {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectingNotifier::default()
    }

    /// Snapshot of everything sent, in order.
    pub fn sent(&self) -> Vec<Notification> {
        self.sent.lock().clone()
    }

    /// Convenience: subjects of everything sent.
    pub fn subjects(&self) -> Vec<String> {
        self.sent.lock().iter().map(|n| n.subject.clone()).collect()
    }
}

impl Notifier for CollectingNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        self.sent.lock().push(notification.clone());
        Ok(())
    }

    fn delivered(&self) -> u64 {
        self.sent.lock().len() as u64
    }
}

/// Latency-modelled mail transport standing in for the paper's sendmail.
///
/// Each delivery blocks the caller for the configured latency, reproducing
/// the §8 effect where enabling notification multiplies per-request cost.
#[derive(Debug)]
pub struct SimulatedSmtp {
    latency: Duration,
    delivered: AtomicU64,
}

impl SimulatedSmtp {
    /// A transport that blocks for `latency` per message.
    pub fn new(latency: Duration) -> Self {
        SimulatedSmtp {
            latency,
            delivered: AtomicU64::new(0),
        }
    }

    /// The configured per-message latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl Notifier for SimulatedSmtp {
    fn notify(&self, _notification: &Notification) -> Result<(), NotifyError> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Notifier that prints to stderr; used by the runnable examples.
#[derive(Debug, Default)]
pub struct ConsoleNotifier {
    delivered: AtomicU64,
}

impl ConsoleNotifier {
    /// Creates a console notifier.
    pub fn new() -> Self {
        ConsoleNotifier::default()
    }
}

impl Notifier for ConsoleNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        eprintln!("[notify] {notification}");
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Failure-injection notifier: refuses every delivery. Used to test that a
/// broken mail path degrades to audit-only operation instead of breaking
/// policy enforcement.
#[derive(Debug, Default)]
pub struct FailingNotifier {
    attempts: AtomicU64,
}

impl FailingNotifier {
    /// Creates a notifier that always fails.
    pub fn new() -> Self {
        FailingNotifier::default()
    }

    /// How many deliveries were attempted (and refused).
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }
}

impl Notifier for FailingNotifier {
    fn notify(&self, _notification: &Notification) -> Result<(), NotifyError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        Err(NotifyError::new("transport unavailable"))
    }

    fn delivered(&self) -> u64 {
        0
    }
}

/// Fans a notification out to several transports; succeeds if *any* child
/// succeeds (best-effort delivery to redundant channels).
#[derive(Debug, Default)]
pub struct CompositeNotifier {
    children: Vec<Arc<dyn Notifier>>,
    delivered: AtomicU64,
}

impl CompositeNotifier {
    /// Creates an empty composite (which fails every delivery until children
    /// are added).
    pub fn new() -> Self {
        CompositeNotifier::default()
    }

    /// Adds a child transport, returning `self` for chaining.
    pub fn with(mut self, child: Arc<dyn Notifier>) -> Self {
        self.children.push(child);
        self
    }
}

impl Notifier for CompositeNotifier {
    fn notify(&self, notification: &Notification) -> Result<(), NotifyError> {
        let mut last_err = NotifyError::new("no transports configured");
        let mut any_ok = false;
        for child in &self.children {
            match child.notify(notification) {
                Ok(()) => any_ok = true,
                Err(e) => last_err = e,
            }
        }
        if any_ok {
            self.delivered.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            Err(last_err)
        }
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(subject: &str) -> Notification {
        Notification::new(Timestamp::from_millis(42), "sysadmin", subject, "body")
    }

    #[test]
    fn collecting_notifier_records_in_order() {
        let n = CollectingNotifier::new();
        n.notify(&note("first")).unwrap();
        n.notify(&note("second")).unwrap();
        assert_eq!(n.subjects(), vec!["first", "second"]);
        assert_eq!(n.delivered(), 2);
    }

    #[test]
    fn simulated_smtp_blocks_for_latency() {
        let smtp = SimulatedSmtp::new(Duration::from_millis(20));
        let start = std::time::Instant::now();
        smtp.notify(&note("x")).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert_eq!(smtp.delivered(), 1);
    }

    #[test]
    fn simulated_smtp_zero_latency_is_fast() {
        let smtp = SimulatedSmtp::new(Duration::ZERO);
        let start = std::time::Instant::now();
        for _ in 0..100 {
            smtp.notify(&note("x")).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(smtp.delivered(), 100);
    }

    #[test]
    fn failing_notifier_fails_and_counts() {
        let n = FailingNotifier::new();
        assert!(n.notify(&note("x")).is_err());
        assert!(n.notify(&note("y")).is_err());
        assert_eq!(n.attempts(), 2);
        assert_eq!(n.delivered(), 0);
    }

    #[test]
    fn composite_succeeds_if_any_child_does() {
        let ok = Arc::new(CollectingNotifier::new());
        let composite = CompositeNotifier::new()
            .with(Arc::new(FailingNotifier::new()))
            .with(ok.clone());
        composite.notify(&note("x")).unwrap();
        assert_eq!(ok.delivered(), 1);
        assert_eq!(composite.delivered(), 1);
    }

    #[test]
    fn composite_fails_when_all_children_fail() {
        let composite = CompositeNotifier::new()
            .with(Arc::new(FailingNotifier::new()))
            .with(Arc::new(FailingNotifier::new()));
        assert!(composite.notify(&note("x")).is_err());
    }

    #[test]
    fn empty_composite_fails() {
        let composite = CompositeNotifier::new();
        let err = composite.notify(&note("x")).unwrap_err();
        assert!(err.to_string().contains("no transports"));
    }

    #[test]
    fn notification_display_is_complete() {
        let text = note("cgi_exploit").to_string();
        assert!(text.contains("sysadmin"));
        assert!(text.contains("cgi_exploit"));
        assert!(text.contains("42ms"));
    }
}
