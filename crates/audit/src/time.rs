//! Clock abstraction shared by the whole workspace.
//!
//! Adaptive policies depend on time everywhere — time-of-day pre-conditions,
//! sliding-window thresholds, threat-level decay. Tests need to drive time
//! deterministically while benchmarks and live servers use the wall clock, so
//! every component takes a [`Clock`] trait object instead of calling
//! `Instant::now` directly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A point in time, in milliseconds since the Unix epoch.
///
/// Millisecond resolution matches the paper's measurements (§8 reports
/// millisecond averages) and is plenty for policy windows.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp for `millis` milliseconds since the epoch.
    pub fn from_millis(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// Milliseconds since the epoch.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// This timestamp advanced by `d` (saturating).
    pub fn plus(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.as_millis() as u64))
    }

    /// This timestamp moved back by `d` (saturating at zero).
    pub fn minus(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.as_millis() as u64))
    }

    /// Duration elapsed from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// Hour of day (0–23) under a day = 86 400 000 ms convention. Used by
    /// time-of-day pre-conditions ("more restrictive organizational policies
    /// may be enforced after hours").
    pub fn hour_of_day(self) -> u32 {
        ((self.0 / 3_600_000) % 24) as u32
    }

    /// Minute within the hour (0–59).
    pub fn minute_of_hour(self) -> u32 {
        ((self.0 / 60_000) % 60) as u32
    }

    /// Day index since the epoch (day 0 = Thursday 1970-01-01). Day-of-week
    /// follows: `(day_index + 4) % 7` with 0 = Sunday.
    pub fn day_of_week(self) -> u32 {
        (((self.0 / 86_400_000) + 4) % 7) as u32
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// Source of the current time.
///
/// Implementations must be cheap and thread-safe; the GAA-API reads the clock
/// several times per request.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time.
    fn now(&self) -> Timestamp;

    /// Blocks the caller for `d` *in this clock's timeline*.
    ///
    /// The wall clock really sleeps; [`VirtualClock`] advances itself
    /// instead, so retry backoff and latency modelling driven through this
    /// method run instantly (and deterministically) under test.
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Wall-clock time via [`SystemTime`]. Used by live servers and benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl SystemClock {
    /// Creates a wall clock.
    pub fn new() -> Self {
        SystemClock
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let millis = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO)
            .as_millis() as u64;
        Timestamp(millis)
    }
}

/// A manually driven clock for deterministic tests.
///
/// Cloning shares the underlying time source, so a test can hold one handle
/// while the system under test holds another.
///
/// # Examples
///
/// ```rust
/// use gaa_audit::{Clock, VirtualClock};
/// use std::time::Duration;
///
/// let clock = VirtualClock::at_millis(1_000);
/// assert_eq!(clock.now().as_millis(), 1_000);
/// clock.advance(Duration::from_secs(5));
/// assert_eq!(clock.now().as_millis(), 6_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    millis: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// A virtual clock starting at `millis` since the epoch.
    pub fn at_millis(millis: u64) -> Self {
        VirtualClock {
            millis: Arc::new(AtomicU64::new(millis)),
        }
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.millis
            .fetch_add(d.as_millis() as u64, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute time. Panics in debug builds if this
    /// would move time backwards (monotonicity is assumed by window code).
    pub fn set(&self, t: Timestamp) {
        let prev = self.millis.swap(t.0, Ordering::SeqCst);
        debug_assert!(
            prev <= t.0,
            "VirtualClock moved backwards: {prev} -> {}",
            t.0
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.millis.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// A shareable clock handle. Most components store one of these.
pub type SharedClock = Arc<dyn Clock>;

/// A clock decorated with fault injection: a [`Fault::SkewMs`] injected at
/// [`FaultSite::Clock`] shifts every reading, modelling NTP drift or an
/// attacker-skewed time source. Policy windows, threshold windows and
/// threat-level decay all read through the clock, so chaos tests can check
/// that skew degrades those features without breaking enforcement.
///
/// Skew is saturating-clamped at zero (the epoch) rather than wrapping.
#[derive(Debug, Clone)]
pub struct SkewedClock {
    inner: Arc<dyn Clock>,
    injector: Arc<dyn gaa_faults::FaultInjector>,
}

impl SkewedClock {
    /// Wraps `inner`, consulting `injector` on every read.
    pub fn new(inner: Arc<dyn Clock>, injector: Arc<dyn gaa_faults::FaultInjector>) -> Self {
        SkewedClock { inner, injector }
    }
}

impl Clock for SkewedClock {
    fn now(&self) -> Timestamp {
        let t = self.inner.now();
        match self.injector.fault_at(gaa_faults::FaultSite::Clock) {
            Some(gaa_faults::Fault::SkewMs(skew)) => {
                if skew >= 0 {
                    Timestamp(t.0.saturating_add(skew as u64))
                } else {
                    Timestamp(t.0.saturating_sub(skew.unsigned_abs()))
                }
            }
            _ => t,
        }
    }

    fn sleep(&self, d: Duration) {
        self.inner.sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(10_000);
        assert_eq!(t.plus(Duration::from_secs(1)).as_millis(), 11_000);
        assert_eq!(t.minus(Duration::from_secs(1)).as_millis(), 9_000);
        assert_eq!(t.minus(Duration::from_secs(100)).as_millis(), 0);
        assert_eq!(
            t.since(Timestamp::from_millis(4_000)),
            Duration::from_millis(6_000)
        );
        assert_eq!(Timestamp::from_millis(4_000).since(t), Duration::ZERO);
    }

    #[test]
    fn hour_and_minute_extraction() {
        // 1970-01-01 02:30:00 UTC.
        let t = Timestamp::from_millis(2 * 3_600_000 + 30 * 60_000);
        assert_eq!(t.hour_of_day(), 2);
        assert_eq!(t.minute_of_hour(), 30);
    }

    #[test]
    fn hour_wraps_across_days() {
        let t = Timestamp::from_millis(26 * 3_600_000);
        assert_eq!(t.hour_of_day(), 2);
    }

    #[test]
    fn day_of_week_epoch_is_thursday() {
        assert_eq!(Timestamp::from_millis(0).day_of_week(), 4); // Thursday
        let friday = Timestamp::from_millis(86_400_000);
        assert_eq!(friday.day_of_week(), 5);
        let sunday = Timestamp::from_millis(3 * 86_400_000);
        assert_eq!(sunday.day_of_week(), 0);
    }

    #[test]
    fn virtual_clock_shared_across_clones() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Duration::from_millis(250));
        assert_eq!(b.now().as_millis(), 250);
    }

    #[test]
    fn system_clock_is_monotonic_enough() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(a.as_millis() > 1_600_000_000_000); // after 2020
    }

    #[test]
    fn virtual_clock_set_forward() {
        let clock = VirtualClock::at_millis(100);
        clock.set(Timestamp::from_millis(500));
        assert_eq!(clock.now().as_millis(), 500);
    }

    #[test]
    fn virtual_clock_sleep_advances_instead_of_blocking() {
        let clock = VirtualClock::at_millis(0);
        let start = std::time::Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(start.elapsed() < Duration::from_secs(1));
        assert_eq!(clock.now().as_millis(), 3_600_000);
    }

    #[test]
    fn skewed_clock_applies_injected_skew() {
        use gaa_faults::{Fault, FaultPlan, FaultSite};

        let base = VirtualClock::at_millis(10_000);
        let plan = FaultPlan::builder(1)
            .fail_nth(FaultSite::Clock, 1, Fault::SkewMs(-2_500))
            .fail_nth(FaultSite::Clock, 2, Fault::SkewMs(500))
            .build();
        let clock = SkewedClock::new(Arc::new(base), Arc::new(plan));
        assert_eq!(clock.now().as_millis(), 10_000); // call 0: no fault
        assert_eq!(clock.now().as_millis(), 7_500); // negative skew
        assert_eq!(clock.now().as_millis(), 10_500); // positive skew
        assert_eq!(clock.now().as_millis(), 10_000); // plan exhausted
    }

    #[test]
    fn skewed_clock_saturates_at_epoch() {
        use gaa_faults::{Fault, FaultPlan, FaultSite};

        let plan = FaultPlan::builder(1)
            .fail_always(FaultSite::Clock, Fault::SkewMs(i64::MIN))
            .build();
        let clock = SkewedClock::new(Arc::new(VirtualClock::at_millis(5)), Arc::new(plan));
        assert_eq!(clock.now().as_millis(), 0);
    }
}
